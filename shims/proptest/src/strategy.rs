//! Value-generation strategies (sampling only, no shrinking).

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi - lo) as u64).wrapping_add(1);
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}
