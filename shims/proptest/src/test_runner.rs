//! Test execution support: config, RNG, case errors.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-suite configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The sampling RNG handed to strategies. Seeded deterministically per
/// test so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a test's fully qualified name (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, bound)`; `bound = 0` means the full 64-bit range.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let rem = (u64::MAX % bound).wrapping_add(1) % bound;
        if rem == 0 {
            return self.next_u64() % bound;
        }
        let top = u64::MAX - rem;
        loop {
            let x = self.next_u64();
            if x <= top {
                return x % bound;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;
