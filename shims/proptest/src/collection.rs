//! Collection strategies: `vec(element, size)`.

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec<T>` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
