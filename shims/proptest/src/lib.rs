//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset the test suites rely on: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), `prop_assert*`,
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, range
//! strategies, and `collection::vec`.
//!
//! Semantics: pure random sampling with a per-test deterministic seed.
//! There is **no shrinking** — a failing case reports its case index and
//! the assertion message instead of a minimized input. Failures are
//! reproducible because the seed is derived from the test's module path
//! and name.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn prop_map_applies(x in (0u8..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..5),
                     w in crate::collection::vec(any::<bool>(), 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn question_mark_propagates() {
        fn helper(ok: bool) -> TestCaseResult {
            prop_assert!(ok, "helper saw false");
            Ok(())
        }
        proptest! {
            #[test]
            fn inner(b in any::<bool>()) {
                helper(b || !b)?;
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
