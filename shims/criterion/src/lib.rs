//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! a plain wall-clock micro-benchmark harness behind criterion's API:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and `black_box`. It
//! reports mean/min/max nanoseconds per iteration to stdout; there is no
//! statistical analysis, HTML report, or regression tracking.

// The whole point of this shim is wall-clock timing; the workspace-wide
// `disallowed_methods` ban on `Instant::now` exists to keep it *out of
// simulation code*, not out of the bench harness.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// `iter`/`iter_batched` on it.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up & calibration: run single iterations until the warm-up
        // budget is spent, tracking the observed per-iteration cost.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter;
        loop {
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iterations = (budget / per_iter.as_nanos()).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iterations as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{id}: time [{} {} {}] ({} samples x {iterations} iters)",
            format_ns(samples_ns[0]),
            format_ns(mean),
            format_ns(*samples_ns.last().expect("non-empty")),
            self.sample_size,
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Per-sample timing context handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint (ignored; present for API parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a benchmark group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass filter args; `--list` asks
            // for a listing only — honor it so harness=false benches
            // don't burn time during `cargo test --benches`.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
        c.bench_function("smoke/iter_batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
    }
}
