//! Named generators. Only `StdRng` is provided: a seeded xoshiro256++.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator (xoshiro256++).
///
/// Unlike upstream `rand`'s ChaCha12-based `StdRng`, this generator is
/// not cryptographic — the simulations only need statistical quality and
/// reproducibility, both of which xoshiro256++ provides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is a fixed point of xoshiro; remap it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xD6E8_FEB8_6659_FD93,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(77);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
