//! Deterministic, dependency-free stand-in for the parts of `rand` 0.8
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the subset it needs: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, a seeded [`rngs::StdRng`] (xoshiro256++
//! expanded from SplitMix64 — *not* the upstream ChaCha12 stream, which
//! is fine because every consumer seeds explicitly and nothing in the
//! repo depends on upstream's exact stream), integer/float sampling, and
//! `seq::SliceRandom::{choose, shuffle}`.
//!
//! Statistical quality: xoshiro256++ passes BigCrush; integer ranges use
//! rejection sampling so they are exactly uniform.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core source of randomness: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// expansion scheme upstream uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let bytes = splitmix64_mix(x).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 finalizer: bijective 64-bit mix.
pub(crate) fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, bound)` via rejection (exactly uniform).
/// `bound = 0` means the full 64-bit range.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Powers of two never bias: masking equals `% bound` and consumes one
    // draw, exactly like the general rem == 0 path below. This matters on
    // hot paths — degree-2 partner picks on the ring hit this every call,
    // and `x & (bound - 1)` costs nothing while `x % bound` is a 64-bit
    // hardware division.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // 2^64 mod bound values at the top would bias `% bound`; reject them.
    // rem = 2^64 mod bound, computed branchily from u64::MAX % bound so the
    // common path pays two divisions total, not three.
    let max_rem = u64::MAX % bound;
    let rem = if max_rem + 1 == bound { 0 } else { max_rem + 1 };
    if rem == 0 {
        return rng.next_u64() % bound;
    }
    let top = u64::MAX - rem; // inclusive: exactly a multiple of `bound` values below
    loop {
        let x = rng.next_u64();
        if x <= top {
            return x % bound;
        }
    }
}

/// Range types `gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // hi - lo + 1 == 0 encodes the full 64-bit range.
                let span = ((hi - lo) as u64).wrapping_add(1);
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    /// The straight-line reference `uniform_below` (pre fast paths): any
    /// strength reduction must preserve the exact value mapping *and* draw
    /// count, or every seeded simulation in the workspace silently changes.
    fn uniform_below_reference<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        if bound == 0 {
            return rng.next_u64();
        }
        let rem = (u64::MAX % bound).wrapping_add(1) % bound;
        if rem == 0 {
            return rng.next_u64() % bound;
        }
        let top = u64::MAX - rem;
        loop {
            let x = rng.next_u64();
            if x <= top {
                return x % bound;
            }
        }
    }

    #[test]
    fn uniform_below_fast_paths_are_bit_identical() {
        for bound in [0u64, 1, 2, 3, 4, 5, 7, 8, 16, 100, 9_999, 1 << 33, u64::MAX] {
            let mut fast = StdRng::seed_from_u64(0xFEED ^ bound);
            let mut reference = StdRng::seed_from_u64(0xFEED ^ bound);
            for _ in 0..2_000 {
                assert_eq!(
                    uniform_below(&mut fast, bound),
                    uniform_below_reference(&mut reference, bound),
                    "value mapping changed at bound {bound}"
                );
            }
            // Same number of draws consumed: streams stay aligned.
            assert_eq!(fast.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen::<u8>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
    }
}
