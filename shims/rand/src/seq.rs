//! Slice helpers: `choose` and `shuffle`.

use crate::{uniform_below, RngCore};

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }
}
