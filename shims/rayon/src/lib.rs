//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the data-parallel subset the trial runner needs: `par_iter()` /
//! `into_par_iter()` with `map(...).collect()`, executed on scoped OS
//! threads with a shared dynamic work queue (so uneven per-item costs
//! balance, like rayon's work stealing). Results always come back in
//! input order, which is what makes the parallel trial runner
//! bit-identical to serial execution.
//!
//! `RAYON_NUM_THREADS` is honored on every call (rayon itself reads it
//! once at pool construction); `RAYON_NUM_THREADS=1` degrades to a plain
//! serial loop on the calling thread.

pub mod iter;

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude::*`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads a parallel call will use.
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<u32>, String> = (0..10u32).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<u32>, String> = (0..10u32)
            .into_par_iter()
            .map(|i| {
                if i == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    /// The sharded-engine determinism contract: results are a pure
    /// function of the input, never of the worker count. Forcing every
    /// plausible thread count (including more threads than items and the
    /// degenerate 0/1) over an uneven workload must give byte-identical
    /// output — if any partitioning or chunk sizing ever consulted the
    /// thread count, this is the test that breaks.
    #[test]
    fn thread_count_cannot_change_results() {
        let items: Vec<u64> = (0..257).rev().collect();
        let op = |x: u64| {
            // Uneven per-item cost so workers genuinely interleave.
            let mut acc = x;
            for i in 0..(x % 17) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let want = crate::iter::par_apply_with_threads(items.clone(), &op, 1);
        for threads in [0, 2, 3, 4, 8, 64, 1024] {
            let got = crate::iter::par_apply_with_threads(items.clone(), &op, threads);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        let input: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&i| {
                // Uneven per-item cost exercises the dynamic queue.
                let mut acc = 0usize;
                for j in 0..(i * 1000) {
                    acc = acc.wrapping_add(j);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, input);
    }
}
