//! The parallel-iterator traits and their thread-pool driver.

use std::sync::Mutex;

/// A finite, order-preserving parallel iterator.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Runs the pipeline and returns all items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Applies `op` to every item, in parallel.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, op }
    }

    /// Executes the pipeline and collects the results.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(self.drive())
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Base parallel iterator over an eagerly materialized item list.
#[derive(Debug)]
pub struct IterPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterPar<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator returned by [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<B, F> {
    base: B,
    op: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        par_apply(self.base.drive(), &self.op)
    }
}

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterPar<T>;

    fn into_par_iter(self) -> IterPar<T> {
        IterPar { items: self }
    }
}

macro_rules! impl_into_par_iter_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = IterPar<$t>;

            fn into_par_iter(self) -> IterPar<$t> {
                IterPar { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_iter_for_range!(u32, u64, usize);

/// By-reference conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IterPar<&'data T>;

    fn par_iter(&'data self) -> IterPar<&'data T> {
        IterPar {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IterPar<&'data T>;

    fn par_iter(&'data self) -> IterPar<&'data T> {
        self.as_slice().par_iter()
    }
}

/// Applies `op` across worker threads via a shared dynamic queue,
/// returning results in input order.
fn par_apply<T, R, F>(items: Vec<T>, op: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_apply_with_threads(items, op, crate::current_num_threads())
}

/// [`par_apply`] with an explicit worker count — the auditable core of the
/// shim's determinism contract.
///
/// The thread count influences **scheduling only**: items are pulled from
/// one shared queue (so which worker computes which item, and in what
/// order, is nondeterministic), but each result lands in the slot of its
/// *input index* and the output is read back in input order. No chunking,
/// partitioning or sizing decision anywhere in the shim depends on
/// `threads` — sharded-engine merges built on this are pure functions of
/// their input, never of `RAYON_NUM_THREADS`. Pinned by the
/// `thread_count_cannot_change_results` test.
pub fn par_apply_with_threads<T, R, F>(items: Vec<T>, op: &F, threads: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.into_iter().map(op).collect();
    }
    let len = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").next();
                match next {
                    Some((index, item)) => {
                        *slots[index].lock().expect("slot poisoned") = Some(op(item));
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}
