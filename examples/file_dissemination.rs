//! File dissemination: the paper's motivating application ("multicast via
//! network coding"). A byte blob is chunked into k messages, gossiped with
//! TAG over a random regular network, and reassembled bit-exactly at every
//! node.
//!
//! Run with: `cargo run --release --example file_dissemination`

use ag_gf::Gf256;
use ag_graph::builders;
use ag_rlnc::{BlockDecoder, BlockEncoder};
use ag_sim::{CommModel, Engine, EngineConfig};
use algebraic_gossip::{AgConfig, BroadcastTree, Placement, Tag};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A synthetic 8 KiB "file" with recognizable structure.
    let file: Vec<u8> = (0..8192u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let k = 32;

    // Split into k chunks over GF(2^8); each chunk is one source message.
    let encoder = BlockEncoder::<Gf256>::new(&file, k);
    let generation = encoder.generation();
    println!(
        "file: {} bytes -> k = {} chunks of {} bytes ({} symbols each)",
        file.len(),
        k,
        encoder.chunk_bytes(),
        generation.message_len()
    );

    // A 4-regular random network of 48 peers (an expander w.h.p.).
    let mut rng = StdRng::seed_from_u64(7);
    let graph = builders::random_regular(48, 4, &mut rng).expect("regular graph exists");
    println!(
        "network: {} peers, 4-regular, diameter {}",
        graph.n(),
        graph.diameter()
    );

    // The file initially lives at peer 0 (a single seeder).
    // TAG with the round-robin broadcast B_RR builds the distribution tree.
    let cfg = AgConfig::new(k)
        .with_payload_len(generation.message_len())
        .with_placement(Placement::SingleSource(0));
    let brr = BroadcastTree::new(&graph, 0, CommModel::RoundRobin, 7).expect("valid root");
    let mut tag = Tag::<Gf256, _>::new_with_generation(&graph, brr, &cfg, generation.clone(), 7)
        .expect("valid TAG setup");

    let stats = Engine::new(EngineConfig::synchronous(7).with_max_rounds(100_000)).run(&mut tag);
    println!(
        "dissemination: {} rounds, {} packets delivered",
        stats.rounds, stats.messages_delivered
    );
    assert!(stats.completed, "dissemination must finish");

    // Every peer reassembles the file and verifies it bit-exactly.
    let reassembler = BlockDecoder::new(file.len(), k);
    let mut verified = 0;
    for v in 0..graph.n() {
        let decoded = tag.decoded(v).expect("completed peers decode");
        let bytes = reassembler.reassemble(&decoded);
        assert_eq!(bytes, file, "peer {v} reassembled a corrupted file");
        verified += 1;
    }
    println!(
        "verified: {verified}/{} peers hold a bit-exact copy",
        graph.n()
    );
}
