//! The paper's headline separation: on the barbell graph (two cliques
//! joined by one edge), uniform algebraic gossip needs Ω(n²) rounds for
//! all-to-all dissemination while TAG with the round-robin broadcast B_RR
//! finishes in Θ(n) — "a speedup ratio of n".
//!
//! Run with: `cargo run --release --example barbell_speedup`

use ag_gf::Gf256;
use ag_sim::EngineConfig;
use algebraic_gossip::{run_protocol, ProtocolKind, RunSpec};

fn median_rounds(graph: &ag_graph::Graph, kind: ProtocolKind, k: usize, trials: u64) -> f64 {
    let mut rounds: Vec<u64> = (0..trials)
        .map(|t| {
            let mut spec = RunSpec::new(kind, k).with_seed(1000 + t);
            spec.engine = EngineConfig::synchronous(2000 + t).with_max_rounds(2_000_000);
            let (stats, ok) = run_protocol::<Gf256>(graph, &spec).expect("valid spec");
            assert!(stats.completed && ok, "run did not finish");
            stats.rounds
        })
        .collect();
    rounds.sort_unstable();
    rounds[rounds.len() / 2] as f64
}

fn main() {
    println!("all-to-all dissemination (k = n) on the barbell graph\n");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>8}",
        "n", "uniform AG", "TAG+BRR", "speedup"
    );

    let mut uniform_points = Vec::new();
    let mut tag_points = Vec::new();
    for n in [8usize, 12, 16, 24, 32, 48, 64] {
        let graph = ag_graph::builders::barbell(n).expect("n >= 4");
        let uniform = median_rounds(&graph, ProtocolKind::UniformAg, n, 5);
        let tag = median_rounds(&graph, ProtocolKind::TagBrr(0), n, 5);
        println!(
            "{n:>4}  {uniform:>12.0}  {tag:>10.0}  {:>7.1}x",
            uniform / tag
        );
        uniform_points.push((n as f64, uniform));
        tag_points.push((n as f64, tag));
    }

    // Fit scaling exponents: the paper predicts ~2 for uniform AG (the
    // bridge bottleneck costs Ω(n²)) and ~1 for TAG.
    let fit_u = ag_analysis::loglog_slope(&uniform_points);
    let fit_t = ag_analysis::loglog_slope(&tag_points);
    println!("\nfitted scaling exponents (t ~ n^s):");
    println!(
        "  uniform AG : s = {:.2}  (paper: Ω(n²) ⇒ ≈2)   R² = {:.3}",
        fit_u.slope, fit_u.r_squared
    );
    println!(
        "  TAG + B_RR : s = {:.2}  (paper: Θ(n)  ⇒ ≈1)   R² = {:.3}",
        fit_t.slope, fit_t.r_squared
    );
}
