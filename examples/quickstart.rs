//! Quickstart: disseminate k messages over a grid with uniform algebraic
//! gossip and watch every node decode them.
//!
//! Run with: `cargo run --release --example quickstart`

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, Placement};

fn main() {
    // A 6x6 grid of nodes: constant maximum degree 4, diameter 10 — the
    // family where Theorem 3 makes uniform algebraic gossip order-optimal.
    let graph = builders::grid(6, 6).expect("valid grid dimensions");
    let n = graph.n();
    let k = 12;

    println!(
        "graph: 6x6 grid  (n = {n}, D = {}, max degree = {})",
        graph.diameter(),
        graph.max_degree()
    );
    println!("task : disseminate k = {k} messages of 32 payload symbols each\n");

    // k random messages over GF(2^8), spread round-robin over the nodes.
    let cfg = AgConfig::new(k)
        .with_payload_len(32)
        .with_placement(Placement::Spread);
    let mut protocol =
        AlgebraicGossip::<Gf256>::new(&graph, &cfg, 42).expect("connected graph, k > 0");

    // Synchronous EXCHANGE gossip, seeded for reproducibility.
    let mut engine = Engine::new(EngineConfig::synchronous(42));
    let stats = engine.run_observed(&mut protocol, |round, p| {
        if round % 10 == 0 {
            println!(
                "  round {round:>4}: total rank {}/{}",
                p.total_rank(),
                n * k
            );
        }
    });

    println!("\ncompleted      : {}", stats.completed);
    println!("rounds         : {}", stats.rounds);
    println!(
        "messages       : {} delivered, {} empty sends",
        stats.messages_delivered, stats.empty_sends
    );
    println!(
        "helpful        : {} innovative / {} redundant receptions",
        protocol.helpful_receptions(),
        protocol.redundant_receptions()
    );

    // Every node can now solve its linear system and read all k messages.
    let truth = protocol.generation().messages().to_vec();
    let all_decoded = (0..n).all(|v| protocol.decoded(v).as_deref() == Some(&truth[..]));
    println!("all decoded    : {all_decoded}");
    assert!(all_decoded, "a completed run must decode everywhere");

    // Compare against the paper's Theorem 1 bound (k + log n + D) * Delta.
    let bound = ag_analysis::uniform_ag_bound(k, n, graph.diameter(), graph.max_degree());
    println!(
        "Theorem 1 bound: (k + ln n + D)·Δ = {bound:.0} rounds  (measured/bound = {:.2})",
        stats.rounds as f64 / bound
    );
}
