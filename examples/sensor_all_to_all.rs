//! Sensor-network all-to-all: every node of a grid holds one reading and
//! everyone must learn all readings — the paper's all-to-all special case
//! (k = n) on a constant-maximum-degree topology where Theorem 3 proves
//! uniform algebraic gossip order-optimal: Θ(k + D) synchronous rounds.
//!
//! Compares the synchronous and asynchronous time models on the same task.
//!
//! Run with: `cargo run --release --example sensor_all_to_all`

use ag_gf::symbols::bytes_to_symbols;
use ag_gf::{Field, Gf256};
use ag_graph::builders;
use ag_rlnc::Generation;
use ag_sim::{Engine, EngineConfig, TimeModel};
use algebraic_gossip::{AgConfig, AlgebraicGossip, Placement};

fn main() {
    let side = 6;
    let graph = builders::grid(side, side).expect("valid grid");
    let n = graph.n();

    // Each sensor's "reading": an 8-byte record (id, temperature-ish).
    let readings: Vec<Vec<u8>> = (0..n)
        .map(|v| {
            let temp = 2000 + (v as u32 * 37) % 1500; // centi-degrees
            let mut rec = (v as u32).to_be_bytes().to_vec();
            rec.extend(temp.to_be_bytes());
            rec
        })
        .collect();
    let messages: Vec<Vec<Gf256>> = readings
        .iter()
        .map(|r| bytes_to_symbols::<Gf256>(r))
        .collect();
    let generation = Generation::from_messages(messages).expect("equal-length records");

    println!(
        "{}x{} sensor grid (n = {n}, D = {}, Δ = {}): all-to-all exchange of {}-byte readings\n",
        side,
        side,
        graph.diameter(),
        graph.max_degree(),
        readings[0].len()
    );

    for time in [TimeModel::Synchronous, TimeModel::Asynchronous] {
        let cfg = AgConfig::new(n)
            .with_payload_len(generation.message_len())
            .with_placement(Placement::Spread); // reading v starts at node v
        let mut proto =
            AlgebraicGossip::<Gf256>::new_with_generation(&graph, &cfg, generation.clone(), 99)
                .expect("valid setup");
        let ecfg = match time {
            TimeModel::Synchronous => EngineConfig::synchronous(99),
            TimeModel::Asynchronous => EngineConfig::asynchronous(99),
        }
        .with_max_rounds(1_000_000);
        let stats = Engine::new(ecfg).run(&mut proto);
        assert!(stats.completed);

        // Every sensor can now reconstruct the full temperature map.
        let map = proto.decoded(0).expect("node 0 decodes");
        let sample: u32 = u32::from_be_bytes([
            map[7][4].to_u64() as u8,
            map[7][5].to_u64() as u8,
            map[7][6].to_u64() as u8,
            map[7][7].to_u64() as u8,
        ]);
        let bound =
            ag_analysis::lower_bound_rounds(n, graph.diameter(), time == TimeModel::Synchronous);
        println!("{time:?}:");
        println!("  rounds            : {}", stats.rounds);
        println!("  timeslots         : {}", stats.timeslots);
        println!("  messages delivered: {}", stats.messages_delivered);
        println!(
            "  lower bound Ω(k+D): {bound:.0} rounds (measured/LB = {:.2})",
            stats.rounds as f64 / bound
        );
        println!("  spot check        : sensor 7 reads {sample} centi-degrees\n");
        assert_eq!(sample, 2000 + (7 * 37));
    }
}
