//! Protocol race: every protocol in the crate on every evaluation family.
//!
//! Prints a comparison matrix of stopping times (median of trials) for
//! uniform AG, round-robin AG, TAG+B_RR, TAG+uniform-broadcast, TAG+IS and
//! TAG+oracle on the paper's graph families — a compact live view of
//! Table 1.
//!
//! Run with: `cargo run --release --example protocol_race [n] [k]`

use ag_analysis::TableBuilder;
use ag_gf::Gf256;
use ag_sim::EngineConfig;
use algebraic_gossip::{run_protocol, ProtocolKind, RunSpec};

fn median_rounds(
    graph: &ag_graph::Graph,
    kind: ProtocolKind,
    k: usize,
    trials: u64,
) -> Option<f64> {
    let mut rounds = Vec::new();
    for t in 0..trials {
        let mut spec = RunSpec::new(kind, k).with_seed(31 * t + 7);
        spec.engine = EngineConfig::synchronous(17 * t + 3).with_max_rounds(3_000_000);
        let (stats, ok) = run_protocol::<Gf256>(graph, &spec).ok()?;
        if !(stats.completed && ok) {
            return None;
        }
        rounds.push(stats.rounds);
    }
    rounds.sort_unstable();
    Some(rounds[rounds.len() / 2] as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(n);
    let trials = 3;

    let families: Vec<(&str, ag_graph::Graph)> = vec![
        ("path", ag_graph::builders::path(n).unwrap()),
        ("cycle", ag_graph::builders::cycle(n).unwrap()),
        ("grid", ag_graph::builders::grid(4, n.div_ceil(4)).unwrap()),
        ("binary tree", ag_graph::builders::binary_tree(n).unwrap()),
        ("barbell", ag_graph::builders::barbell(n).unwrap()),
        ("complete", ag_graph::builders::complete(n).unwrap()),
    ];
    let protocols: Vec<(&str, ProtocolKind)> = vec![
        ("uniform AG", ProtocolKind::UniformAg),
        ("RR AG", ProtocolKind::RoundRobinAg),
        ("TAG+BRR", ProtocolKind::TagBrr(0)),
        ("TAG+uni", ProtocolKind::TagUniformBroadcast(0)),
        ("TAG+IS", ProtocolKind::TagIs(0)),
        ("TAG+oracle", ProtocolKind::TagOracle(0, 3)),
        ("uncoded", ProtocolKind::UncodedRandom),
    ];

    println!(
        "median synchronous rounds to disseminate k = {k} messages, n = {n} \
         ({} trials/cell)\n",
        trials
    );
    let mut header = vec!["graph".to_string(), "D".into(), "Δ".into()];
    header.extend(protocols.iter().map(|(name, _)| (*name).to_string()));
    let mut table = TableBuilder::new(header);
    for (name, graph) in &families {
        let mut row = vec![
            (*name).to_string(),
            graph.diameter().to_string(),
            graph.max_degree().to_string(),
        ];
        for (_, kind) in &protocols {
            match median_rounds(graph, *kind, k, trials) {
                Some(m) => row.push(format!("{m:.0}")),
                None => row.push("—".into()),
            }
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("note: TAG+oracle charges the oracle only ~2·3 rounds of Phase 1;");
    println!("      it models a spanning-tree service with the bound of [5].");
}
