//! Crash tolerance: RLNC gossip under crash-stop failures.
//!
//! A third of the peers die mid-dissemination. Because every coded packet
//! spreads *combinations* of all messages, the surviving nodes keep
//! decoding as long as the lost nodes' information had crossed at least one
//! edge — which happens within a couple of rounds. Compare how much later
//! the uncoded baseline would have to re-fetch specific lost chunks.
//!
//! Run with: `cargo run --release --example crash_tolerance`

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, CrashPlan, WithCrashes};

fn main() {
    let n = 30;
    let k = 15;
    let graph = builders::complete(n).expect("valid n");
    println!("complete graph, n = {n}, k = {k} messages, EXCHANGE gossip");
    println!("crash plan: every node flips a 30% coin at its 4th wakeup\n");

    println!(
        "{:>6}  {:>8}  {:>9}  {:>10}  {:>10}",
        "seed", "crashed", "survivors", "completed", "rounds"
    );
    let mut completed_runs = 0;
    for seed in 0..8u64 {
        let inner =
            AlgebraicGossip::<Gf256>::new(&graph, &AgConfig::new(k), seed).expect("valid setup");
        let plan = CrashPlan::random_fraction(n, 0.3, 4, seed);
        let mut proto = WithCrashes::new(inner, plan);
        let stats =
            Engine::new(EngineConfig::synchronous(seed).with_max_rounds(10_000)).run(&mut proto);
        let crashed = proto.crashed_count();
        println!(
            "{seed:>6}  {crashed:>8}  {:>9}  {:>10}  {:>10}",
            n - crashed,
            stats.completed,
            stats.rounds
        );
        if stats.completed {
            completed_runs += 1;
            // Verify every survivor decoded the full generation.
            for v in proto.survivors() {
                assert_eq!(
                    proto.inner().decoded(v).expect("survivor decodes"),
                    proto.inner().generation().messages()
                );
            }
        }
    }
    println!("\n{completed_runs}/8 runs completed with every survivor decoding all {k} messages.");
    println!("Coding spreads each message's span within ~2 rounds, so losing 30% of");
    println!("nodes at round 4 almost never destroys information — the decoder only");
    println!("needs *any* k independent equations, not specific chunks.");
}
