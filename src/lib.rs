//! Umbrella crate for the *Order Optimal Information Spreading Using
//! Algebraic Gossip* reproduction (Avin, Borokhovich, Censor-Hillel,
//! Lotker — PODC 2011).
//!
//! This crate re-exports the whole workspace under one roof for the
//! examples and integration tests:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`gf`] | `ag-gf` | finite fields GF(2) … GF(2¹⁶), GF(p) |
//! | [`linalg`] | `ag-linalg` | matrices, incremental echelon bases |
//! | [`rlnc`] | `ag-rlnc` | coded packets, decoders, recoding |
//! | [`graph`] | `ag-graph` | topologies, BFS, spanning trees, metrics |
//! | [`sim`] | `ag-sim` | the gossip engine (time models, actions) |
//! | [`queueing`] | `ag-queueing` | M/M/1 tree/line networks (Theorem 2) |
//! | [`analysis`] | `ag-analysis` | bounds, statistics, scaling fits |
//! | [`protocols`] | `algebraic-gossip` | uniform AG, TAG, BRR, IS |
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench` for the table/figure regenerators.

pub use ag_analysis as analysis;
pub use ag_gf as gf;
pub use ag_graph as graph;
pub use ag_linalg as linalg;
pub use ag_queueing as queueing;
pub use ag_rlnc as rlnc;
pub use ag_sim as sim;
pub use algebraic_gossip as protocols;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        // Touch one item from each re-exported crate.
        use crate::gf::Field;
        let _ = crate::gf::Gf256::ONE;
        let m = crate::linalg::Matrix::<crate::gf::Gf2>::identity(2);
        assert_eq!(m.rank(), 2);
        let g = crate::graph::builders::path(3).unwrap();
        assert_eq!(g.n(), 3);
        let _ = crate::sim::EngineConfig::default();
        let _ = crate::analysis::lower_bound_rounds(4, 2, true);
        let _ = crate::protocols::AgConfig::new(1);
    }
}
