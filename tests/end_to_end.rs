//! End-to-end integration: every protocol × topology × time model × field
//! combination completes and decodes correct data.

use algebraic_gossip_repro::gf::{Gf16, Gf2, Gf256, F257};
use algebraic_gossip_repro::graph::{builders, Graph};
use algebraic_gossip_repro::protocols::{run_protocol, Placement, ProtocolKind, RunSpec};
use algebraic_gossip_repro::sim::EngineConfig;

fn families(n: usize) -> Vec<(&'static str, Graph)> {
    vec![
        ("path", builders::path(n).unwrap()),
        ("cycle", builders::cycle(n).unwrap()),
        ("grid", builders::grid(3, n.div_ceil(3)).unwrap()),
        ("binary_tree", builders::binary_tree(n).unwrap()),
        ("barbell", builders::barbell(n).unwrap()),
        ("complete", builders::complete(n).unwrap()),
        ("star", builders::star(n).unwrap()),
        ("hypercube", builders::hypercube(4).unwrap()),
        ("lollipop", builders::lollipop(n / 2, n / 2).unwrap()),
    ]
}

fn check(kind: ProtocolKind, sync: bool, seed: u64) {
    for (name, g) in families(12) {
        let k = 6;
        let mut spec = RunSpec::new(kind, k).with_seed(seed);
        spec.ag = spec.ag.with_payload_len(2);
        spec.engine = if sync {
            EngineConfig::synchronous(seed ^ 0xABCD)
        } else {
            EngineConfig::asynchronous(seed ^ 0xABCD)
        }
        .with_max_rounds(2_000_000);
        let (stats, ok) =
            run_protocol::<Gf256>(&g, &spec).unwrap_or_else(|e| panic!("{kind:?} on {name}: {e}"));
        assert!(
            stats.completed,
            "{kind:?} on {name} (sync={sync}) incomplete"
        );
        assert!(ok, "{kind:?} on {name} failed decode verification");
        // Sanity: messages were actually exchanged.
        assert!(stats.messages_delivered > 0);
    }
}

#[test]
fn uniform_ag_all_families_synchronous() {
    check(ProtocolKind::UniformAg, true, 1);
}

#[test]
fn uniform_ag_all_families_asynchronous() {
    check(ProtocolKind::UniformAg, false, 2);
}

#[test]
fn round_robin_ag_all_families_synchronous() {
    check(ProtocolKind::RoundRobinAg, true, 3);
}

#[test]
fn tag_brr_all_families_synchronous() {
    check(ProtocolKind::TagBrr(0), true, 4);
}

#[test]
fn tag_brr_all_families_asynchronous() {
    check(ProtocolKind::TagBrr(0), false, 5);
}

#[test]
fn tag_uniform_broadcast_all_families_synchronous() {
    check(ProtocolKind::TagUniformBroadcast(0), true, 6);
}

#[test]
fn tag_is_all_families_synchronous() {
    check(ProtocolKind::TagIs(0), true, 7);
}

#[test]
fn tag_oracle_all_families_asynchronous() {
    check(ProtocolKind::TagOracle(0, 2), false, 8);
}

#[test]
fn all_fields_complete_on_the_grid() {
    let g = builders::grid(3, 4).unwrap();
    let mut spec = RunSpec::new(ProtocolKind::UniformAg, 6).with_seed(11);
    spec.ag = spec.ag.with_payload_len(3);
    spec.engine = EngineConfig::synchronous(12).with_max_rounds(2_000_000);
    let (s, ok) = run_protocol::<Gf2>(&g, &spec).unwrap();
    assert!(s.completed && ok, "GF(2)");
    let (s, ok) = run_protocol::<Gf16>(&g, &spec).unwrap();
    assert!(s.completed && ok, "GF(16)");
    let (s, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
    assert!(s.completed && ok, "GF(256)");
    let (s, ok) = run_protocol::<F257>(&g, &spec).unwrap();
    assert!(s.completed && ok, "F257");
}

#[test]
fn placements_single_source_and_random() {
    let g = builders::barbell(10).unwrap();
    for placement in [
        Placement::SingleSource(0),
        Placement::SingleSource(9),
        Placement::Random,
        Placement::Custom(vec![0, 9, 4, 5]),
    ] {
        let mut spec = RunSpec::new(ProtocolKind::TagBrr(0), 4).with_seed(21);
        spec.ag = spec.ag.with_placement(placement.clone());
        spec.engine = EngineConfig::synchronous(22).with_max_rounds(2_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        assert!(stats.completed && ok, "placement {placement:?} failed");
    }
}

#[test]
fn k_larger_than_n_works() {
    // More messages than nodes: nodes hold several initial messages.
    let g = builders::cycle(6).unwrap();
    let mut spec = RunSpec::new(ProtocolKind::UniformAg, 15).with_seed(31);
    spec.engine = EngineConfig::synchronous(32).with_max_rounds(2_000_000);
    let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
    assert!(stats.completed && ok);
}

#[test]
fn single_node_graph_is_trivially_complete() {
    let g = builders::path(1).unwrap();
    let mut spec = RunSpec::new(ProtocolKind::UniformAg, 3).with_seed(41);
    spec.engine = EngineConfig::synchronous(42);
    let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
    assert!(stats.completed && ok);
    assert_eq!(stats.rounds, 0);
}

#[test]
fn two_node_graph_fast_exchange() {
    let g = builders::path(2).unwrap();
    let mut spec = RunSpec::new(ProtocolKind::UniformAg, 4).with_seed(51);
    spec.engine = EngineConfig::synchronous(52).with_max_rounds(1_000);
    let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
    assert!(stats.completed && ok);
    // 2 messages per round move, 4 needed in total (2 per node): >= 2 rounds.
    assert!(
        stats.rounds >= 2 && stats.rounds <= 30,
        "{} rounds",
        stats.rounds
    );
}
