//! Whole-stack determinism: a seeded experiment is bit-identical across
//! runs — the property that makes every number in EXPERIMENTS.md
//! reproducible.

use algebraic_gossip_repro::gf::Gf256;
use algebraic_gossip_repro::graph::builders;
use algebraic_gossip_repro::protocols::{run_protocol, ProtocolKind, RunSpec, TrialPlan};
use algebraic_gossip_repro::queueing::LineSystem;
use algebraic_gossip_repro::sim::EngineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn protocol_runs_are_reproducible() {
    let g = builders::barbell(12).unwrap();
    for kind in [
        ProtocolKind::UniformAg,
        ProtocolKind::RoundRobinAg,
        ProtocolKind::TagBrr(0),
        ProtocolKind::TagIs(0),
    ] {
        let make = || {
            let mut spec = RunSpec::new(kind, 6).with_seed(12345);
            spec.engine = EngineConfig::asynchronous(777).with_max_rounds(1_000_000);
            run_protocol::<Gf256>(&g, &spec).unwrap()
        };
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a, b, "{kind:?} not reproducible");
    }
}

#[test]
fn different_seeds_differ() {
    let g = builders::grid(4, 4).unwrap();
    let run = |seed: u64| {
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, 8).with_seed(seed);
        spec.engine = EngineConfig::asynchronous(seed).with_max_rounds(1_000_000);
        run_protocol::<Gf256>(&g, &spec).unwrap().0
    };
    let outcomes: Vec<u64> = (0..8).map(|s| run(s).timeslots).collect();
    let all_same = outcomes.windows(2).all(|w| w[0] == w[1]);
    assert!(
        !all_same,
        "8 seeds gave identical timeslot counts: {outcomes:?}"
    );
}

#[test]
fn random_graph_builders_are_seed_stable() {
    let mk = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            builders::erdos_renyi_connected(20, 0.3, &mut rng).unwrap(),
            builders::random_regular(16, 4, &mut rng).unwrap(),
        )
    };
    let (er1, rr1) = mk(9);
    let (er2, rr2) = mk(9);
    assert_eq!(er1, er2);
    assert_eq!(rr1, rr2);
}

#[test]
fn queueing_samples_are_seed_stable() {
    let sys = LineSystem::all_at_tail(4, 10, 1.0);
    let a = sys.drain_times(50, &mut StdRng::seed_from_u64(3));
    let b = sys.drain_times(50, &mut StdRng::seed_from_u64(3));
    assert_eq!(a, b);
}

#[test]
fn parallel_trial_plan_is_bit_identical_to_serial() {
    // The tentpole determinism property: TrialPlan::run (rayon, however
    // many worker threads RAYON_NUM_THREADS grants — CI exercises both 1
    // and the default) returns the same per-trial RunStats, in the same
    // order, as the single-threaded reference executor.
    let g = builders::barbell(10).unwrap();
    for kind in [
        ProtocolKind::UniformAg,
        ProtocolKind::TagBrr(0),
        ProtocolKind::UncodedRandom,
    ] {
        let mut base = RunSpec::new(kind, 5);
        base.engine = EngineConfig::asynchronous(0).with_max_rounds(2_000_000);
        let plan = TrialPlan::new(7, 0xD37);
        let parallel = plan.run::<Gf256>(&g, &base).unwrap();
        let serial = plan.run_serial::<Gf256>(&g, &base).unwrap();
        assert_eq!(parallel, serial, "{kind:?} diverged under parallelism");
        assert_eq!(parallel.median_rounds(), serial.median_rounds());
        assert!(parallel.all_ok(), "{kind:?} had failed trials");
    }
}

#[test]
fn trial_plan_map_is_order_deterministic() {
    // map() — the escape hatch used by tree/queueing/crash experiments —
    // must also collect in trial order regardless of thread count.
    let plan = TrialPlan::new(100, 7);
    let par = plan.map(|s| (s.trial, s.protocol.wrapping_mul(s.engine)));
    let ser = plan.map_serial(|s| (s.trial, s.protocol.wrapping_mul(s.engine)));
    assert_eq!(par, ser);
    assert_eq!(par[0].0, 0);
    assert_eq!(par[99].0, 99);
}

#[test]
fn engine_and_protocol_seeds_are_independent_knobs() {
    // Same protocol seed (same generation/placement), different engine
    // seed (different wakeups) => same completion but different traffic.
    let g = builders::cycle(10).unwrap();
    let run = |engine_seed: u64| {
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, 5).with_seed(42);
        spec.engine = EngineConfig::asynchronous(engine_seed).with_max_rounds(1_000_000);
        run_protocol::<Gf256>(&g, &spec).unwrap().0
    };
    let a = run(1);
    let b = run(2);
    assert!(a.completed && b.completed);
    assert_ne!(
        (a.timeslots, a.messages_delivered),
        (b.timeslots, b.messages_delivered),
        "engine seed had no effect"
    );
}
