//! Empirical validation of every theorem's bound shape, with generous
//! constants. These are the integration-level versions of the bench
//! experiments, kept small enough for `cargo test`.

use algebraic_gossip_repro::analysis;
use algebraic_gossip_repro::gf::Gf256;
use algebraic_gossip_repro::graph::{builders, metrics};
use algebraic_gossip_repro::protocols::{
    measure_tree_protocol, run_protocol, BroadcastTree, CommModel, IsTree, ProtocolKind, RunSpec,
    TreeRunner,
};
use algebraic_gossip_repro::sim::{Engine, EngineConfig};

fn rounds_of(
    g: &algebraic_gossip_repro::graph::Graph,
    kind: ProtocolKind,
    k: usize,
    seed: u64,
    sync: bool,
) -> u64 {
    let mut spec = RunSpec::new(kind, k).with_seed(seed);
    spec.engine = if sync {
        EngineConfig::synchronous(seed.wrapping_add(99))
    } else {
        EngineConfig::asynchronous(seed.wrapping_add(99))
    }
    .with_max_rounds(5_000_000);
    let (stats, ok) = run_protocol::<Gf256>(g, &spec).expect("valid spec");
    assert!(stats.completed && ok);
    stats.rounds
}

/// Theorem 1: uniform AG within O((k + log n + D)·Δ), constant ≤ 12,
/// across families, both time models.
#[test]
fn theorem1_uniform_ag_bound_holds() {
    for (g, name) in [
        (builders::path(20).unwrap(), "path"),
        (builders::grid(4, 5).unwrap(), "grid"),
        (builders::binary_tree(31).unwrap(), "binary tree"),
        (builders::barbell(16).unwrap(), "barbell"),
        (builders::complete(16).unwrap(), "complete"),
        (builders::star(16).unwrap(), "star"),
    ] {
        let k = 8;
        let bound = analysis::uniform_ag_bound(k, g.n(), g.diameter(), g.max_degree());
        for sync in [true, false] {
            let rounds = rounds_of(&g, ProtocolKind::UniformAg, k, 7, sync);
            assert!(
                (rounds as f64) <= 12.0 * bound,
                "{name} sync={sync}: {rounds} rounds vs 12x bound {bound:.0}"
            );
        }
    }
}

/// Theorem 3: on constant-max-degree graphs, synchronous uniform AG is
/// Θ(k + D) — check both directions with constants [1/2, 12].
#[test]
fn theorem3_order_optimality_constant_degree() {
    for (g, name) in [
        (builders::path(24).unwrap(), "path"),
        (builders::cycle(24).unwrap(), "cycle"),
        (builders::grid(5, 5).unwrap(), "grid"),
        (builders::binary_tree(31).unwrap(), "binary tree"),
    ] {
        let k = 12;
        let kd = k as f64 + f64::from(g.diameter());
        let rounds = rounds_of(&g, ProtocolKind::UniformAg, k, 3, true) as f64;
        let lower = analysis::lower_bound_rounds(k, g.diameter(), true);
        assert!(
            rounds >= lower,
            "{name}: {rounds} below the k/2, D/2 lower bound"
        );
        assert!(
            rounds <= 12.0 * kd,
            "{name}: {rounds} rounds vs 12·(k+D) = {}",
            12.0 * kd
        );
    }
}

/// Theorem 4: TAG within O(k + log n + d(S) + t(S)) for BRR trees.
#[test]
fn theorem4_tag_bound_holds() {
    for (g, name) in [
        (builders::barbell(20).unwrap(), "barbell"),
        (builders::path(20).unwrap(), "path"),
        (builders::complete(20).unwrap(), "complete"),
    ] {
        let k = 10;
        // Measure t(S) and d(S) of BRR standalone, then the full TAG time.
        let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 5).unwrap();
        let (tstats, tree) =
            measure_tree_protocol(brr, EngineConfig::synchronous(6).with_max_rounds(100_000));
        assert!(tstats.completed);
        let tree = tree.expect("completed");
        // TAG interleaves phases, so charge 2·t(S).
        let bound = analysis::tag_bound(k, g.n(), tree.tree_diameter(), 2.0 * tstats.rounds as f64);
        let rounds = rounds_of(&g, ProtocolKind::TagBrr(0), k, 5, true) as f64;
        assert!(
            rounds <= 16.0 * bound,
            "{name}: TAG took {rounds} vs 16x bound {bound:.0}"
        );
    }
}

/// Theorem 5: BRR broadcast finishes within 3n synchronous rounds with
/// probability 1, and O(n) asynchronous rounds w.h.p.
#[test]
fn theorem5_brr_broadcast_linear() {
    for n in [10, 20, 40] {
        for (g, name) in [
            (builders::barbell(n).unwrap(), "barbell"),
            (builders::lollipop(n / 2, n / 2).unwrap(), "lollipop"),
            (builders::star(n).unwrap(), "star"),
        ] {
            // Synchronous: deterministic 3n bound, any seed.
            for seed in 0..5 {
                let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, seed).unwrap();
                let mut runner = TreeRunner::new(brr);
                let stats =
                    Engine::new(EngineConfig::synchronous(seed).with_max_rounds(3 * g.n() as u64))
                        .run(&mut runner);
                assert!(
                    stats.completed,
                    "{name} n={n} seed={seed}: BRR exceeded 3n sync rounds"
                );
            }
            // Asynchronous: 8n rounds is far beyond the w.h.p. bound.
            let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 9).unwrap();
            let mut runner = TreeRunner::new(brr);
            let stats =
                Engine::new(EngineConfig::asynchronous(9).with_max_rounds(8 * g.n() as u64))
                    .run(&mut runner);
            assert!(
                stats.completed,
                "{name} n={n}: async BRR exceeded 8n rounds"
            );
        }
    }
}

/// Lemma 2: degree sums along shortest paths are at most 3n — on every
/// evaluation family at integration scale.
#[test]
fn lemma2_degree_sums() {
    for g in [
        builders::path(30).unwrap(),
        builders::barbell(30).unwrap(),
        builders::grid(5, 6).unwrap(),
        builders::binary_tree(31).unwrap(),
        builders::complete(20).unwrap(),
        builders::hypercube(5).unwrap(),
    ] {
        assert!(metrics::max_shortest_path_degree_sum(&g) <= 3 * g.n());
    }
}

/// Section 5: for k = Ω(n), TAG+BRR is Θ(n) on any graph — the ratio
/// rounds/n stays within a fixed band as n doubles.
#[test]
fn section5_tag_brr_linear_in_n() {
    let mut ratios = Vec::new();
    for n in [12usize, 24, 48] {
        let g = builders::barbell(n).unwrap();
        let rounds = rounds_of(&g, ProtocolKind::TagBrr(0), n, 13, true);
        ratios.push(rounds as f64 / n as f64);
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 3.0,
        "t/n ratios {ratios:?} drift too much for Θ(n)"
    );
}

/// Section 6 oracle path: with a polylog-time tree service, TAG
/// disseminates k = Θ(log³n) messages in Θ(k) rounds on the barbell.
#[test]
fn section6_tag_oracle_theta_k() {
    let mut ratios = Vec::new();
    for n in [16usize, 32, 64] {
        let g = builders::barbell(n).unwrap();
        let lg = (n as f64).log2();
        let k = (lg * lg).round() as usize; // log^2 n: >= polylog regime
        let t_is = lg.ceil() as u64; // the [5] bound for Phi_2 = Theta(1)
        let rounds = rounds_of(&g, ProtocolKind::TagOracle(0, t_is), k, 17, true);
        ratios.push(rounds as f64 / k as f64);
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 3.5,
        "t/k ratios {ratios:?} drift too much for Θ(k)"
    );
}

/// The IS facsimile builds valid trees everywhere (no polylog claim).
#[test]
fn is_facsimile_builds_trees() {
    for g in [
        builders::barbell(16).unwrap(),
        builders::grid(4, 4).unwrap(),
        builders::complete(16).unwrap(),
    ] {
        let is = IsTree::new(&g, 0, 3).unwrap();
        let (stats, tree) =
            measure_tree_protocol(is, EngineConfig::synchronous(4).with_max_rounds(100_000));
        assert!(stats.completed);
        assert!(tree.unwrap().is_spanning_tree_of(&g));
    }
}
