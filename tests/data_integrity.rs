//! Real-data integrity: byte blobs survive chunking → gossip → decode →
//! reassembly bit-exactly, across fields and protocols.

use algebraic_gossip_repro::gf::{Gf2, Gf256, Gf65536, SlabField};
use algebraic_gossip_repro::graph::builders;
use algebraic_gossip_repro::protocols::{
    AgConfig, AlgebraicGossip, BroadcastTree, CommModel, Placement, Tag,
};
use algebraic_gossip_repro::rlnc::{BlockDecoder, BlockEncoder};
use algebraic_gossip_repro::sim::{Engine, EngineConfig};

fn blob(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u8)
        .collect()
}

fn disseminate_and_verify<F: SlabField>(data: &[u8], k: usize, seed: u64) {
    let g = builders::grid(3, 4).unwrap();
    let enc = BlockEncoder::<F>::new(data, k);
    let generation = enc.generation().clone();
    let cfg = AgConfig::new(k)
        .with_payload_len(generation.message_len())
        .with_placement(Placement::SingleSource(0));
    let mut proto = AlgebraicGossip::<F>::new_with_generation(&g, &cfg, generation, seed).unwrap();
    let stats =
        Engine::new(EngineConfig::synchronous(seed).with_max_rounds(1_000_000)).run(&mut proto);
    assert!(stats.completed);
    let dec = BlockDecoder::new(data.len(), k);
    for v in 0..g.n() {
        let msgs = proto.decoded(v).expect("complete");
        assert_eq!(dec.reassemble(&msgs), data, "node {v} corrupted the blob");
    }
}

#[test]
fn gf256_blob_round_trip() {
    disseminate_and_verify::<Gf256>(&blob(1000), 7, 1);
}

#[test]
fn gf2_blob_round_trip() {
    disseminate_and_verify::<Gf2>(&blob(64), 4, 2);
}

#[test]
fn gf65536_blob_round_trip() {
    disseminate_and_verify::<Gf65536>(&blob(500), 5, 3);
}

#[test]
fn empty_and_tiny_blobs() {
    disseminate_and_verify::<Gf256>(&[], 3, 4);
    disseminate_and_verify::<Gf256>(&[0xAB], 3, 5);
    disseminate_and_verify::<Gf256>(&blob(2), 5, 6);
}

#[test]
fn tag_disseminates_real_data() {
    let data = blob(2048);
    let k = 16;
    let g = builders::barbell(14).unwrap();
    let enc = BlockEncoder::<Gf256>::new(&data, k);
    let generation = enc.generation().clone();
    let cfg = AgConfig::new(k)
        .with_payload_len(generation.message_len())
        .with_placement(Placement::Random);
    let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 7).unwrap();
    let mut tag = Tag::<Gf256, _>::new_with_generation(&g, brr, &cfg, generation, 7).unwrap();
    let stats = Engine::new(EngineConfig::synchronous(7).with_max_rounds(1_000_000)).run(&mut tag);
    assert!(stats.completed);
    let dec = BlockDecoder::new(data.len(), k);
    for v in 0..g.n() {
        assert_eq!(dec.reassemble(&tag.decoded(v).unwrap()), data);
    }
}

#[test]
fn lossy_network_still_delivers_exact_data() {
    let data = blob(512);
    let k = 8;
    let g = builders::complete(10).unwrap();
    let enc = BlockEncoder::<Gf256>::new(&data, k);
    let generation = enc.generation().clone();
    let cfg = AgConfig::new(k).with_payload_len(generation.message_len());
    let mut proto = AlgebraicGossip::<Gf256>::new_with_generation(&g, &cfg, generation, 8).unwrap();
    let stats = Engine::new(
        EngineConfig::synchronous(8)
            .with_loss(0.3)
            .with_max_rounds(1_000_000),
    )
    .run(&mut proto);
    assert!(stats.completed);
    assert!(stats.lost > 0, "loss injection must be active");
    let dec = BlockDecoder::new(data.len(), k);
    for v in 0..g.n() {
        assert_eq!(dec.reassemble(&proto.decoded(v).unwrap()), data);
    }
}

#[test]
fn wire_format_bits_accounting() {
    // The paper: message length is r·log2(q) + k·log2(q) bits. Verify via
    // a composed packet from a live protocol run.
    use algebraic_gossip_repro::rlnc::{Decoder, Recoder};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let g = BlockEncoder::<Gf256>::new(&blob(100), 4);
    let d = Decoder::with_all_messages(g.generation());
    let p = Recoder::new(&d).emit(&mut rng).unwrap();
    assert_eq!(
        p.wire_bits(),
        ((4 + g.generation().message_len()) * 8) as u64
    );
}
