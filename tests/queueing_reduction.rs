//! Integration of the queueing substrate with the graph layer: the
//! Theorem 2 / Figure 1 reduction chain, empirically.

use algebraic_gossip_repro::graph::builders;
use algebraic_gossip_repro::queueing::{
    dominance_violation, ks_critical_5pct, level_line_of, JacksonLine, LineSystem, TreeSystem,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 800;

/// Figure 1 chain, link 1+2: t(Q^tree) ⪯ t(Q^line with the same per-level
/// customer counts).
#[test]
fn tree_dominated_by_line() {
    let g = builders::binary_tree(15).unwrap();
    let tree = g.bfs_tree(0).into_spanning_tree();
    // 10 customers spread over the leaves (depth 3).
    let mut placement = vec![0usize; 15];
    for i in 0..10 {
        placement[7 + (i % 8)] += 1;
    }
    let tree_sys = TreeSystem::new(&tree, placement.clone(), 1.0).unwrap();
    // Per-level line system per Lemmas 4-5 (exit queue = level 0 = root).
    let line_sys = level_line_of(&tree, &placement, 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    let x = tree_sys.drain_times(TRIALS, &mut rng);
    let y = line_sys.drain_times(TRIALS, &mut rng);
    let v = dominance_violation(&x, &y);
    assert!(
        v < ks_critical_5pct(TRIALS, TRIALS),
        "tree ⪯ line dominance violated by {v}"
    );
}

/// Figure 1 chain, link 3: t(Q^line) ⪯ t(Q̂^line) (all customers at tail).
#[test]
fn line_dominated_by_tail_line() {
    let spread = LineSystem::new(5, vec![2, 2, 2, 2, 2], 1.0);
    let tail = LineSystem::all_at_tail(5, 10, 1.0);
    let mut rng = StdRng::seed_from_u64(2);
    let x = spread.drain_times(TRIALS, &mut rng);
    let y = tail.drain_times(TRIALS, &mut rng);
    let v = dominance_violation(&x, &y);
    assert!(v < ks_critical_5pct(TRIALS, TRIALS), "violated by {v}");
}

/// Figure 1 chain, end: t(Q̂^line) ⪯ Jackson-equilibrium system of Lemma 7
/// (taking customers out and feeding them back at rate μ/2 only slows
/// things down).
#[test]
fn tail_line_dominated_by_jackson() {
    let tail = LineSystem::all_at_tail(5, 12, 1.0);
    let jackson = JacksonLine::new(5, 12, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let x = tail.drain_times(TRIALS, &mut rng);
    let y: Vec<f64> = (0..TRIALS)
        .map(|_| jackson.stopping_time(&mut rng))
        .collect();
    let v = dominance_violation(&x, &y);
    assert!(v < ks_critical_5pct(TRIALS, TRIALS), "violated by {v}");
}

/// Theorem 2 end to end: the drain time of a BFS-tree queueing system with
/// μ = 1/(2nΔ) stays within the O((k + l_max + log n)/μ) bound — this is
/// precisely the quantity the proof of Theorem 1 plugs in.
#[test]
fn theorem2_bound_with_gossip_rate() {
    let g = builders::grid(4, 4).unwrap();
    let n = g.n();
    let delta = g.max_degree();
    let mu = 1.0 / (2.0 * n as f64 * delta as f64); // per-timeslot rate
    let tree = g.bfs_tree(0).into_spanning_tree();
    let k = 12;
    let mut placement = vec![0usize; n];
    for i in 0..k {
        placement[1 + (i % (n - 1))] += 1;
    }
    let sys = TreeSystem::new(&tree, placement, mu).unwrap();
    let lmax = f64::from(tree.depth());
    let bound = (4.0 * k as f64 + 4.0 * lmax + 16.0 * (n as f64).ln()) / mu;
    let mut rng = StdRng::seed_from_u64(4);
    let times = sys.drain_times(400, &mut rng);
    let violations = times.iter().filter(|&&t| t > bound).count();
    assert!(
        violations <= 8,
        "{violations}/400 drains exceeded the Theorem 2 bound"
    );
}

/// Theorem 2 scaling: drain time is additive in k and l_max.
#[test]
fn theorem2_additive_scaling() {
    let mut rng = StdRng::seed_from_u64(5);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    // Vary k at fixed depth.
    let t_k: Vec<f64> = [8usize, 16, 32]
        .iter()
        .map(|&k| {
            let sys = LineSystem::all_at_tail(4, k, 1.0);
            mean(&sys.drain_times(500, &mut rng))
        })
        .collect();
    // Increments should roughly double as k doubles (after the additive
    // l_max term washes out).
    let d1 = t_k[1] - t_k[0];
    let d2 = t_k[2] - t_k[1];
    assert!(
        d2 / d1 > 1.4 && d2 / d1 < 3.0,
        "k-increments {d1:.1}, {d2:.1} not ~linear"
    );
    // Vary depth at fixed k.
    let t_l: Vec<f64> = [2usize, 8, 32]
        .iter()
        .map(|&l| {
            let sys = LineSystem::all_at_tail(l, 10, 1.0);
            mean(&sys.drain_times(500, &mut rng))
        })
        .collect();
    assert!(
        t_l[2] > t_l[1] && t_l[1] > t_l[0],
        "depth must slow draining"
    );
    let dl = (t_l[2] - t_l[1]) / (t_l[1] - t_l[0]);
    assert!(
        dl > 1.5 && dl < 8.0,
        "depth increments ratio {dl:.2} not ~linear"
    );
}
