//! Integration: the uncoded baseline and failure injection, cross-crate.

use algebraic_gossip_repro::gf::Gf256;
use algebraic_gossip_repro::graph::builders;
use algebraic_gossip_repro::protocols::{
    run_protocol, AgConfig, AlgebraicGossip, CrashPlan, ProtocolKind, RandomMessageGossip, RunSpec,
    WithCrashes,
};
use algebraic_gossip_repro::sim::{Engine, EngineConfig, TimeModel};

#[test]
fn uncoded_baseline_completes_on_all_families() {
    for (name, g) in [
        ("path", builders::path(10).unwrap()),
        ("grid", builders::grid(3, 4).unwrap()),
        ("barbell", builders::barbell(10).unwrap()),
        ("complete", builders::complete(10).unwrap()),
    ] {
        let mut spec = RunSpec::new(ProtocolKind::UncodedRandom, 5).with_seed(3);
        spec.ag = spec.ag.with_payload_len(2);
        spec.engine = EngineConfig::synchronous(4).with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        assert!(stats.completed && ok, "baseline failed on {name}");
    }
}

#[test]
fn coding_gain_grows_with_k_on_complete_graph() {
    // Median over seeds; the gain should be > 2x at k = 24 and larger at
    // k = 48 (coupon collector: baseline pays ~log k).
    let gain_at = |k: usize| -> f64 {
        let g = builders::complete(k).unwrap();
        let median = |kind: ProtocolKind| -> f64 {
            let mut rounds: Vec<u64> = (0..5u64)
                .map(|s| {
                    let mut spec = RunSpec::new(kind, k).with_seed(s);
                    spec.engine = EngineConfig::synchronous(s ^ 0xF00).with_max_rounds(1_000_000);
                    let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
                    assert!(stats.completed && ok);
                    stats.rounds
                })
                .collect();
            rounds.sort_unstable();
            rounds[2] as f64
        };
        median(ProtocolKind::UncodedRandom) / median(ProtocolKind::UniformAg)
    };
    let g24 = gain_at(24);
    let g48 = gain_at(48);
    assert!(g24 > 2.0, "coding gain at k=24 only {g24:.2}");
    assert!(g48 > g24, "gain should grow with k: {g24:.2} -> {g48:.2}");
}

#[test]
fn crashes_in_async_model() {
    let g = builders::complete(16).unwrap();
    let inner =
        AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(8).with_payload_len(1), 9).unwrap();
    // Crash at the 2nd wakeup: late enough to exercise mid-run crashes,
    // early enough that both schedules fire before the survivors finish
    // regardless of the async wakeup order the seed produces.
    let plan = CrashPlan::explicit(vec![(3, 2), (12, 2)]);
    let mut proto = WithCrashes::new(inner, plan);
    let stats = Engine::new(EngineConfig::asynchronous(9).with_max_rounds(100_000)).run(&mut proto);
    assert!(stats.completed);
    assert_eq!(proto.crashed_count(), 2);
    for v in proto.survivors() {
        assert_eq!(
            proto.inner().decoded(v).unwrap(),
            proto.inner().generation().messages()
        );
    }
}

#[test]
fn crashes_plus_loss_combined() {
    // Both failure modes at once: 10% loss and 2 crash-stops.
    let g = builders::complete(14).unwrap();
    let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(7), 11).unwrap();
    let plan = CrashPlan::explicit(vec![(6, 4), (13, 6)]);
    let mut proto = WithCrashes::new(inner, plan);
    let stats = Engine::new(
        EngineConfig::synchronous(11)
            .with_loss(0.1)
            .with_max_rounds(100_000),
    )
    .run(&mut proto);
    assert!(stats.completed);
    assert!(stats.lost > 0);
}

#[test]
fn baseline_and_rlnc_share_generation_under_same_seed() {
    // Paired-comparison guarantee: same seed => identical ground truth.
    let g = builders::cycle(8).unwrap();
    let cfg = AgConfig::new(4).with_payload_len(3);
    let base = RandomMessageGossip::<Gf256>::new(&g, &cfg, 77).unwrap();
    let rlnc = AlgebraicGossip::<Gf256>::new(&g, &cfg, 77).unwrap();
    assert_eq!(base.generation(), rlnc.generation());
}

#[test]
fn baseline_slower_than_rlnc_even_async() {
    let g = builders::complete(20).unwrap();
    let run = |kind: ProtocolKind| -> u64 {
        let mut spec = RunSpec::new(kind, 20).with_seed(5);
        spec.engine = EngineConfig {
            time_model: TimeModel::Asynchronous,
            ..EngineConfig::asynchronous(6)
        }
        .with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        assert!(stats.completed && ok);
        stats.timeslots
    };
    let base = run(ProtocolKind::UncodedRandom);
    let rlnc = run(ProtocolKind::UniformAg);
    assert!(
        base > rlnc,
        "baseline ({base} slots) should trail RLNC ({rlnc} slots)"
    );
}
