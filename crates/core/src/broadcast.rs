//! Spanning trees from 1-dissemination (Section 4.1 and Theorem 5).
//!
//! "When a node receives for the first time the message, it marks the
//! sending node as its parent. In such a way we obtain a spanning tree
//! rooted at the node that initiated the broadcast protocol."
//!
//! With the round-robin communication model this is the paper's `B_RR`:
//! Theorem 5 shows it broadcasts in at most `3n` synchronous rounds with
//! probability 1 (via Lemma 2: degree sums along shortest paths are ≤ 3n)
//! and `O(n)` asynchronous rounds w.h.p.

use ag_graph::{Graph, GraphError, NodeId, Topology};
use ag_sim::{Action, CommModel, ContactIntent, PartnerSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree_protocol::TreeProtocol;

/// Broadcast-based spanning-tree protocol (uniform or round-robin).
///
/// The broadcast message itself carries no data — reception is what
/// matters — so `Msg = ()`. Informed nodes gossip every wakeup; an
/// uninformed node still wakes (and, under EXCHANGE, thereby *pulls* from
/// an informed partner, which the paper's EXCHANGE variant exploits).
///
/// Neighbors are read through a [`Topology`] view (default: the static
/// [`Graph`], unchanged behavior); over a `ScheduledTopology` the contact
/// schedule follows the churn, which is how TAG's Phase 1 degrades under
/// the F9 bridge-cut adversary.
#[derive(Debug, Clone)]
pub struct BroadcastTree<T: Topology = Graph> {
    topology: T,
    root: NodeId,
    informed: Vec<bool>,
    parent: Vec<Option<NodeId>>,
    selector: PartnerSelector,
    action: Action,
}

impl BroadcastTree<Graph> {
    /// Creates the protocol with the message initially at `root`.
    ///
    /// `comm` selects uniform gossip or the round-robin (`B_RR`) variant.
    /// `seed` fixes the round-robin starting offsets (the quasirandom
    /// model's random initial pointer).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `root` is out of range or the graph is
    /// disconnected.
    pub fn new(
        graph: &Graph,
        root: NodeId,
        comm: CommModel,
        seed: u64,
    ) -> Result<Self, GraphError> {
        Self::on_topology(graph.clone(), root, comm, seed)
    }
}

impl<T: Topology> BroadcastTree<T> {
    /// [`BroadcastTree::new`] over an owned [`Topology`] (static or
    /// scheduled), with the identical seed discipline.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `root` is out of range or the initial
    /// view is disconnected.
    pub fn on_topology(
        topology: T,
        root: NodeId,
        comm: CommModel,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if root >= topology.n() {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                n: topology.n(),
            });
        }
        if !topology.is_connected_now() {
            return Err(GraphError::InvalidSize(
                "broadcast requires a connected (initial) graph".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let selector = PartnerSelector::new(&topology, comm, &mut rng);
        let mut informed = vec![false; topology.n()];
        informed[root] = true;
        let parent = vec![None; topology.n()];
        Ok(BroadcastTree {
            topology,
            root,
            informed,
            parent,
            selector,
            action: Action::Exchange,
        })
    }

    /// Overrides the gossip action (the paper proves Theorem 5 for PUSH
    /// and notes it also holds for EXCHANGE, the default here).
    #[must_use]
    pub fn with_action(mut self, action: Action) -> Self {
        self.action = action;
        self
    }

    /// Is `v` informed yet?
    #[must_use]
    pub fn is_informed(&self, v: NodeId) -> bool {
        self.informed[v]
    }

    /// Number of informed nodes.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&b| b).count()
    }
}

impl<T: Topology> TreeProtocol for BroadcastTree<T> {
    type Msg = ();

    fn num_nodes(&self) -> usize {
        self.topology.n()
    }

    fn root(&self) -> NodeId {
        self.root
    }

    fn on_round_start(&mut self, round: u64) {
        self.topology.advance_to_epoch(round.saturating_sub(1));
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        // Every node follows its schedule; uninformed nodes' contacts
        // still matter under EXCHANGE/PULL (they can pull the message).
        let partner = self.selector.next_partner(&self.topology, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _rng: &mut StdRng) -> Option<()> {
        self.informed[from].then_some(())
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, _msg: ()) {
        if !self.informed[to] {
            self.informed[to] = true;
            self.parent[to] = Some(from);
        }
    }

    fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_protocol::TreeRunner;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    fn run_broadcast(
        g: &Graph,
        comm: CommModel,
        cfg: EngineConfig,
        seed: u64,
    ) -> (TreeRunner<BroadcastTree>, ag_sim::RunStats) {
        let b = BroadcastTree::new(g, 0, comm, seed).unwrap();
        let mut runner = TreeRunner::new(b);
        let stats = Engine::new(cfg).run(&mut runner);
        (runner, stats)
    }

    #[test]
    fn produces_valid_spanning_tree() {
        let g = builders::grid(4, 4).unwrap();
        let (runner, stats) =
            run_broadcast(&g, CommModel::Uniform, EngineConfig::synchronous(3), 3);
        assert!(stats.completed);
        let tree = runner.inner().spanning_tree().unwrap();
        assert!(tree.is_spanning_tree_of(&g));
        assert_eq!(tree.root(), 0);
    }

    #[test]
    fn brr_sync_finishes_within_3n_rounds() {
        // Theorem 5: with probability 1, B_RR broadcasts within 3n
        // synchronous rounds — deterministically, for any RR offsets.
        for seed in 0..10 {
            for g in [
                builders::barbell(16).unwrap(),
                builders::path(20).unwrap(),
                builders::star(15).unwrap(),
                builders::lollipop(8, 8).unwrap(),
            ] {
                let (_, stats) = run_broadcast(
                    &g,
                    CommModel::RoundRobin,
                    EngineConfig::synchronous(seed).with_max_rounds(3 * g.n() as u64 + 1),
                    seed,
                );
                assert!(
                    stats.completed,
                    "B_RR exceeded 3n rounds on n = {} (seed {seed})",
                    g.n()
                );
            }
        }
    }

    #[test]
    fn brr_async_is_linear_whp() {
        let g = builders::barbell(20).unwrap();
        let (_, stats) = run_broadcast(
            &g,
            CommModel::RoundRobin,
            EngineConfig::asynchronous(5).with_max_rounds(6 * g.n() as u64),
            5,
        );
        assert!(stats.completed, "async B_RR exceeded 6n rounds");
    }

    #[test]
    fn uniform_broadcast_slow_on_barbell_fast_on_complete() {
        // Uniform broadcast crosses the barbell bridge with prob ~2/n per
        // round; B_RR crosses deterministically within deg rounds. On the
        // complete graph both are fast.
        let barbell = builders::barbell(24).unwrap();
        let (_, s_uniform) = run_broadcast(
            &barbell,
            CommModel::Uniform,
            EngineConfig::synchronous(1).with_max_rounds(10_000),
            1,
        );
        let (_, s_rr) = run_broadcast(
            &barbell,
            CommModel::RoundRobin,
            EngineConfig::synchronous(1).with_max_rounds(10_000),
            1,
        );
        assert!(s_uniform.completed && s_rr.completed);
        assert!(
            s_rr.rounds <= 3 * barbell.n() as u64,
            "B_RR took {} rounds",
            s_rr.rounds
        );
    }

    #[test]
    fn parent_is_always_a_neighbor_and_informed_earlier() {
        let g = builders::binary_tree(31).unwrap();
        let (runner, _) = run_broadcast(&g, CommModel::Uniform, EngineConfig::asynchronous(9), 9);
        let tree = runner.inner().spanning_tree().unwrap();
        for (child, parent) in tree.edges() {
            assert!(g.has_edge(child, parent));
        }
    }

    #[test]
    fn rejects_bad_root_and_disconnected() {
        let g = builders::path(4).unwrap();
        assert!(BroadcastTree::new(&g, 9, CommModel::Uniform, 0).is_err());
        let dis = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(BroadcastTree::new(&dis, 0, CommModel::Uniform, 0).is_err());
    }

    #[test]
    fn push_only_broadcast_also_completes() {
        let g = builders::cycle(10).unwrap();
        let b = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 2)
            .unwrap()
            .with_action(Action::Push);
        let mut runner = TreeRunner::new(b);
        let stats = Engine::new(EngineConfig::synchronous(2)).run(&mut runner);
        assert!(stats.completed);
        assert!(stats.rounds <= 3 * 10);
    }
}
