//! # Algebraic Gossip
//!
//! A faithful implementation of the protocols from **"Order Optimal
//! Information Spreading Using Algebraic Gossip"** (Avin, Borokhovich,
//! Censor-Hillel, Lotker — PODC 2011):
//!
//! * [`AlgebraicGossip`] — uniform (or round-robin) algebraic gossip:
//!   every contact exchanges random-linear-coded packets; Theorem 1 bounds
//!   its stopping time by `O((k + log n + D)·Δ)` rounds w.h.p., which makes
//!   it order-optimal (`Θ(k + D)`) on constant-max-degree graphs
//!   (Theorem 3).
//! * [`Tag`] — **T**ree-based **A**lgebraic **G**ossip: odd wakeups run a
//!   pluggable spanning-tree gossip protocol `S`, even wakeups run
//!   algebraic gossip with the node's tree parent as its fixed partner.
//!   Theorem 4: `O(k + log n + d(S) + t(S))` rounds w.h.p.
//! * [`BroadcastTree`] — spanning-tree construction via 1-dissemination:
//!   with [`CommModel::RoundRobin`] this is the paper's `B_RR`, which
//!   finishes in at most `3n` synchronous rounds *deterministically*
//!   (Theorem 5 + Lemma 2), making TAG order-optimal (`Θ(n)`) for
//!   `k = Ω(n)` on **any** graph.
//! * [`IsTree`] — a bitstring information-spreading spanning-tree protocol
//!   in the style of Censor-Hillel & Shachnai (Section 6), with the MSB
//!   parent rule; and [`OracleTree`] — an oracle standing in for the exact
//!   IS protocol, delivering a BFS tree after a configurable `t(S)`.
//!
//! Beyond the paper, the protocols form a **scenario engine**:
//! [`AlgebraicGossip`], [`RandomMessageGossip`], [`Tag`] and
//! [`BroadcastTree`] are generic over an [`ag_graph::Topology`] view
//! (static [`ag_graph::Graph`] by default — zero overhead, bit-identical
//! to the pre-abstraction behavior — or [`ag_graph::ScheduledTopology`]
//! with deterministic churn: rewires, flips, bridge cuts, partitions),
//! and [`WithCrashes`] layers crash-stop failures (including
//! dead-on-arrival nodes) over any of them, forwarding the pooled-buffer
//! `discard` discipline so crash scenarios stay allocation-free. The F9
//! experiment family measures the combinations.
//!
//! # Quickstart
//!
//! ```
//! use ag_gf::Gf256;
//! use ag_graph::builders;
//! use ag_sim::{Engine, EngineConfig};
//! use algebraic_gossip::{AgConfig, AlgebraicGossip, Placement};
//!
//! // Disseminate k = 8 messages over a 4x4 grid, synchronous EXCHANGE.
//! let graph = builders::grid(4, 4).unwrap();
//! let cfg = AgConfig::new(8).with_payload_len(4);
//! let mut proto = AlgebraicGossip::<Gf256>::new(&graph, &cfg, 7).unwrap();
//! let stats = Engine::new(EngineConfig::synchronous(7)).run(&mut proto);
//! assert!(stats.completed);
//! // Every node decoded every message:
//! for v in 0..16 {
//!     assert_eq!(proto.decoded(v).unwrap(), proto.generation().messages());
//! }
//! ```

mod ag;
mod baseline;
mod broadcast;
mod crash;
mod is_tree;
mod oracle;
mod placement;
mod plan;
mod runner;
pub mod seeding;
mod tag;
mod tree_ag;
mod tree_protocol;

pub use ag::{AgConfig, AgShard, AlgebraicGossip, PacketAlgebraicGossip};
pub use ag_rlnc::ArenaGrowth;
pub use ag_sim::{Action, CommModel, TimeModel};
pub use baseline::{RandomMessageGossip, RawMsg};
pub use broadcast::BroadcastTree;
pub use crash::{CrashPlan, CrashShard, WithCrashes};
pub use is_tree::{HeardSet, IsTree};
pub use oracle::OracleTree;
pub use placement::Placement;
pub use plan::{TrialPlan, TrialSeeds, TrialSet};
pub use runner::{measure_tree_protocol, run_protocol, ProtocolKind, RunSpec};
pub use tag::{Tag, TagMsg};
pub use tree_ag::TreeAg;
pub use tree_protocol::{TreeProtocol, TreeRunner};
