//! The uncoded baseline: random-message (store-and-forward) gossip.
//!
//! Algebraic gossip's raison d'être is that coding beats routing: "network
//! coding can improve the throughput of the network by better sharing of
//! the network resources" [14]. The classical uncoded protocol sends, on
//! each contact, one *raw* message chosen uniformly from those the sender
//! holds (random message selection — the "multiple rumor mongering"
//! baseline of Deb et al.). It suffers a coupon-collector tail: the last
//! few missing messages keep failing to arrive, costing a `Θ(log k)`
//! multiplicative overhead on the complete graph, which RLNC removes.
//!
//! This module implements that baseline with the same engine/config
//! surface as [`crate::AlgebraicGossip`], so every experiment can swap the
//! codec out and measure the coding gain (experiment A4).

use std::collections::BTreeSet;

use ag_gf::Field;
use ag_graph::{Graph, GraphError, NodeId, Topology};
use ag_rlnc::Generation;
use ag_sim::{Action, ContactIntent, PartnerSelector, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ag::AgConfig;

/// A raw (uncoded) message in flight: its index and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawMsg<F> {
    /// Which of the `k` source messages this is.
    pub index: usize,
    /// The message content.
    pub payload: Vec<F>,
}

/// Store-and-forward gossip with uniform random message selection.
///
/// Node state is simply the set of raw messages held. On each contact the
/// sender forwards one uniformly random held message. A node is complete
/// when it holds all `k`.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use ag_sim::{Engine, EngineConfig};
/// use algebraic_gossip::{AgConfig, RandomMessageGossip};
///
/// let g = builders::complete(8).unwrap();
/// let mut proto =
///     RandomMessageGossip::<Gf256>::new(&g, &AgConfig::new(8), 3).unwrap();
/// let stats = Engine::new(EngineConfig::synchronous(3).with_max_rounds(100_000))
///     .run(&mut proto);
/// assert!(stats.completed);
/// assert_eq!(proto.held(0), 8);
/// ```
#[derive(Debug, Clone)]
pub struct RandomMessageGossip<F: Field, T: Topology = Graph> {
    topology: T,
    generation: Generation<F>,
    // BTreeSet, not HashSet: `compose` picks the nth held index, so the
    // iteration order must be deterministic for seeded runs to reproduce
    // (std's HashSet randomizes its order per instance).
    holdings: Vec<BTreeSet<usize>>,
    selector: PartnerSelector,
    action: Action,
}

impl<F: Field> RandomMessageGossip<F, Graph> {
    /// Builds the baseline with a random generation, mirroring
    /// [`crate::AlgebraicGossip::new`] (same seed ⇒ same generation and
    /// placement, so comparisons are paired).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0` or the graph is
    /// disconnected.
    pub fn new(graph: &Graph, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        Self::on_topology(graph.clone(), cfg, seed)
    }
}

impl<F: Field, T: Topology> RandomMessageGossip<F, T> {
    /// Builds the baseline over an owned [`Topology`], mirroring
    /// [`crate::AlgebraicGossip::on_topology`] — same seed ⇒ same
    /// generation and placement, so coded-vs-uncoded comparisons stay
    /// paired in the dynamic scenarios too.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0` or the initial
    /// view is disconnected.
    pub fn on_topology(topology: T, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        if cfg.k == 0 {
            return Err(GraphError::InvalidSize("k must be positive".into()));
        }
        if !topology.is_connected_now() {
            return Err(GraphError::InvalidSize(
                "dissemination requires a connected (initial) graph".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let generation = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        let hosts = cfg.placement.assign(topology.n(), cfg.k, &mut rng);
        let mut holdings: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); topology.n()];
        for (msg, &host) in hosts.iter().enumerate() {
            holdings[host].insert(msg);
        }
        let selector = PartnerSelector::new(&topology, cfg.comm_model, &mut rng);
        Ok(RandomMessageGossip {
            topology,
            generation,
            holdings,
            selector,
            action: cfg.action,
        })
    }

    /// Number of distinct messages node `v` holds.
    #[must_use]
    pub fn held(&self, v: NodeId) -> usize {
        self.holdings[v].len()
    }

    /// The ground-truth generation.
    #[must_use]
    pub fn generation(&self) -> &Generation<F> {
        &self.generation
    }

    /// The messages node `v` holds, as `(index, payload)` pairs sorted by
    /// index — all `k` of them once the node is complete.
    #[must_use]
    pub fn messages_of(&self, v: NodeId) -> Vec<RawMsg<F>> {
        let idx: Vec<usize> = self.holdings[v].iter().copied().collect();
        idx.into_iter()
            .map(|index| RawMsg {
                index,
                payload: self.generation.message(index).to_vec(),
            })
            .collect()
    }
}

impl<F: Field, T: Topology> Protocol for RandomMessageGossip<F, T> {
    type Msg = RawMsg<F>;

    fn num_nodes(&self) -> usize {
        self.topology.n()
    }

    fn on_round_start(&mut self, round: u64) {
        self.topology.advance_to_epoch(round.saturating_sub(1));
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        let partner = self.selector.next_partner(&self.topology, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, rng: &mut StdRng) -> Option<RawMsg<F>> {
        let held = &self.holdings[from];
        if held.is_empty() {
            return None;
        }
        // Uniform random message selection (the sender does not know what
        // the receiver is missing — same information model as RLNC).
        let pick = rng.gen_range(0..held.len());
        let index = *held.iter().nth(pick).expect("pick < len");
        Some(RawMsg {
            index,
            payload: self.generation.message(index).to_vec(),
        })
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: RawMsg<F>) {
        self.holdings[to].insert(msg.index);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.holdings[node].len() == self.generation.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    fn run(g: &Graph, cfg: &AgConfig, seed: u64) -> (RandomMessageGossip<Gf256>, ag_sim::RunStats) {
        let mut proto = RandomMessageGossip::<Gf256>::new(g, cfg, seed).unwrap();
        let stats =
            Engine::new(EngineConfig::synchronous(seed).with_max_rounds(1_000_000)).run(&mut proto);
        (proto, stats)
    }

    #[test]
    fn completes_and_holds_exact_payloads() {
        let g = builders::grid(3, 3).unwrap();
        let cfg = AgConfig::new(5).with_payload_len(2);
        let (proto, stats) = run(&g, &cfg, 1);
        assert!(stats.completed);
        for v in 0..9 {
            let msgs = proto.messages_of(v);
            assert_eq!(msgs.len(), 5);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(m.index, i);
                assert_eq!(m.payload, proto.generation().message(i));
            }
        }
    }

    #[test]
    fn coupon_collector_penalty_on_complete_graph() {
        // On K_n with k = n, the uncoded baseline pays ~log k over RLNC.
        // Check it is measurably slower on the same seeds.
        use crate::ag::AlgebraicGossip;
        let n = 24;
        let g = builders::complete(n).unwrap();
        let cfg = AgConfig::new(n);
        let mut base_total = 0u64;
        let mut rlnc_total = 0u64;
        for seed in 0..5 {
            let (_, s) = run(&g, &cfg, seed);
            assert!(s.completed);
            base_total += s.rounds;
            let mut ag = AlgebraicGossip::<Gf256>::new(&g, &cfg, seed).unwrap();
            let s2 = Engine::new(EngineConfig::synchronous(seed).with_max_rounds(1_000_000))
                .run(&mut ag);
            assert!(s2.completed);
            rlnc_total += s2.rounds;
        }
        assert!(
            base_total > rlnc_total * 3 / 2,
            "baseline {base_total} not clearly slower than RLNC {rlnc_total}"
        );
    }

    #[test]
    fn single_source_broadcast_works() {
        let g = builders::path(8).unwrap();
        let cfg = AgConfig::new(3).with_placement(Placement::SingleSource(0));
        let (proto, stats) = run(&g, &cfg, 4);
        assert!(stats.completed);
        assert_eq!(proto.held(7), 3);
    }

    #[test]
    fn empty_holder_sends_nothing() {
        let g = builders::path(3).unwrap();
        let cfg = AgConfig::new(1).with_placement(Placement::SingleSource(0));
        let proto = RandomMessageGossip::<Gf256>::new(&g, &cfg, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(proto.compose(2, 1, 0, &mut rng).is_none());
        assert!(proto.compose(0, 1, 0, &mut rng).is_some());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = builders::path(3).unwrap();
        assert!(RandomMessageGossip::<Gf256>::new(&g, &AgConfig::new(0), 0).is_err());
        let dis = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(RandomMessageGossip::<Gf256>::new(&dis, &AgConfig::new(2), 0).is_err());
    }
}
