//! Algebraic gossip on a fixed tree (the setting of Lemma 1).
//!
//! "Consider algebraic gossip EXCHANGE protocol with the following
//! communication model: the communication partner of a node is fixed to be
//! its parent in `T_n` during the whole protocol. Then, the time needed for
//! all the nodes to learn all the k messages is `O(k + log n + l_max)`
//! rounds…" — this is TAG's Phase 2 in isolation, and the experiment that
//! isolates the queueing bound from tree-construction time.

use ag_gf::SlabField;
use ag_graph::{GraphError, NodeId, SpanningTree};
use ag_rlnc::{Decoder, Generation, Packet, Recoder};
use ag_sim::{Action, ContactIntent, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ag::AgConfig;

/// EXCHANGE algebraic gossip where every node's partner is its tree parent.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use ag_sim::{Engine, EngineConfig};
/// use algebraic_gossip::{AgConfig, TreeAg};
///
/// let g = builders::binary_tree(15).unwrap();
/// let tree = g.bfs_tree(0).into_spanning_tree();
/// let mut proto = TreeAg::<Gf256>::new(&tree, &AgConfig::new(15), 4).unwrap();
/// let stats = Engine::new(EngineConfig::synchronous(4).with_max_rounds(100_000))
///     .run(&mut proto);
/// assert!(stats.completed);
/// ```
#[derive(Debug, Clone)]
pub struct TreeAg<F: SlabField> {
    tree: SpanningTree,
    generation: Generation<F>,
    decoders: Vec<Decoder<F>>,
}

impl<F: SlabField> TreeAg<F> {
    /// Builds the protocol on a spanning tree.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0`.
    pub fn new(tree: &SpanningTree, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        if cfg.k == 0 {
            return Err(GraphError::InvalidSize("k must be positive".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let generation = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        let hosts = cfg.placement.assign(tree.n(), cfg.k, &mut rng);
        let mut decoders: Vec<Decoder<F>> = (0..tree.n())
            .map(|_| Decoder::new(cfg.k, cfg.payload_len))
            .collect();
        for (msg, &host) in hosts.iter().enumerate() {
            decoders[host].seed_message(&generation, msg);
        }
        Ok(TreeAg {
            tree: tree.clone(),
            generation,
            decoders,
        })
    }

    /// The ground-truth generation.
    #[must_use]
    pub fn generation(&self) -> &Generation<F> {
        &self.generation
    }

    /// Node `v`'s decoded messages once complete.
    #[must_use]
    pub fn decoded(&self, v: NodeId) -> Option<Vec<Vec<F>>> {
        self.decoders[v].decode()
    }

    /// Node `v`'s current rank.
    #[must_use]
    pub fn rank(&self, v: NodeId) -> usize {
        self.decoders[v].rank()
    }
}

impl<F: SlabField> Protocol for TreeAg<F> {
    type Msg = Packet<F>;

    fn num_nodes(&self) -> usize {
        self.tree.n()
    }

    fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
        let parent = self.tree.parent(node)?;
        Some(ContactIntent {
            partner: parent,
            action: Action::Exchange,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, rng: &mut StdRng) -> Option<Packet<F>> {
        Recoder::new(&self.decoders[from]).emit(rng)
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: Packet<F>) {
        let _ = self.decoders[to].receive(msg);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.decoders[node].is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    fn run(tree: &SpanningTree, cfg: &AgConfig, seed: u64) -> (TreeAg<Gf256>, ag_sim::RunStats) {
        let mut proto = TreeAg::<Gf256>::new(tree, cfg, seed).unwrap();
        let stats =
            Engine::new(EngineConfig::synchronous(seed).with_max_rounds(200_000)).run(&mut proto);
        (proto, stats)
    }

    #[test]
    fn all_to_all_on_path_tree() {
        let tree = builders::path(10).unwrap().bfs_tree(0).into_spanning_tree();
        let (proto, stats) = run(&tree, &AgConfig::new(10).with_payload_len(1), 5);
        assert!(stats.completed);
        for v in 0..10 {
            assert_eq!(proto.decoded(v).unwrap(), proto.generation().messages());
        }
    }

    #[test]
    fn lemma1_scaling_k_dominates_on_shallow_trees() {
        // On a star (depth 1), time is Θ(k): doubling k roughly doubles
        // rounds.
        let tree = builders::star(16).unwrap().bfs_tree(0).into_spanning_tree();
        let (_, s1) = run(
            &tree,
            &AgConfig::new(8).with_placement(Placement::Random),
            7,
        );
        let (_, s2) = run(
            &tree,
            &AgConfig::new(32).with_placement(Placement::Random),
            7,
        );
        assert!(s1.completed && s2.completed);
        let ratio = s2.rounds as f64 / s1.rounds as f64;
        assert!(
            (1.5..10.0).contains(&ratio),
            "4x k scaled rounds by {ratio} ({} -> {})",
            s1.rounds,
            s2.rounds
        );
    }

    #[test]
    fn bidirectional_flow_reaches_leaves() {
        // Seed everything at a leaf: messages must flow up AND back down.
        let tree = builders::path(6).unwrap().bfs_tree(0).into_spanning_tree();
        let cfg = AgConfig::new(3).with_placement(Placement::SingleSource(5));
        let (proto, stats) = run(&tree, &cfg, 3);
        assert!(stats.completed);
        assert_eq!(proto.decoded(0).unwrap(), proto.generation().messages());
    }

    #[test]
    fn root_only_node_is_trivially_special() {
        // Single-node tree with k messages at the root: complete at t=0.
        let tree = SpanningTree::from_parents(0, vec![None]).unwrap();
        let (_, stats) = run(&tree, &AgConfig::new(3), 1);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
    }
}
