//! The [`TreeProtocol`] trait: spanning-tree gossip protocols `S`.

use ag_graph::{NodeId, SpanningTree};
use ag_sim::{ContactIntent, Protocol};
use rand::rngs::StdRng;

/// A *gossip STP protocol* (Section 2): a gossip protocol whose goal is
/// that "every node, except a node which is the root, will have a single
/// neighbor called the parent."
///
/// Implementors plug into [`crate::Tag`] as Phase 1 and can also be run
/// standalone (to measure `t(S)` and `d(S)`) via [`TreeRunner`].
///
/// The wakeup/compose/deliver split mirrors [`ag_sim::Protocol`] so the
/// same synchronous-snapshot discipline applies when TAG interleaves the
/// phases.
pub trait TreeProtocol {
    /// Message type exchanged during tree construction.
    type Msg;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// The designated root (the node that never obtains a parent).
    fn root(&self) -> NodeId;

    /// Round-start hook, mirroring [`ag_sim::Protocol::on_round_start`]:
    /// tree protocols over a dynamic [`ag_graph::Topology`] advance their
    /// view to epoch `round − 1` here. Default: no-op. [`TreeRunner`]
    /// forwards the engine hook here, and [`crate::Tag`] forwards its own
    /// so Phase 1's view advances in lockstep with TAG's.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// Node `node` takes a Phase-1 step; `None` = idle this wakeup.
    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent>;

    /// Composes the Phase-1 message `from → to` from committed state.
    fn compose(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> Option<Self::Msg>;

    /// Delivers a Phase-1 message.
    fn deliver(&mut self, from: NodeId, to: NodeId, msg: Self::Msg);

    /// The parent `node` has obtained so far (always `None` for the root).
    fn parent(&self, node: NodeId) -> Option<NodeId>;

    /// True once every non-root node has a parent.
    fn is_tree_complete(&self) -> bool {
        let root = self.root();
        (0..self.num_nodes()).all(|v| v == root || self.parent(v).is_some())
    }

    /// The finished spanning tree, or `None` before completion.
    fn spanning_tree(&self) -> Option<SpanningTree> {
        if !self.is_tree_complete() {
            return None;
        }
        let parents = (0..self.num_nodes()).map(|v| self.parent(v)).collect();
        SpanningTree::from_parents(self.root(), parents).ok()
    }
}

/// Adapter that runs a [`TreeProtocol`] standalone under the simulation
/// engine — this is how the experiments measure `t(S)` and `d(S)` before
/// plugging `S` into TAG.
///
/// # Examples
///
/// ```
/// use ag_graph::builders;
/// use ag_sim::{CommModel, Engine, EngineConfig};
/// use algebraic_gossip::{BroadcastTree, TreeProtocol, TreeRunner};
///
/// let g = builders::cycle(8).unwrap();
/// let bcast = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 1).unwrap();
/// let mut runner = TreeRunner::new(bcast);
/// let stats = Engine::new(EngineConfig::synchronous(1)).run(&mut runner);
/// assert!(stats.completed);
/// let tree = runner.inner().spanning_tree().unwrap();
/// assert!(tree.is_spanning_tree_of(&g));
/// ```
#[derive(Debug, Clone)]
pub struct TreeRunner<S> {
    inner: S,
}

impl<S: TreeProtocol> TreeRunner<S> {
    /// Wraps a tree protocol for standalone execution.
    #[must_use]
    pub fn new(inner: S) -> Self {
        TreeRunner { inner }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the protocol.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TreeProtocol> Protocol for TreeRunner<S> {
    type Msg = S::Msg;

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn on_round_start(&mut self, round: u64) {
        self.inner.on_round_start(round);
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        self.inner.on_wakeup(node, rng)
    }

    fn compose(&self, from: NodeId, to: NodeId, _tag: u32, rng: &mut StdRng) -> Option<S::Msg> {
        self.inner.compose(from, to, rng)
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, _tag: u32, msg: S::Msg) {
        self.inner.deliver(from, to, msg);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        node == self.inner.root() || self.inner.parent(node).is_some()
    }
}
