//! Initial message placement: which node holds which of the k messages.

use ag_graph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// Where the `k` initial messages live before dissemination starts.
///
/// The paper's k-dissemination allows arbitrary placement ("k initial
/// messages located at some nodes (a node can hold more than one initial
/// message)"); all-to-all is the special case `k = n`, one per node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Placement {
    /// Message `i` starts at node `i mod n`. With `k = n` this is exactly
    /// all-to-all communication.
    #[default]
    Spread,
    /// All messages start at one node (1-source k-dissemination).
    SingleSource(NodeId),
    /// Each message lands on an independently uniform node.
    Random,
    /// Explicit host per message (`hosts[i]` holds message `i`).
    Custom(Vec<NodeId>),
}

impl Placement {
    /// Resolves the placement to a host node per message.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, a custom placement has the wrong
    /// length, or any host is out of range.
    #[must_use]
    pub fn assign(&self, n: usize, k: usize, rng: &mut StdRng) -> Vec<NodeId> {
        assert!(n > 0 && k > 0, "need positive n and k");
        let hosts = match self {
            Placement::Spread => (0..k).map(|i| i % n).collect(),
            Placement::SingleSource(v) => vec![*v; k],
            Placement::Random => (0..k).map(|_| rng.gen_range(0..n)).collect(),
            Placement::Custom(hosts) => {
                assert_eq!(hosts.len(), k, "custom placement must list k hosts");
                hosts.clone()
            }
        };
        assert!(
            hosts.iter().all(|&h| h < n),
            "placement host out of range for n = {n}"
        );
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spread_is_round_robin() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Placement::Spread.assign(3, 5, &mut rng),
            vec![0, 1, 2, 0, 1]
        );
    }

    #[test]
    fn all_to_all_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Placement::Spread.assign(4, 4, &mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_source_repeats() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Placement::SingleSource(2).assign(5, 3, &mut rng),
            vec![2, 2, 2]
        );
    }

    #[test]
    fn random_is_in_range_and_seed_stable() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ha = Placement::Random.assign(7, 20, &mut a);
        let hb = Placement::Random.assign(7, 20, &mut b);
        assert_eq!(ha, hb);
        assert!(ha.iter().all(|&h| h < 7));
    }

    #[test]
    fn custom_passthrough() {
        let mut rng = StdRng::seed_from_u64(0);
        let hosts = vec![3, 3, 1];
        assert_eq!(
            Placement::Custom(hosts.clone()).assign(4, 3, &mut rng),
            hosts
        );
    }

    #[test]
    #[should_panic(expected = "k hosts")]
    fn custom_wrong_length_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Placement::Custom(vec![0]).assign(4, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_host_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Placement::SingleSource(9).assign(4, 2, &mut rng);
    }
}
