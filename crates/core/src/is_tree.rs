//! An IS-style bitstring spanning-tree protocol (Section 6 facsimile).
//!
//! The paper builds a spanning tree from the information-spreading protocol
//! of Censor-Hillel & Shachnai [5]: "the information sent by a node v is an
//! n-bit string, characterizing the nodes from which v heard from …
//! initially the n-bit string of node v is a unit vector … The spanning
//! tree … corresponds to each node v declaring its parent as the first node
//! u from which it received a message that caused its most significant bit
//! to change from zero to one."
//!
//! This module implements that interface faithfully — monotone n-bit
//! heard-sets, EXCHANGE gossip, the MSB parent rule, and the alternation
//! between deterministic (odd-step, round-robin) and randomized (even-step,
//! uniform) neighbor choices that [5] prescribes — but *not* the SODA'11
//! protocol's internal list machinery, so it does **not** attain the
//! polylog bound on low-conductance graphs (it is Θ(n) on the barbell, like
//! any uniform-ish neighbor rule). The oracle in [`crate::OracleTree`]
//! stands in for the exact bound; experiments report both. See DESIGN.md §4.

use ag_graph::{Graph, GraphError, NodeId};
use ag_sim::{Action, CommModel, ContactIntent, PartnerSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree_protocol::TreeProtocol;

/// Compact bitset over node ids — the n-bit string the IS protocol
/// gossips. Public because it is the protocol's message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeardSet {
    words: Vec<u64>,
}

impl HeardSet {
    fn new(n: usize) -> Self {
        HeardSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, v: NodeId) {
        self.words[v / 64] |= 1 << (v % 64);
    }

    fn contains(&self, v: NodeId) -> bool {
        self.words[v / 64] & (1 << (v % 64)) != 0
    }

    fn union_with(&mut self, other: &HeardSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The IS-style spanning-tree protocol.
///
/// State per node: a monotone heard-set (n bits). Contacts EXCHANGE
/// heard-sets; a node's parent is the first sender whose message sets the
/// root's bit (the "most significant bit" of the designated root).
/// Neighbor choice alternates round-robin (odd local steps, the
/// deterministic list) and uniform (even local steps).
#[derive(Debug, Clone)]
pub struct IsTree {
    graph: Graph,
    root: NodeId,
    heard: Vec<HeardSet>,
    parent: Vec<Option<NodeId>>,
    rr: PartnerSelector,
    uniform: PartnerSelector,
    steps: Vec<u64>,
}

impl IsTree {
    /// Creates the protocol with designated root `root` (whose bit plays
    /// the MSB role in the parent rule).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `root` is out of range or the graph is
    /// disconnected.
    pub fn new(graph: &Graph, root: NodeId, seed: u64) -> Result<Self, GraphError> {
        if root >= graph.n() {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                n: graph.n(),
            });
        }
        if !graph.is_connected() {
            return Err(GraphError::InvalidSize(
                "IS tree requires a connected graph".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let rr = PartnerSelector::new(graph, CommModel::RoundRobin, &mut rng);
        let uniform = PartnerSelector::new(graph, CommModel::Uniform, &mut rng);
        let mut heard = Vec::with_capacity(graph.n());
        for v in 0..graph.n() {
            let mut h = HeardSet::new(graph.n());
            h.insert(v); // unit vector: every node has heard of itself
            heard.push(h);
        }
        Ok(IsTree {
            graph: graph.clone(),
            root,
            heard,
            parent: vec![None; graph.n()],
            rr,
            uniform,
            steps: vec![0; graph.n()],
        })
    }

    /// How many distinct nodes `v` has heard from (including itself).
    #[must_use]
    pub fn heard_count(&self, v: NodeId) -> usize {
        self.heard[v].count()
    }

    /// Has `v` heard from the root yet?
    #[must_use]
    pub fn heard_root(&self, v: NodeId) -> bool {
        self.heard[v].contains(self.root)
    }
}

impl TreeProtocol for IsTree {
    type Msg = HeardSet;

    fn num_nodes(&self) -> usize {
        self.graph.n()
    }

    fn root(&self) -> NodeId {
        self.root
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        self.steps[node] += 1;
        // Odd local steps: deterministic (round-robin list); even local
        // steps: uniformly random neighbor — the structure of [5].
        let partner = if self.steps[node] % 2 == 1 {
            self.rr.next_partner(&self.graph, node, rng)?
        } else {
            self.uniform.next_partner(&self.graph, node, rng)?
        };
        Some(ContactIntent {
            partner,
            action: Action::Exchange,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _rng: &mut StdRng) -> Option<HeardSet> {
        Some(self.heard[from].clone())
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, msg: HeardSet) {
        // MSB rule: the first message that flips the root's bit from 0 to
        // 1 determines the parent.
        if to != self.root
            && self.parent[to].is_none()
            && !self.heard_root(to)
            && msg.contains(self.root)
        {
            self.parent[to] = Some(from);
        }
        self.heard[to].union_with(&msg);
    }

    fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_protocol::TreeRunner;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    fn build_tree(g: &Graph, seed: u64) -> (TreeRunner<IsTree>, ag_sim::RunStats) {
        let is = IsTree::new(g, 0, seed).unwrap();
        let mut runner = TreeRunner::new(is);
        let stats =
            Engine::new(EngineConfig::synchronous(seed).with_max_rounds(50_000)).run(&mut runner);
        (runner, stats)
    }

    #[test]
    fn builds_valid_tree_on_standard_families() {
        for g in [
            builders::cycle(12).unwrap(),
            builders::grid(4, 4).unwrap(),
            builders::complete(10).unwrap(),
            builders::binary_tree(15).unwrap(),
        ] {
            let (runner, stats) = build_tree(&g, 5);
            assert!(stats.completed, "IS tree incomplete on n = {}", g.n());
            let tree = runner.inner().spanning_tree().unwrap();
            assert!(tree.is_spanning_tree_of(&g));
        }
    }

    #[test]
    fn parent_heard_root_before_child() {
        let g = builders::grid(3, 5).unwrap();
        let (runner, _) = build_tree(&g, 6);
        let is = runner.inner();
        // After completion everyone heard the root.
        for v in 0..g.n() {
            assert!(is.heard_root(v));
        }
    }

    #[test]
    fn heard_sets_grow_monotonically() {
        // Short run with an observer-style repeated engine stepping: here
        // just verify counts only grow across two runs of different length.
        let g = builders::cycle(10).unwrap();
        let is = IsTree::new(&g, 0, 7).unwrap();
        let mut short = TreeRunner::new(is.clone());
        let _ = Engine::new(EngineConfig::synchronous(7).with_max_rounds(2)).run(&mut short);
        let mut long = TreeRunner::new(is);
        let _ = Engine::new(EngineConfig::synchronous(7).with_max_rounds(6)).run(&mut long);
        for v in 0..10 {
            assert!(long.inner().heard_count(v) >= short.inner().heard_count(v));
        }
    }

    #[test]
    fn fast_on_complete_graph() {
        // On K_n the heard-sets double per round: O(log n) completion.
        let g = builders::complete(64).unwrap();
        let (_, stats) = build_tree(&g, 8);
        assert!(stats.completed);
        assert!(
            stats.rounds <= 30,
            "IS tree took {} rounds on K_64",
            stats.rounds
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = builders::path(4).unwrap();
        assert!(IsTree::new(&g, 10, 0).is_err());
        let dis = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(IsTree::new(&dis, 0, 0).is_err());
    }

    #[test]
    fn heardset_primitives() {
        let mut h = HeardSet::new(130);
        assert_eq!(h.count(), 0);
        h.insert(0);
        h.insert(64);
        h.insert(129);
        assert_eq!(h.count(), 3);
        assert!(h.contains(64));
        assert!(!h.contains(63));
        let mut other = HeardSet::new(130);
        other.insert(63);
        h.union_with(&other);
        assert!(h.contains(63));
        assert_eq!(h.count(), 4);
    }
}
