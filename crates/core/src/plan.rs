//! The Monte-Carlo trial engine: plan many runs, execute them across
//! threads, summarize the results.
//!
//! A [`TrialPlan`] is the single way the repo repeats an experiment: it
//! owns the trial count and the seed derivation (see [`crate::seeding`]),
//! hands every trial a decorrelated `(protocol, engine)` seed pair, and
//! executes trials across threads via rayon **with results collected in
//! trial order**, so a parallel run is bit-identical to a serial run of
//! the same plan — `RAYON_NUM_THREADS=1` and a 64-core box produce the
//! same bytes.
//!
//! Experiments consume the result as a [`TrialSet`], whose summaries
//! (median/mean/min/max/CI) come from [`ag_analysis::Summary`] instead of
//! per-call-site median code.

use ag_analysis::Summary;
use ag_gf::SlabField;
use ag_graph::{Graph, GraphError};
use ag_sim::RunStats;
use rayon::prelude::*;

use crate::runner::{run_protocol, RunSpec};
use crate::seeding::{engine_seed_for, trial_protocol_seed};

/// The seed pair of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrialSeeds {
    /// Trial index within the plan.
    pub trial: u64,
    /// Seed for protocol randomness (generation content, placement, RR
    /// offsets, tree construction).
    pub protocol: u64,
    /// Seed for the engine's wakeup/loss randomness.
    pub engine: u64,
}

/// A batch of independent trials with centrally derived seeds.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use algebraic_gossip::{ProtocolKind, RunSpec, TrialPlan};
///
/// let g = builders::grid(3, 3).unwrap();
/// let base = RunSpec::new(ProtocolKind::UniformAg, 4);
/// let set = TrialPlan::new(5, 42).run::<Gf256>(&g, &base).unwrap();
/// assert_eq!(set.len(), 5);
/// assert!(set.all_ok());
/// assert!(set.median_rounds() >= 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialPlan {
    trials: u64,
    seed0: u64,
}

impl TrialPlan {
    /// A plan of `trials` independent trials derived from `seed0`.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero — an empty plan has no summary.
    #[must_use]
    pub fn new(trials: u64, seed0: u64) -> Self {
        assert!(trials > 0, "a trial plan needs at least one trial");
        TrialPlan { trials, seed0 }
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The plan seed all trial seeds derive from.
    #[must_use]
    pub fn seed0(&self) -> u64 {
        self.seed0
    }

    /// The seed pair of trial `trial` (also valid for `trial >=
    /// self.trials()`, should a caller want to extend a plan).
    #[must_use]
    pub fn seeds(&self, trial: u64) -> TrialSeeds {
        let protocol = trial_protocol_seed(self.seed0, trial);
        TrialSeeds {
            trial,
            protocol,
            engine: engine_seed_for(protocol),
        }
    }

    /// All seed pairs, in trial order.
    #[must_use]
    pub fn seed_list(&self) -> Vec<TrialSeeds> {
        (0..self.trials).map(|t| self.seeds(t)).collect()
    }

    /// The fully seeded per-trial specs: `base` with both seeds replaced.
    #[must_use]
    pub fn specs(&self, base: &RunSpec) -> Vec<RunSpec> {
        self.seed_list()
            .into_iter()
            .map(|s| {
                let mut spec = base.clone();
                spec.seed = s.protocol;
                spec.engine.seed = s.engine;
                spec
            })
            .collect()
    }

    /// Runs an arbitrary per-trial function across threads, returning the
    /// results **in trial order** (bit-identical to [`Self::map_serial`]).
    ///
    /// This is the escape hatch for trials that are not a plain
    /// `run_protocol` call — tree-protocol measurements, queueing drains,
    /// crash injections — so those experiments still get central seed
    /// derivation and parallel execution.
    pub fn map<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TrialSeeds) -> T + Sync + Send,
    {
        self.seed_list().into_par_iter().map(f).collect()
    }

    /// Serial reference implementation of [`Self::map`].
    pub fn map_serial<T, F>(&self, f: F) -> Vec<T>
    where
        F: Fn(TrialSeeds) -> T,
    {
        self.seed_list().into_iter().map(f).collect()
    }

    /// Runs `base` once per trial across threads and collects the stats
    /// in trial order.
    ///
    /// # Errors
    ///
    /// Propagates the first construction error (disconnected graph, bad
    /// root, `k = 0`).
    pub fn run<F: SlabField>(&self, graph: &Graph, base: &RunSpec) -> Result<TrialSet, GraphError> {
        let results: Result<Vec<_>, GraphError> = self
            .specs(base)
            .into_par_iter()
            .map(|spec| run_protocol::<F>(graph, &spec))
            .collect();
        Ok(TrialSet { results: results? })
    }

    /// Serial reference implementation of [`Self::run`]: same trials,
    /// same seeds, same order, one thread.
    ///
    /// # Errors
    ///
    /// Propagates the first construction error.
    pub fn run_serial<F: SlabField>(
        &self,
        graph: &Graph,
        base: &RunSpec,
    ) -> Result<TrialSet, GraphError> {
        let results: Result<Vec<_>, GraphError> = self
            .specs(base)
            .iter()
            .map(|spec| run_protocol::<F>(graph, spec))
            .collect();
        Ok(TrialSet { results: results? })
    }
}

/// The outcome of a [`TrialPlan`] execution: per-trial stats in trial
/// order, plus [`Summary`]-backed aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSet {
    results: Vec<(RunStats, bool)>,
}

impl TrialSet {
    /// Number of trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when the set holds no trials (never the case for sets built
    /// by a [`TrialPlan`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Per-trial `(stats, verified)` pairs, in trial order.
    #[must_use]
    pub fn results(&self) -> &[(RunStats, bool)] {
        &self.results
    }

    /// True when every trial completed within budget and verified.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|(s, ok)| s.completed && *ok)
    }

    /// Panics with `context` unless every trial completed and verified.
    /// Experiments use this so an under-budgeted run fails loudly instead
    /// of skewing a median.
    ///
    /// # Panics
    ///
    /// Panics when any trial failed to complete or verify.
    pub fn expect_all_ok(self, context: &str) -> Self {
        assert!(self.all_ok(), "trial set has failed runs: {context}");
        self
    }

    /// Rounds of every trial, in trial order.
    #[must_use]
    pub fn rounds(&self) -> Vec<u64> {
        self.results.iter().map(|(s, _)| s.rounds).collect()
    }

    /// Summary statistics (mean/sd/quantiles/CI) of the round counts.
    #[must_use]
    pub fn rounds_summary(&self) -> Summary {
        Summary::of_u64(&self.rounds())
    }

    /// Median rounds — the headline number most tables report.
    #[must_use]
    pub fn median_rounds(&self) -> f64 {
        self.rounds_summary().median()
    }
}

// Test-only duplicate probes: insert/contains, order never observed.
#[allow(clippy::disallowed_types)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ProtocolKind;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use std::collections::HashSet;

    #[test]
    fn seed_pairs_never_collide_within_or_across_plans() {
        // Within one plan: guaranteed by bijectivity (splitmix64 of an
        // odd-stride arithmetic progression). Across the plans below the
        // strides cannot alias either; the test pins both properties.
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for seed0 in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let plan = TrialPlan::new(2048, seed0);
            for t in 0..plan.trials() {
                let s = plan.seeds(t);
                assert_ne!(
                    s.protocol, s.engine,
                    "protocol and engine streams must differ (seed0={seed0}, t={t})"
                );
                assert!(
                    seen.insert((s.protocol, s.engine)),
                    "seed collision at seed0={seed0}, t={t}"
                );
            }
        }
    }

    #[test]
    fn with_seed_and_plan_derivation_agree() {
        // RunSpec::with_seed must be the trial-plan derivation for the
        // same protocol seed — one function, no second constant.
        let plan = TrialPlan::new(3, 7);
        let base = RunSpec::new(ProtocolKind::UniformAg, 4);
        for (spec, seeds) in plan.specs(&base).iter().zip(plan.seed_list()) {
            let via_with_seed = base.clone().with_seed(seeds.protocol);
            assert_eq!(spec.seed, via_with_seed.seed);
            assert_eq!(spec.engine.seed, via_with_seed.engine.seed);
        }
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Reference values from the SplitMix64 paper's test vector
        // (seed 1234567): guards against silent constant drift.
        // trial 1 of plan 1234567 is exactly the first SplitMix64 output
        // for seed 1234567: mix(seed + gamma).
        assert_eq!(
            crate::seeding::trial_protocol_seed(1_234_567, 1),
            6_457_827_717_110_365_317
        );
    }

    #[test]
    fn parallel_and_serial_runs_are_bit_identical() {
        let g = builders::grid(3, 4).unwrap();
        let mut base = RunSpec::new(ProtocolKind::UniformAg, 6);
        base.engine.max_rounds = 1_000_000;
        let plan = TrialPlan::new(6, 99);
        let parallel = plan.run::<Gf256>(&g, &base).unwrap();
        let serial = plan.run_serial::<Gf256>(&g, &base).unwrap();
        assert_eq!(parallel, serial);
        assert!(parallel.all_ok());
    }

    #[test]
    fn map_matches_map_serial() {
        let plan = TrialPlan::new(64, 5);
        let par = plan.map(|s| s.protocol ^ s.engine);
        let ser = plan.map_serial(|s| s.protocol ^ s.engine);
        assert_eq!(par, ser);
    }

    #[test]
    fn summaries_come_from_analysis() {
        let g = builders::complete(8).unwrap();
        let base = RunSpec::new(ProtocolKind::UniformAg, 4);
        let set = TrialPlan::new(5, 1).run::<Gf256>(&g, &base).unwrap();
        let summary = set.rounds_summary();
        assert_eq!(summary.len(), 5);
        assert!(summary.min() <= summary.median() && summary.median() <= summary.max());
        assert_eq!(set.median_rounds(), summary.median());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_plan_rejected() {
        let _ = TrialPlan::new(0, 3);
    }
}
