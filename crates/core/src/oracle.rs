//! An oracle spanning-tree protocol: the substitution for the exact IS
//! protocol of Censor-Hillel & Shachnai [5].
//!
//! Theorems 7 and 8 use the IS protocol *only as a black box* that
//! delivers a spanning tree within `O(c((log n + log δ⁻¹)/Φ_c + c))`
//! rounds. Reimplementing the full SODA'11 protocol is out of scope (see
//! DESIGN.md §4); instead [`OracleTree`] delivers a BFS spanning tree after
//! a configurable number of per-node wakeups — set to the theorem's bound
//! for the family under test — so the *TAG side* of Theorems 7/8 is
//! exercised exactly. The honest facsimile lives in [`crate::IsTree`].

use ag_graph::{Graph, GraphError, NodeId};
use ag_sim::ContactIntent;
use rand::rngs::StdRng;

use crate::tree_protocol::TreeProtocol;

/// Delivers a precomputed BFS spanning tree after `reveal_after` wakeups
/// per node (≈ `reveal_after` rounds standalone; ≈ `2·reveal_after` TAG
/// rounds, since TAG gives Phase 1 every other wakeup).
///
/// Sends no messages at all — it models an out-of-band tree service with a
/// known completion time.
#[derive(Debug, Clone)]
pub struct OracleTree {
    root: NodeId,
    parents: Vec<Option<NodeId>>,
    wakeups: Vec<u64>,
    reveal_after: u64,
}

impl OracleTree {
    /// Builds the oracle over `graph`'s BFS tree rooted at `root`,
    /// revealing each node's parent after that node's `reveal_after`-th
    /// Phase-1 wakeup.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `root` is out of range or the graph is
    /// disconnected.
    pub fn new(graph: &Graph, root: NodeId, reveal_after: u64) -> Result<Self, GraphError> {
        if root >= graph.n() {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                n: graph.n(),
            });
        }
        let bfs = graph.bfs_tree(root);
        if bfs.reached() != graph.n() {
            return Err(GraphError::InvalidSize(
                "oracle tree requires a connected graph".into(),
            ));
        }
        let parents = (0..graph.n()).map(|v| bfs.parent(v)).collect();
        Ok(OracleTree {
            root,
            parents,
            wakeups: vec![0; graph.n()],
            reveal_after,
        })
    }

    /// The configured reveal threshold.
    #[must_use]
    pub fn reveal_after(&self) -> u64 {
        self.reveal_after
    }
}

impl TreeProtocol for OracleTree {
    type Msg = ();

    fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    fn root(&self) -> NodeId {
        self.root
    }

    fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
        self.wakeups[node] += 1;
        None // out-of-band: no gossip traffic
    }

    fn compose(&self, _from: NodeId, _to: NodeId, _rng: &mut StdRng) -> Option<()> {
        None
    }

    fn deliver(&mut self, _from: NodeId, _to: NodeId, _msg: ()) {}

    fn parent(&self, node: NodeId) -> Option<NodeId> {
        if self.wakeups[node] >= self.reveal_after {
            self.parents[node]
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_protocol::{TreeProtocol, TreeRunner};
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    #[test]
    fn reveals_after_threshold_in_sync_rounds() {
        let g = builders::barbell(12).unwrap();
        let oracle = OracleTree::new(&g, 0, 5).unwrap();
        let mut runner = TreeRunner::new(oracle);
        let stats = Engine::new(EngineConfig::synchronous(0)).run(&mut runner);
        assert!(stats.completed);
        // Every node wakes once per round: exactly 5 rounds.
        assert_eq!(stats.rounds, 5);
        let tree = runner.inner().spanning_tree().unwrap();
        assert!(tree.is_spanning_tree_of(&g));
        assert!(tree.depth() <= g.diameter());
    }

    #[test]
    fn zero_threshold_reveals_on_first_wakeup() {
        let g = builders::path(5).unwrap();
        let mut oracle = OracleTree::new(&g, 2, 0).unwrap();
        // Before any wakeup the parent is already available (0 >= 0).
        assert!(oracle.parent(0).is_some());
        assert!(oracle.is_tree_complete());
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(0);
        assert!(oracle.on_wakeup(0, &mut rng).is_none());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = builders::path(4).unwrap();
        assert!(OracleTree::new(&g, 99, 1).is_err());
        let dis = ag_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(OracleTree::new(&dis, 0, 1).is_err());
    }

    #[test]
    fn async_reveal_takes_about_threshold_rounds() {
        let g = builders::complete(16).unwrap();
        let oracle = OracleTree::new(&g, 0, 8).unwrap();
        let mut runner = TreeRunner::new(oracle);
        let stats =
            Engine::new(EngineConfig::asynchronous(4).with_max_rounds(10_000)).run(&mut runner);
        assert!(stats.completed);
        // Coupon-collector-ish: every node needs 8 wakeups; expected
        // completion ~ 8 + log n rounds, certainly within 8..64.
        assert!(stats.rounds >= 8, "{} rounds", stats.rounds);
        assert!(stats.rounds < 64, "{} rounds", stats.rounds);
    }
}
