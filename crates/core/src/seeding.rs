//! Central seed derivation for every trial the repo runs.
//!
//! History: `RunSpec::with_seed` and the bench crate's old
//! `median_rounds_protocol` each invented their own splitmix-style
//! constant, so "trial 3 of experiment X" and "trial 0 of experiment Y"
//! could silently share an engine stream. All derivation now goes through
//! this module:
//!
//! * a **protocol seed** for trial `t` of a plan seeded `s₀` is
//!   `splitmix64(s₀ + t·γ)` with γ the golden-ratio increment — the
//!   SplitMix64 sequence, which is a bijection of the trial index, so
//!   distinct trials of one plan can never share a protocol seed;
//! * an **engine seed** is `splitmix64(protocol_seed ⊕ SALT)` — again a
//!   bijection, so distinct protocol seeds can never share an engine
//!   seed, and the two streams of one trial are decorrelated.

/// Golden-ratio increment of the SplitMix64 sequence (the shared
/// workspace definition — see [`ag_graph::seedmix`], which also feeds
/// `ScheduledTopology`'s per-epoch churn streams).
pub(crate) const GOLDEN_GAMMA: u64 = ag_graph::seedmix::GOLDEN_GAMMA;

/// Salt separating the engine-seed domain from the protocol-seed domain.
const ENGINE_SALT: u64 = 0x5EED_BA5E_D0C5_EED5;

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
/// Re-exported from the single workspace definition.
pub use ag_graph::seedmix::splitmix64;

/// The engine seed paired with a protocol seed. Bijective in
/// `protocol_seed`, so two distinct protocol seeds never share an engine
/// stream.
#[must_use]
pub fn engine_seed_for(protocol_seed: u64) -> u64 {
    splitmix64(protocol_seed ^ ENGINE_SALT)
}

/// The protocol seed of trial `trial` in a plan seeded `seed0`.
/// Bijective in `trial` for fixed `seed0` (γ is odd), so distinct trials
/// never collide.
#[must_use]
pub fn trial_protocol_seed(seed0: u64, trial: u64) -> u64 {
    splitmix64(seed0.wrapping_add(trial.wrapping_mul(GOLDEN_GAMMA)))
}
