//! TAG: Tree-based Algebraic Gossip (Section 4).

use ag_gf::SlabField;
use ag_graph::{Graph, GraphError, NodeId, SpanningTree, Topology};
use ag_rlnc::{Decoder, Generation, Packet, Recoder};
use ag_sim::{Action, ContactIntent, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ag::AgConfig;
use crate::tree_protocol::TreeProtocol;

/// The message type of [`Tag`]: Phase-1 (spanning tree) or Phase-2 (RLNC).
#[derive(Debug, Clone)]
pub enum TagMsg<M, F> {
    /// A spanning-tree protocol message.
    Tree(M),
    /// An algebraic-gossip coded packet.
    Ag(Packet<F>),
}

/// Contact tags distinguishing TAG's phases inside the engine.
const TAG_PHASE1: u32 = 1;
const TAG_PHASE2: u32 = 2;

/// The TAG protocol: "if a node wakes up when the total number of its
/// wakeups until now is odd, it acts according to Phase 1 [the spanning
/// tree protocol S]. If … even, it acts according to Phase 2 [EXCHANGE
/// algebraic gossip with its parent]."
///
/// Phase 2 is idle until the node obtains a parent, after which its fixed
/// communication partner is that parent — which removes the `Δ` factor
/// from the uniform-gossip bound and yields Theorem 4:
/// `t(TAG) = O(k + log n + d(S) + t(S))` w.h.p.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use ag_sim::{CommModel, Engine, EngineConfig};
/// use algebraic_gossip::{AgConfig, BroadcastTree, Tag};
///
/// // TAG with B_RR on the barbell: the paper's headline configuration.
/// let g = builders::barbell(12).unwrap();
/// let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 5).unwrap();
/// let cfg = AgConfig::new(12); // k = n: all-to-all
/// let mut tag = Tag::<Gf256, _>::new(&g, brr, &cfg, 5).unwrap();
/// let stats = Engine::new(EngineConfig::synchronous(5).with_max_rounds(100_000))
///     .run(&mut tag);
/// assert!(stats.completed);
/// ```
#[derive(Debug, Clone)]
pub struct Tag<F: SlabField, S, T: Topology = Graph> {
    topology: T,
    tree: S,
    generation: Generation<F>,
    decoders: Vec<Decoder<F>>,
    wakeups: Vec<u64>,
}

impl<F: SlabField, S: TreeProtocol> Tag<F, S, Graph> {
    /// Builds TAG over `graph` using `tree` as the Phase-1 protocol `S`.
    ///
    /// `cfg.comm_model` is ignored (Phase 2's partner is always the
    /// parent; Phase 1 uses `S`'s own rule); `cfg.action` is ignored in
    /// Phase 2, which is EXCHANGE per the paper's pseudo-code.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0`, the graph is
    /// disconnected, or `tree` is for a different node count.
    pub fn new(graph: &Graph, tree: S, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        Self::on_topology(graph.clone(), tree, cfg, seed)
    }

    /// Like [`Tag::new`] but disseminating the *given* generation (real
    /// data, e.g. from [`ag_rlnc::BlockEncoder`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] on shape mismatch, disconnected
    /// graph, or tree-size mismatch.
    pub fn new_with_generation(
        graph: &Graph,
        tree: S,
        cfg: &AgConfig,
        generation: Generation<F>,
        seed: u64,
    ) -> Result<Self, GraphError> {
        Self::on_topology_with_generation(graph.clone(), tree, cfg, generation, seed)
    }
}

impl<F: SlabField, S: TreeProtocol, T: Topology> Tag<F, S, T> {
    /// Builds TAG over an owned [`Topology`]. `tree` should read through
    /// the *same* schedule (e.g. a clone of the same
    /// `ScheduledTopology`): TAG forwards the engines' round-start hook
    /// to both its own view and `tree`'s, so the two advance in lockstep.
    /// Phase-2 contacts additionally check that the tree edge to the
    /// parent still exists in the current view — a cut parent edge makes
    /// the node sit the phase out, which is exactly how TAG's
    /// static-tree advantage erodes under the F9 bridge-cut adversary.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0`, the initial view
    /// is disconnected, or `tree` is for a different node count.
    pub fn on_topology(
        topology: T,
        tree: S,
        cfg: &AgConfig,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if cfg.k == 0 {
            return Err(GraphError::InvalidSize("k must be positive".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let generation = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        Self::on_topology_with_generation(topology, tree, cfg, generation, seed)
    }

    /// [`Tag::on_topology`] with the *given* generation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] on shape mismatch, a
    /// disconnected initial view, or tree-size mismatch.
    pub fn on_topology_with_generation(
        topology: T,
        tree: S,
        cfg: &AgConfig,
        generation: Generation<F>,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if cfg.k != generation.k() || cfg.payload_len != generation.message_len() {
            return Err(GraphError::InvalidSize(format!(
                "config shape (k={}, r={}) does not match generation (k={}, r={})",
                cfg.k,
                cfg.payload_len,
                generation.k(),
                generation.message_len()
            )));
        }
        if !topology.is_connected_now() {
            return Err(GraphError::InvalidSize(
                "dissemination requires a connected (initial) graph".into(),
            ));
        }
        if tree.num_nodes() != topology.n() {
            return Err(GraphError::InvalidSize(format!(
                "tree protocol covers {} nodes but graph has {}",
                tree.num_nodes(),
                topology.n()
            )));
        }
        // Advance the RNG identically to `on_topology` so placement agrees.
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        let hosts = cfg.placement.assign(topology.n(), cfg.k, &mut rng);
        let mut decoders: Vec<Decoder<F>> = (0..topology.n())
            .map(|_| Decoder::new(cfg.k, cfg.payload_len))
            .collect();
        for (msg, &host) in hosts.iter().enumerate() {
            decoders[host].seed_message(&generation, msg);
        }
        let wakeups = vec![0; topology.n()];
        Ok(Tag {
            topology,
            tree,
            generation,
            decoders,
            wakeups,
        })
    }

    /// The Phase-1 protocol.
    #[must_use]
    pub fn tree_protocol(&self) -> &S {
        &self.tree
    }

    /// The finished spanning tree, once Phase 1 completes.
    #[must_use]
    pub fn spanning_tree(&self) -> Option<SpanningTree> {
        self.tree.spanning_tree()
    }

    /// The ground-truth generation.
    #[must_use]
    pub fn generation(&self) -> &Generation<F> {
        &self.generation
    }

    /// Node `v`'s current rank.
    #[must_use]
    pub fn rank(&self, v: NodeId) -> usize {
        self.decoders[v].rank()
    }

    /// Node `v`'s decoded messages once complete.
    #[must_use]
    pub fn decoded(&self, v: NodeId) -> Option<Vec<Vec<F>>> {
        self.decoders[v].decode()
    }
}

impl<F: SlabField, S: TreeProtocol, T: Topology> Protocol for Tag<F, S, T> {
    type Msg = TagMsg<S::Msg, F>;

    fn num_nodes(&self) -> usize {
        self.topology.n()
    }

    fn on_round_start(&mut self, round: u64) {
        // Advance both views in lockstep (no-ops for static topologies).
        self.topology.advance_to_epoch(round.saturating_sub(1));
        self.tree.on_round_start(round);
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        self.wakeups[node] += 1;
        if self.wakeups[node] % 2 == 1 {
            // Phase 1: one step of the spanning-tree protocol S.
            let mut intent = self.tree.on_wakeup(node, rng)?;
            intent.tag = TAG_PHASE1;
            Some(intent)
        } else {
            // Phase 2: EXCHANGE algebraic gossip with the parent, if any —
            // and only while the tree edge still exists in the current
            // view. Statically a parent is always a neighbor (it was
            // learned over a contact), so the check never fires; under
            // churn a cut parent edge idles the phase.
            let parent = self.tree.parent(node)?;
            if !self.topology.has_edge(node, parent) {
                return None;
            }
            Some(ContactIntent {
                partner: parent,
                action: Action::Exchange,
                tag: TAG_PHASE2,
            })
        }
    }

    fn compose(&self, from: NodeId, to: NodeId, tag: u32, rng: &mut StdRng) -> Option<Self::Msg> {
        match tag {
            TAG_PHASE1 => self.tree.compose(from, to, rng).map(TagMsg::Tree),
            TAG_PHASE2 => Recoder::new(&self.decoders[from]).emit(rng).map(TagMsg::Ag),
            // ag-lint: allow(panic-policy) — the engine only feeds compose()
            // tags that this protocol's own contact() returned, and TAG
            // emits nothing but TAG_PHASE1/TAG_PHASE2.
            other => unreachable!("unknown TAG contact tag {other}"),
        }
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, _tag: u32, msg: Self::Msg) {
        // "On contact from other node w: if w performs Phase 1, exchange
        // according to S; else exchange according to algebraic gossip."
        // The message variant itself carries the phase.
        match msg {
            TagMsg::Tree(m) => self.tree.deliver(from, to, m),
            TagMsg::Ag(p) => {
                let _ = self.decoders[to].receive(p);
            }
        }
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.decoders[node].is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::BroadcastTree;
    use crate::oracle::OracleTree;
    use crate::placement::Placement;
    use ag_gf::{Gf2, Gf256};
    use ag_graph::builders;
    use ag_sim::{CommModel, Engine, EngineConfig, TimeModel};

    fn run_tag_brr<F: SlabField>(
        g: &Graph,
        cfg: &AgConfig,
        time: TimeModel,
        seed: u64,
    ) -> (Tag<F, BroadcastTree>, ag_sim::RunStats) {
        let brr = BroadcastTree::new(g, 0, CommModel::RoundRobin, seed).unwrap();
        let mut tag = Tag::<F, _>::new(g, brr, cfg, seed).unwrap();
        let ecfg = match time {
            TimeModel::Synchronous => EngineConfig::synchronous(seed),
            TimeModel::Asynchronous => EngineConfig::asynchronous(seed),
        }
        .with_max_rounds(500_000);
        let stats = Engine::new(ecfg).run(&mut tag);
        (tag, stats)
    }

    #[test]
    fn tag_brr_completes_and_decodes_on_barbell() {
        let g = builders::barbell(12).unwrap();
        let cfg = AgConfig::new(12).with_payload_len(2);
        let (tag, stats) = run_tag_brr::<Gf256>(&g, &cfg, TimeModel::Synchronous, 3);
        assert!(stats.completed);
        for v in 0..12 {
            assert_eq!(tag.decoded(v).unwrap(), tag.generation().messages());
        }
        // Phase 1 finished too, and the tree is genuine.
        let tree = tag.spanning_tree().unwrap();
        assert!(tree.is_spanning_tree_of(&g));
    }

    #[test]
    fn tag_completes_asynchronously() {
        let g = builders::grid(3, 4).unwrap();
        let cfg = AgConfig::new(6);
        let (_, stats) = run_tag_brr::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 9);
        assert!(stats.completed);
    }

    #[test]
    fn tag_with_gf2_on_path() {
        let g = builders::path(8).unwrap();
        let cfg = AgConfig::new(8);
        let (_, stats) = run_tag_brr::<Gf2>(&g, &cfg, TimeModel::Synchronous, 1);
        assert!(stats.completed);
    }

    #[test]
    fn tag_with_oracle_tree() {
        let g = builders::barbell(16).unwrap();
        let oracle = OracleTree::new(&g, 0, 4).unwrap();
        let cfg = AgConfig::new(8).with_placement(Placement::Random);
        let mut tag = Tag::<Gf256, _>::new(&g, oracle, &cfg, 2).unwrap();
        let stats =
            Engine::new(EngineConfig::synchronous(2).with_max_rounds(100_000)).run(&mut tag);
        assert!(stats.completed);
        let tree = tag.spanning_tree().unwrap();
        assert!(tree.is_spanning_tree_of(&g));
    }

    #[test]
    fn tag_beats_theorem4_bound_with_margin() {
        // t(TAG) = O(k + log n + d(S) + t(S)); with BRR, t(S) <= 3n and
        // the TAG interleaving doubles it. Check a x16 constant.
        let g = builders::barbell(16).unwrap();
        let k = 16;
        let cfg = AgConfig::new(k);
        let (_, stats) = run_tag_brr::<Gf256>(&g, &cfg, TimeModel::Synchronous, 13);
        assert!(stats.completed);
        let bound = ag_analysis::tag_bound(k, g.n(), g.n() as u32, 6.0 * g.n() as f64);
        assert!(
            (stats.rounds as f64) < 16.0 * bound,
            "{} rounds vs bound {bound}",
            stats.rounds
        );
    }

    #[test]
    fn rejects_mismatched_tree_size() {
        let g = builders::path(6).unwrap();
        let other = builders::path(5).unwrap();
        let brr = BroadcastTree::new(&other, 0, CommModel::RoundRobin, 0).unwrap();
        assert!(Tag::<Gf256, _>::new(&g, brr, &AgConfig::new(2), 0).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = builders::barbell(10).unwrap();
        let cfg = AgConfig::new(5);
        let (_, a) = run_tag_brr::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 42);
        let (_, b) = run_tag_brr::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn phase2_idle_until_parent_known() {
        // With an oracle that reveals very late, no AG packets flow early:
        // after a few rounds every rank is still the seeded value.
        let g = builders::cycle(8).unwrap();
        let oracle = OracleTree::new(&g, 0, 1_000).unwrap();
        let cfg = AgConfig::new(8);
        let mut tag = Tag::<Gf256, _>::new(&g, oracle, &cfg, 3).unwrap();
        let _ = Engine::new(EngineConfig::synchronous(3).with_max_rounds(10)).run(&mut tag);
        for v in 0..8 {
            assert_eq!(tag.rank(v), 1, "node {v} gained rank before Phase 1 ended");
        }
    }
}
