//! Uniform (and round-robin) algebraic gossip — the protocol of Theorem 1.

use ag_gf::SlabField;
use ag_graph::{Graph, GraphError, NodeId, Topology};
use ag_rlnc::{ArenaGrowth, DecoderArena, DecoderShard, Generation, RowPool};
use ag_sim::{
    Action, CommModel, ContactIntent, PartnerSelector, Protocol, ProtocolShard, ShardableProtocol,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::placement::Placement;

/// Configuration for an [`AlgebraicGossip`] instance.
///
/// # Examples
///
/// ```
/// use algebraic_gossip::{Action, AgConfig, CommModel, Placement};
///
/// let cfg = AgConfig::new(16)
///     .with_payload_len(8)
///     .with_comm_model(CommModel::Uniform)
///     .with_action(Action::Exchange)
///     .with_placement(Placement::Spread);
/// assert_eq!(cfg.k, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgConfig {
    /// Number of initial messages to disseminate.
    pub k: usize,
    /// Symbols per message (`r`); 0 runs pure rank dynamics.
    pub payload_len: usize,
    /// Partner-selection model (Definition 1 or 2).
    pub comm_model: CommModel,
    /// PUSH / PULL / EXCHANGE (the paper mostly analyzes EXCHANGE).
    pub action: Action,
    /// Who initially holds which message.
    pub placement: Placement,
    /// Sparse-recoding density in `(0, 1]`; `1.0` (default) is the
    /// paper's dense combination over all stored rows.
    pub coding_density: f64,
    /// How the decoder arena provisions per-node row storage. The default
    /// [`ArenaGrowth::Chunked`] allocates rows as rank grows (bit-identical
    /// trajectories, far less memory at large `n`);
    /// [`ArenaGrowth::Preallocated`] reserves everything up front for
    /// strictly allocation-free steady-state rounds.
    pub arena_growth: ArenaGrowth,
}

impl AgConfig {
    /// A config for `k` messages with the paper's defaults: EXCHANGE,
    /// uniform gossip, spread placement, payload-free packets.
    #[must_use]
    pub fn new(k: usize) -> Self {
        AgConfig {
            k,
            payload_len: 0,
            comm_model: CommModel::Uniform,
            action: Action::Exchange,
            placement: Placement::Spread,
            coding_density: 1.0,
            arena_growth: ArenaGrowth::default(),
        }
    }

    /// Sets the payload length in symbols (builder-style).
    #[must_use]
    pub fn with_payload_len(mut self, r: usize) -> Self {
        self.payload_len = r;
        self
    }

    /// Sets the communication model (builder-style).
    #[must_use]
    pub fn with_comm_model(mut self, m: CommModel) -> Self {
        self.comm_model = m;
        self
    }

    /// Sets the action (builder-style).
    #[must_use]
    pub fn with_action(mut self, a: Action) -> Self {
        self.action = a;
        self
    }

    /// Sets the placement (builder-style).
    #[must_use]
    pub fn with_placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Sets the sparse-recoding density (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn with_coding_density(mut self, density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "coding density must be in (0, 1]"
        );
        self.coding_density = density;
        self
    }

    /// Sets the decoder-arena growth policy (builder-style).
    #[must_use]
    pub fn with_arena_growth(mut self, growth: ArenaGrowth) -> Self {
        self.arena_growth = growth;
        self
    }
}

/// The algebraic gossip protocol of Section 3.
///
/// Every node keeps an RLNC decoder; on wakeup it picks a partner per
/// the communication model and the contact moves fresh random linear
/// combinations in the configured direction(s). A node is complete when
/// its rank reaches `k`, at which point [`AlgebraicGossip::decoded`]
/// returns all the original messages.
///
/// Neighbors are read through a [`Topology`] view `T`. The default
/// `T = Graph` is the static case — zero overhead, bit-identical to the
/// pre-abstraction protocol (pinned by the golden trajectory hashes). A
/// [`ag_graph::ScheduledTopology`] makes the same protocol run over a
/// churning graph: the engines' round-start hook advances the view to
/// epoch `round − 1`, so partner selection (and nothing else — RLNC state
/// is topology-oblivious, which is exactly the Haeupler-style robustness
/// the F9 experiments measure) follows the schedule.
///
/// All `n` decoders live in one simulation-owned [`DecoderArena`] (every
/// node's equations in a single slab preallocated at construction) and
/// outgoing messages cycle through a [`RowPool`], so the engine's
/// steady-state round loop performs **zero** per-message heap allocation —
/// the property `bench_rlnc_throughput` pins with a counting allocator at
/// `n = 10⁵` with 1 KiB payloads. Trajectories are bit-identical to the
/// previous `Vec<Decoder>` storage (same elimination code, same RNG
/// draws), which the golden-trajectory hashes verify end to end.
///
/// Drive it with [`ag_sim::Engine`] under either time model.
#[derive(Debug, Clone)]
pub struct AlgebraicGossip<F: SlabField, T: Topology = Graph> {
    topology: T,
    generation: Generation<F>,
    decoders: DecoderArena<F>,
    selector: PartnerSelector,
    action: Action,
    coding_density: f64,
    /// Recycles outgoing packed-row buffers through compose → outbox →
    /// deliver (or dedup/loss drop) → back to the pool.
    pool: RowPool,
    /// How many buffers `pool` was pre-warmed with (recorded at
    /// construction so the balance diagnostics never re-derive it).
    pool_prewarm: usize,
}

impl<F: SlabField> AlgebraicGossip<F, Graph> {
    /// Builds the protocol over `graph` with a random generation of
    /// `cfg.k` messages. `seed` controls the generation content, the
    /// placement, and round-robin pointer offsets (the engine has its own
    /// seed for wakeups/coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0` or the graph is
    /// disconnected (dissemination could never complete).
    pub fn new(graph: &Graph, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        Self::on_topology(graph.clone(), cfg, seed)
    }

    /// Like [`AlgebraicGossip::new`] but disseminating the *given*
    /// generation (real data, e.g. from [`ag_rlnc::BlockEncoder`]) instead
    /// of random content. `cfg.k` and `cfg.payload_len` must match the
    /// generation's shape.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] on shape mismatch or a
    /// disconnected graph.
    pub fn new_with_generation(
        graph: &Graph,
        cfg: &AgConfig,
        generation: Generation<F>,
        seed: u64,
    ) -> Result<Self, GraphError> {
        Self::on_topology_with_generation(graph.clone(), cfg, generation, seed)
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.topology
    }
}

impl<F: SlabField, T: Topology> AlgebraicGossip<F, T> {
    /// Builds the protocol over an owned [`Topology`] (static or
    /// scheduled) with a random generation — the dynamic-scenario
    /// counterpart of [`AlgebraicGossip::new`], with the identical seed
    /// discipline (same seed ⇒ same generation, placement and round-robin
    /// offsets, whatever the topology type).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if `k == 0` or the topology's
    /// initial (epoch-0) view is disconnected. Later epochs may
    /// disconnect freely — surviving that is the point of the dynamic
    /// scenarios.
    pub fn on_topology(topology: T, cfg: &AgConfig, seed: u64) -> Result<Self, GraphError> {
        if cfg.k == 0 {
            return Err(GraphError::InvalidSize("k must be positive".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let generation = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        Self::on_topology_with_generation(topology, cfg, generation, seed)
    }

    /// [`AlgebraicGossip::on_topology`] with the *given* generation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] on shape mismatch or a
    /// disconnected initial view.
    pub fn on_topology_with_generation(
        topology: T,
        cfg: &AgConfig,
        generation: Generation<F>,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if cfg.k != generation.k() || cfg.payload_len != generation.message_len() {
            return Err(GraphError::InvalidSize(format!(
                "config shape (k={}, r={}) does not match generation (k={}, r={})",
                cfg.k,
                cfg.payload_len,
                generation.k(),
                generation.message_len()
            )));
        }
        if !topology.is_connected_now() {
            return Err(GraphError::InvalidSize(
                "dissemination requires a connected (initial) graph".into(),
            ));
        }
        // Advance the RNG identically to `on_topology` so that placement
        // and round-robin offsets agree between the two constructors.
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = Generation::<F>::random(cfg.k, cfg.payload_len, &mut rng);
        let hosts = cfg.placement.assign(topology.n(), cfg.k, &mut rng);
        let mut decoders =
            DecoderArena::with_growth(topology.n(), cfg.k, cfg.payload_len, cfg.arena_growth);
        for (msg, &host) in hosts.iter().enumerate() {
            decoders.seed_message(host, &generation, msg);
        }
        assert!(
            cfg.coding_density > 0.0 && cfg.coding_density <= 1.0,
            "coding density must be in (0, 1]"
        );
        let selector = PartnerSelector::new(&topology, cfg.comm_model, &mut rng);
        // Pre-warm the message pool to the synchronous-round in-flight
        // ceiling (one buffer per contact direction per node), so the
        // round loop never allocates — not even while early-round traffic
        // is still ramping up to its high-water mark.
        let directions =
            usize::from(cfg.action.sends_forward()) + usize::from(cfg.action.sends_backward());
        let pool_prewarm = directions * topology.n();
        let pool = RowPool::preallocated(pool_prewarm, decoders.row_bytes());
        Ok(AlgebraicGossip {
            topology,
            generation,
            decoders,
            selector,
            action: cfg.action,
            coding_density: cfg.coding_density,
            pool,
            pool_prewarm,
        })
    }

    /// The ground-truth generation (for integrity checks).
    #[must_use]
    pub fn generation(&self) -> &Generation<F> {
        &self.generation
    }

    /// Node `v`'s current rank.
    #[must_use]
    pub fn rank(&self, v: NodeId) -> usize {
        self.decoders.rank(v)
    }

    /// The sum of all node ranks — a convenient global progress measure.
    #[must_use]
    pub fn total_rank(&self) -> usize {
        self.decoders.total_rank()
    }

    /// Node `v`'s decoded messages once complete.
    #[must_use]
    pub fn decoded(&self, v: NodeId) -> Option<Vec<Vec<F>>> {
        self.decoders.decode(v)
    }

    /// Total innovative (helpful) receptions across all nodes.
    #[must_use]
    pub fn helpful_receptions(&self) -> u64 {
        self.decoders.total_innovative()
    }

    /// Total redundant receptions across all nodes.
    #[must_use]
    pub fn redundant_receptions(&self) -> u64 {
        self.decoders.total_redundant()
    }

    /// The topology view partners are drawn from.
    #[must_use]
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Message buffers currently resting in the [`RowPool`] — the
    /// pool-balance diagnostic. Between rounds no message is in flight,
    /// so this must equal the preallocated in-flight ceiling
    /// ([`AlgebraicGossip::pool_prewarm`]) for the entire run; a shrinking
    /// value means some wrapper dropped a pooled buffer instead of
    /// routing it back through `deliver`/`discard`.
    #[must_use]
    pub fn pool_idle(&self) -> usize {
        self.pool.idle()
    }

    /// The number of buffers the pool was pre-warmed with (one per
    /// contact direction per node, recorded at construction).
    #[must_use]
    pub fn pool_prewarm(&self) -> usize {
        self.pool_prewarm
    }

    /// Heap bytes currently committed by the decoder arena — the
    /// memory-model measurement the sharding bench records (bytes/node
    /// under [`ArenaGrowth::Chunked`] vs the preallocated ceiling).
    #[must_use]
    pub fn arena_allocated_bytes(&self) -> usize {
        self.decoders.allocated_bytes()
    }
}

impl<F: SlabField, T: Topology> Protocol for AlgebraicGossip<F, T> {
    /// Messages travel as packed augmented rows (the
    /// [`ag_rlnc::Recoder::emit_packed_row`] wire format), in plain
    /// `Vec<u8>` buffers borrowed from the protocol's [`RowPool`] at
    /// `compose` and returned at `deliver` — or at
    /// [`Protocol::discard`] when the engine drops a message to
    /// same-sender dedup or loss. Every buffer's life ends back in the
    /// pool, so a contact costs **zero** heap allocations end to end —
    /// the difference that lets the payload-carrying sweeps run 10⁵-node
    /// graphs. (Deliberately *not* a self-returning smart-pointer type:
    /// the engine's outbox stays a plain-`Vec` message queue, which is
    /// what keeps the rank-only loop at its PR 3 speed.)
    type Msg = Vec<u8>;

    fn num_nodes(&self) -> usize {
        self.topology.n()
    }

    fn on_round_start(&mut self, round: u64) {
        // Round r runs on epoch r − 1 (epoch 0 = initial graph). A no-op
        // for `T = Graph`, so the static path is unchanged.
        self.topology.advance_to_epoch(round.saturating_sub(1));
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        let partner = self.selector.next_partner(&self.topology, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, rng: &mut StdRng) -> Option<Vec<u8>> {
        let mut row = self.pool.take();
        let emitted = if self.coding_density < 1.0 {
            self.decoders
                .emit_sparse_packed_row_into(from, self.coding_density, rng, &mut row)
        } else {
            self.decoders.emit_packed_row_into(from, rng, &mut row)
        };
        if emitted {
            Some(row)
        } else {
            // Rank-0 node: nothing to say; the buffer goes straight back.
            self.pool.put(row);
            None
        }
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, mut msg: Vec<u8>) {
        // Reduce in place in the message buffer — no scratch copy — then
        // recycle it for a future compose.
        let _ = self.decoders.receive_packed_mut(to, &mut msg);
        self.pool.put(msg);
    }

    fn discard(&mut self, msg: Vec<u8>) {
        self.pool.put(msg);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.decoders.is_complete(node)
    }
}

/// One shard of [`AlgebraicGossip`] for the sharded engine: a
/// [`DecoderShard`] over a contiguous node range plus a *stash* of message
/// buffers pre-drawn from the protocol's [`RowPool`] on the main thread
/// (the pool is `Rc`-based and must never cross threads).
///
/// Buffer discipline: `compose` pops one stash buffer per call — the
/// engine sizes the stash to the shard's exact send count — and every
/// buffer the shard is left holding (unemitted stash, spent delivery
/// rows) comes back through [`AgShard::into_residue`] to be re-pooled via
/// [`Protocol::discard`]. The stash ceiling is the same one-buffer-per-
/// contact-direction bound the pool was pre-warmed with, so
/// `pool_idle == pool_prewarm` still holds at every round boundary.
pub struct AgShard<'a, F: SlabField> {
    dec: DecoderShard<'a, F>,
    coding_density: f64,
    stash: Vec<Vec<u8>>,
    residue: Vec<Vec<u8>>,
}

impl<F: SlabField + Send> ProtocolShard for AgShard<'_, F> {
    type Msg = Vec<u8>;

    fn compose(
        &mut self,
        from: NodeId,
        _to: NodeId,
        _tag: u32,
        rng: &mut StdRng,
    ) -> Option<Vec<u8>> {
        let mut row = self
            .stash
            .pop()
            .expect("stash holds one buffer per planned send");
        let emitted = if self.coding_density < 1.0 {
            self.dec
                .emit_sparse_packed_row_into(from, self.coding_density, rng, &mut row)
        } else {
            self.dec.emit_packed_row_into(from, rng, &mut row)
        };
        if emitted {
            Some(row)
        } else {
            // Rank-0 node: nothing to say; the buffer rides the residue
            // back to the pool.
            self.residue.push(row);
            None
        }
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, mut msg: Vec<u8>) {
        let _ = self.dec.receive_packed_mut(to, &mut msg);
        self.residue.push(msg);
    }

    fn discard(&mut self, msg: Vec<u8>) {
        self.residue.push(msg);
    }

    fn into_residue(mut self) -> Vec<Vec<u8>> {
        self.residue.append(&mut self.stash);
        self.residue
    }
}

impl<F: SlabField + Send, T: Topology> ShardableProtocol for AlgebraicGossip<F, T> {
    type Shard<'a>
        = AgShard<'a, F>
    where
        Self: 'a;

    fn make_shards(
        &mut self,
        bounds: &[(usize, usize)],
        send_counts: &[usize],
    ) -> Vec<AgShard<'_, F>> {
        let pool = &self.pool;
        let coding_density = self.coding_density;
        self.decoders
            .shards_mut(bounds)
            .into_iter()
            .zip(send_counts)
            .map(|(dec, &count)| AgShard {
                dec,
                coding_density,
                stash: (0..count).map(|_| pool.take()).collect(),
                residue: Vec::new(),
            })
            .collect()
    }
}

/// The pre-rework message path of [`AlgebraicGossip`], frozen for the
/// `bench_engine_scale` comparison: contacts move [`Packet`]s that are
/// unpacked on emit and repacked on receive, exactly as the protocol did
/// before the engine rework switched its wire format to packed rows.
///
/// Same seeds draw the same coefficients and run the same eliminations, so
/// a run of this protocol under `ag_sim::reference::ReferenceEngine` must
/// produce [`ag_sim::RunStats`] bit-identical to [`AlgebraicGossip`] under
/// the fast `ag_sim::Engine` — the scale bench asserts exactly that while
/// timing the two stacks. Like `ag_sim::reference`, do not "optimize"
/// this: its value is paying the pre-rework per-message conversion costs.
///
/// [`Packet`]: ag_rlnc::Packet
#[derive(Debug, Clone)]
pub struct PacketAlgebraicGossip<F: SlabField, T: Topology = Graph>(pub AlgebraicGossip<F, T>);

impl<F: SlabField, T: Topology> Protocol for PacketAlgebraicGossip<F, T> {
    type Msg = ag_rlnc::Packet<F>;

    fn num_nodes(&self) -> usize {
        self.0.topology.n()
    }

    fn on_round_start(&mut self, round: u64) {
        self.0.on_round_start(round);
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        self.0.on_wakeup(node, rng)
    }

    fn compose(
        &self,
        from: NodeId,
        _to: NodeId,
        _tag: u32,
        rng: &mut StdRng,
    ) -> Option<ag_rlnc::Packet<F>> {
        if self.0.coding_density < 1.0 {
            self.0
                .decoders
                .emit_sparse_packet(from, self.0.coding_density, rng)
        } else {
            self.0.decoders.emit_packet(from, rng)
        }
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: ag_rlnc::Packet<F>) {
        // The pre-rework `Decoder::receive` shape contract, verbatim.
        assert_eq!(
            msg.generation_size(),
            self.0.decoders.k(),
            "packet generation size mismatch"
        );
        assert_eq!(
            msg.payload_len(),
            self.0.decoders.payload_len(),
            "packet payload length mismatch"
        );
        let _ = self
            .0
            .decoders
            .receive_packed_slice(to, &msg.to_packed_row());
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.0.decoders.is_complete(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Gf2, Gf256};
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig, TimeModel};

    fn run<F: SlabField>(
        graph: &Graph,
        cfg: &AgConfig,
        time: TimeModel,
        seed: u64,
    ) -> (AlgebraicGossip<F>, ag_sim::RunStats) {
        let mut proto = AlgebraicGossip::<F>::new(graph, cfg, seed).unwrap();
        let ecfg = match time {
            TimeModel::Synchronous => EngineConfig::synchronous(seed),
            TimeModel::Asynchronous => EngineConfig::asynchronous(seed),
        }
        .with_max_rounds(200_000);
        let stats = Engine::new(ecfg).run(&mut proto);
        (proto, stats)
    }

    #[test]
    fn all_to_all_on_cycle_completes_and_decodes() {
        let g = builders::cycle(8).unwrap();
        let cfg = AgConfig::new(8).with_payload_len(2);
        let (proto, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 11);
        assert!(stats.completed);
        for v in 0..8 {
            assert_eq!(proto.decoded(v).unwrap(), proto.generation().messages());
        }
        // Exactly n*k helpful receptions are needed in total.
        assert_eq!(proto.helpful_receptions(), 8 * 8 - 8); // minus k seeds
    }

    #[test]
    fn single_source_on_grid_asynchronous() {
        let g = builders::grid(3, 3).unwrap();
        let cfg = AgConfig::new(4)
            .with_placement(Placement::SingleSource(0))
            .with_payload_len(1);
        let (proto, stats) = run::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 3);
        assert!(stats.completed);
        for v in 0..9 {
            assert_eq!(proto.decoded(v).unwrap(), proto.generation().messages());
        }
    }

    #[test]
    fn gf2_worst_case_field_still_completes() {
        let g = builders::path(6).unwrap();
        let cfg = AgConfig::new(6);
        let (proto, stats) = run::<Gf2>(&g, &cfg, TimeModel::Synchronous, 5);
        assert!(stats.completed, "GF(2) run did not finish");
        assert_eq!(proto.total_rank(), 6 * 6);
    }

    #[test]
    fn round_robin_comm_model_completes() {
        let g = builders::complete(6).unwrap();
        let cfg = AgConfig::new(6).with_comm_model(CommModel::RoundRobin);
        let (_, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 2);
        assert!(stats.completed);
    }

    #[test]
    fn push_and_pull_variants_complete() {
        let g = builders::cycle(6).unwrap();
        for action in [Action::Push, Action::Pull] {
            let cfg = AgConfig::new(3).with_action(action);
            let (_, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 8);
            assert!(stats.completed, "{action:?} did not complete");
        }
    }

    #[test]
    fn rejects_disconnected_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(2), 0).is_err());
    }

    #[test]
    fn rejects_zero_k() {
        let g = builders::path(3).unwrap();
        assert!(AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(0), 0).is_err());
    }

    #[test]
    fn sync_stopping_respects_k_over_2_lower_bound() {
        // Theorem 3's lower bound: k-dissemination needs >= k/2 rounds.
        let g = builders::complete(16).unwrap();
        let cfg = AgConfig::new(16);
        let (_, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 4);
        assert!(stats.completed);
        assert!(
            stats.rounds >= 8,
            "finished in {} rounds, below the k/2 = 8 lower bound",
            stats.rounds
        );
    }

    #[test]
    fn sync_stopping_respects_diameter_lower_bound() {
        // A message can travel one hop per synchronous round.
        let g = builders::path(20).unwrap();
        let cfg = AgConfig::new(1).with_placement(Placement::SingleSource(0));
        let (_, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 4);
        assert!(stats.completed);
        assert!(
            stats.rounds >= 19,
            "beat the diameter: {} rounds",
            stats.rounds
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = builders::grid(3, 3).unwrap();
        let cfg = AgConfig::new(5);
        let (_, s1) = run::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 77);
        let (_, s2) = run::<Gf256>(&g, &cfg, TimeModel::Asynchronous, 77);
        assert_eq!(s1, s2);
    }

    #[test]
    fn stays_within_theorem1_bound_with_margin() {
        // Theorem 1: O((k + log n + D) * Delta). Check a generous constant
        // (x12) holds on several families — this is the T1.1 experiment in
        // miniature.
        for (g, name) in [
            (builders::path(16).unwrap(), "path"),
            (builders::grid(4, 4).unwrap(), "grid"),
            (builders::binary_tree(15).unwrap(), "tree"),
            (builders::complete(12).unwrap(), "complete"),
        ] {
            let k = 4;
            let cfg = AgConfig::new(k);
            let bound = ag_analysis::uniform_ag_bound(k, g.n(), g.diameter(), g.max_degree());
            let (_, stats) = run::<Gf256>(&g, &cfg, TimeModel::Synchronous, 21);
            assert!(stats.completed, "{name} incomplete");
            assert!(
                (stats.rounds as f64) < 12.0 * bound,
                "{name}: {} rounds vs bound {bound}",
                stats.rounds
            );
        }
    }
}
