//! Failure injection: crash-stop nodes under any protocol.
//!
//! The paper assumes fail-free execution; a practical gossip library must
//! tolerate crash-stop failures, and RLNC is naturally robust to them —
//! any `k` independent equations suffice, no matter which nodes vanish.
//! [`WithCrashes`] wraps any [`Protocol`]: crashed nodes stop initiating
//! contacts, stop responding, and drop incoming messages. Completion is
//! then defined over the *surviving* nodes.
//!
//! Note that survivors can only finish if the initial messages remain
//! collectively reachable: if every holder of some message crashes before
//! forwarding anything, that message is lost — exactly the real-world
//! failure mode, and the `fig_ablation` experiment quantifies when coding
//! has already spread enough redundancy to survive it.

use ag_graph::NodeId;
use ag_sim::{ContactIntent, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When and which nodes crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Node `v` crashes just before its `schedule[i].1`-th wakeup.
    schedule: Vec<(NodeId, u64)>,
}

impl CrashPlan {
    /// An explicit plan: each `(node, wakeup)` pair crashes `node` at its
    /// `wakeup`-th wakeup (1-based; 1 = crashed from the very start).
    #[must_use]
    pub fn explicit(schedule: Vec<(NodeId, u64)>) -> Self {
        CrashPlan { schedule }
    }

    /// Crashes each node independently with probability `fraction`, all at
    /// the given wakeup count. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn random_fraction(n: usize, fraction: f64, at_wakeup: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "crash fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = (0..n)
            .filter(|_| rng.gen_bool(fraction))
            .map(|v| (v, at_wakeup))
            .collect();
        CrashPlan { schedule }
    }

    /// Number of scheduled crashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// True when no crash is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// Wraps a protocol with crash-stop failure injection.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use ag_sim::{Engine, EngineConfig};
/// use algebraic_gossip::{AgConfig, AlgebraicGossip, CrashPlan, WithCrashes};
///
/// let g = builders::complete(10).unwrap();
/// let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(5), 3).unwrap();
/// // Node 7 crashes at its 4th wakeup.
/// let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(7, 4)]));
/// let stats = Engine::new(EngineConfig::synchronous(3).with_max_rounds(100_000))
///     .run(&mut proto);
/// assert!(stats.completed); // the 9 survivors all decode
/// assert!(proto.is_crashed(7));
/// ```
#[derive(Debug, Clone)]
pub struct WithCrashes<P> {
    inner: P,
    crash_at: Vec<Option<u64>>,
    wakeups: Vec<u64>,
    crashed: Vec<bool>,
}

impl<P: Protocol> WithCrashes<P> {
    /// Wraps `inner` with the given crash plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside `0..inner.num_nodes()` or
    /// schedules a node twice.
    #[must_use]
    pub fn new(inner: P, plan: CrashPlan) -> Self {
        let n = inner.num_nodes();
        let mut crash_at = vec![None; n];
        for &(v, at) in &plan.schedule {
            assert!(v < n, "crash plan names node {v} out of {n}");
            assert!(crash_at[v].is_none(), "node {v} scheduled to crash twice");
            crash_at[v] = Some(at);
        }
        WithCrashes {
            inner,
            crash_at,
            wakeups: vec![0; n],
            crashed: vec![false; n],
        }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Has `v` crashed yet?
    #[must_use]
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v]
    }

    /// Number of nodes currently crashed.
    #[must_use]
    pub fn crashed_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| c).count()
    }

    /// Nodes that are still alive.
    #[must_use]
    pub fn survivors(&self) -> Vec<NodeId> {
        (0..self.inner.num_nodes())
            .filter(|&v| !self.crashed[v])
            .collect()
    }
}

impl<P: Protocol> Protocol for WithCrashes<P> {
    type Msg = P::Msg;

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        if self.crashed[node] {
            return None;
        }
        self.wakeups[node] += 1;
        if let Some(at) = self.crash_at[node] {
            if self.wakeups[node] >= at {
                self.crashed[node] = true;
                return None;
            }
        }
        self.inner.on_wakeup(node, rng)
    }

    fn compose(&self, from: NodeId, to: NodeId, tag: u32, rng: &mut StdRng) -> Option<P::Msg> {
        if self.crashed[from] {
            return None; // a dead node does not respond
        }
        self.inner.compose(from, to, tag, rng)
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: P::Msg) {
        if self.crashed[to] {
            return; // messages to the dead are dropped
        }
        self.inner.deliver(from, to, tag, msg);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        // Completion is over the survivors: crashed nodes are excused.
        self.crashed[node] || self.inner.node_complete(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ag::{AgConfig, AlgebraicGossip};
    use crate::placement::Placement;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    #[test]
    fn survivors_decode_despite_crashes() {
        let g = builders::complete(12).unwrap();
        let inner =
            AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(6).with_payload_len(1), 7).unwrap();
        // A quarter of the nodes crash early (but after round 2, by which
        // time every message has been forwarded at least once w.h.p.).
        let plan = CrashPlan::explicit(vec![(1, 3), (5, 3), (9, 3)]);
        let mut proto = WithCrashes::new(inner, plan);
        let stats =
            Engine::new(EngineConfig::synchronous(7).with_max_rounds(200_000)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(proto.crashed_count(), 3);
        for v in proto.survivors() {
            assert_eq!(
                proto.inner().decoded(v).unwrap(),
                proto.inner().generation().messages(),
                "survivor {v} failed to decode"
            );
        }
    }

    #[test]
    fn crash_from_start_isolates_node() {
        // k = 3 messages live at nodes 0, 1, 2 (spread placement); node 5
        // holds nothing, so crashing it from the start loses no data.
        let g = builders::complete(6).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(3), 2).unwrap();
        let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(5, 1)]));
        let stats =
            Engine::new(EngineConfig::synchronous(2).with_max_rounds(100_000)).run(&mut proto);
        assert!(stats.completed);
        assert!(proto.is_crashed(5));
        // The crashed node never gained any rank: it was dead on arrival.
        assert_eq!(proto.inner().rank(5), 0);
    }

    #[test]
    fn losing_every_holder_stalls_the_run() {
        // The only holder of all messages crashes before its 1st wakeup
        // AND before anyone contacts it: information is gone.
        let g = builders::path(4).unwrap();
        let cfg = AgConfig::new(2).with_placement(Placement::SingleSource(3));
        let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, 3).unwrap();
        let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(3, 1)]));
        let stats = Engine::new(EngineConfig::synchronous(3).with_max_rounds(500)).run(&mut proto);
        assert!(
            !stats.completed,
            "messages were lost; survivors cannot finish"
        );
    }

    #[test]
    fn random_fraction_is_deterministic_and_bounded() {
        let a = CrashPlan::random_fraction(100, 0.3, 5, 42);
        let b = CrashPlan::random_fraction(100, 0.3, 5, 42);
        assert_eq!(a, b);
        assert!(a.len() > 10 && a.len() < 60, "got {} crashes", a.len());
        assert!(CrashPlan::random_fraction(50, 0.0, 1, 0).is_empty());
        assert_eq!(CrashPlan::random_fraction(50, 1.0, 1, 0).len(), 50);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn plan_validates_node_range() {
        let g = builders::path(3).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(1), 0).unwrap();
        let _ = WithCrashes::new(inner, CrashPlan::explicit(vec![(99, 1)]));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn plan_rejects_duplicates() {
        let g = builders::path(3).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(1), 0).unwrap();
        let _ = WithCrashes::new(inner, CrashPlan::explicit(vec![(1, 1), (1, 2)]));
    }
}
