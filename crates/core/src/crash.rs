//! Failure injection: crash-stop nodes under any protocol.
//!
//! The paper assumes fail-free execution; a practical gossip library must
//! tolerate crash-stop failures, and RLNC is naturally robust to them —
//! any `k` independent equations suffice, no matter which nodes vanish.
//! [`WithCrashes`] wraps any [`Protocol`]: crashed nodes stop initiating
//! contacts, stop responding, and drop incoming messages. Completion is
//! then defined over the *surviving* nodes.
//!
//! Note that survivors can only finish if the initial messages remain
//! collectively reachable: if every holder of some message crashes before
//! forwarding anything, that message is lost — exactly the real-world
//! failure mode, and the `fig_ablation` experiment quantifies when coding
//! has already spread enough redundancy to survive it.

use ag_graph::NodeId;
use ag_sim::{ContactIntent, Protocol, ProtocolShard, ShardableProtocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When and which nodes crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Node `v` crashes just before its `schedule[i].1`-th wakeup.
    schedule: Vec<(NodeId, u64)>,
}

impl CrashPlan {
    /// An explicit plan: each `(node, wakeup)` pair crashes `node` at its
    /// `wakeup`-th wakeup (1-based; 1 = crashed from the very start).
    #[must_use]
    pub fn explicit(schedule: Vec<(NodeId, u64)>) -> Self {
        CrashPlan { schedule }
    }

    /// Crashes each node independently with probability `fraction`, all at
    /// the given wakeup count. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn random_fraction(n: usize, fraction: f64, at_wakeup: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "crash fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = (0..n)
            .filter(|_| rng.gen_bool(fraction))
            .map(|v| (v, at_wakeup))
            .collect();
        CrashPlan { schedule }
    }

    /// Number of scheduled crashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// True when no crash is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// Wraps a protocol with crash-stop failure injection.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_graph::builders;
/// use ag_sim::{Engine, EngineConfig};
/// use algebraic_gossip::{AgConfig, AlgebraicGossip, CrashPlan, WithCrashes};
///
/// let g = builders::complete(10).unwrap();
/// let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(5), 3).unwrap();
/// // Node 7 crashes at its 4th wakeup.
/// let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(7, 4)]));
/// let stats = Engine::new(EngineConfig::synchronous(3).with_max_rounds(100_000))
///     .run(&mut proto);
/// assert!(stats.completed); // the 9 survivors all decode
/// assert!(proto.is_crashed(7));
/// ```
#[derive(Debug, Clone)]
pub struct WithCrashes<P> {
    inner: P,
    crash_at: Vec<Option<u64>>,
    wakeups: Vec<u64>,
    crashed: Vec<bool>,
}

impl<P: Protocol> WithCrashes<P> {
    /// Wraps `inner` with the given crash plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside `0..inner.num_nodes()` or
    /// schedules a node twice.
    #[must_use]
    pub fn new(inner: P, plan: CrashPlan) -> Self {
        let n = inner.num_nodes();
        let mut crash_at = vec![None; n];
        let mut crashed = vec![false; n];
        for &(v, at) in &plan.schedule {
            assert!(v < n, "crash plan names node {v} out of {n}");
            assert!(crash_at[v].is_none(), "node {v} scheduled to crash twice");
            crash_at[v] = Some(at);
            // "Crashed from the very start" means exactly that: a node
            // scheduled at (or before) its 1st wakeup must already be dead
            // at construction. Deferring the flag to the first wakeup (as
            // an earlier version did) let such a node answer `compose` and
            // accept `deliver` in the asynchronous model until its wakeup
            // slot happened to be drawn.
            if at <= 1 {
                crashed[v] = true;
            }
        }
        WithCrashes {
            inner,
            crash_at,
            wakeups: vec![0; n],
            crashed,
        }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Has `v` crashed yet?
    #[must_use]
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v]
    }

    /// Number of nodes currently crashed.
    #[must_use]
    pub fn crashed_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| c).count()
    }

    /// Nodes that are still alive.
    #[must_use]
    pub fn survivors(&self) -> Vec<NodeId> {
        (0..self.inner.num_nodes())
            .filter(|&v| !self.crashed[v])
            .collect()
    }
}

impl<P: Protocol> Protocol for WithCrashes<P> {
    type Msg = P::Msg;

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn on_round_start(&mut self, round: u64) {
        // Forward so a dynamic inner topology keeps advancing — crashes
        // kill nodes, not the network's own evolution.
        self.inner.on_round_start(round);
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        if self.crashed[node] {
            return None;
        }
        self.wakeups[node] += 1;
        if let Some(at) = self.crash_at[node] {
            if self.wakeups[node] >= at {
                self.crashed[node] = true;
                return None;
            }
        }
        self.inner.on_wakeup(node, rng)
    }

    fn compose(&self, from: NodeId, to: NodeId, tag: u32, rng: &mut StdRng) -> Option<P::Msg> {
        if self.crashed[from] {
            return None; // a dead node does not respond
        }
        self.inner.compose(from, to, tag, rng)
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: P::Msg) {
        if self.crashed[to] {
            // Messages to the dead are dropped — but through the inner
            // protocol's `discard`, not a plain `drop`: pooled message
            // buffers (algebraic gossip's `RowPool`) must be recycled or
            // every contact with a dead node would leak one buffer out of
            // the pool and re-introduce steady-state allocations.
            self.inner.discard(msg);
            return;
        }
        self.inner.deliver(from, to, tag, msg);
    }

    fn discard(&mut self, msg: P::Msg) {
        // Forward the engine's dedup/loss drops; the default (plain drop)
        // would silently break the inner protocol's pool discipline.
        self.inner.discard(msg);
    }

    fn node_complete(&self, node: NodeId) -> bool {
        // Completion is over the survivors: crashed nodes are excused.
        self.crashed[node] || self.inner.node_complete(node)
    }
}

/// One shard of [`WithCrashes`]: the inner protocol's shard plus a shared
/// view of the crash flags. The flags only change inside `on_wakeup`,
/// which the sharded engine runs serially before any shard exists, so a
/// round's shards all see one consistent generation of deaths — exactly
/// the serial wrapper's semantics.
pub struct CrashShard<'a, S> {
    inner: S,
    crashed: &'a [bool],
}

impl<S: ProtocolShard> ProtocolShard for CrashShard<'_, S> {
    type Msg = S::Msg;

    fn compose(&mut self, from: NodeId, to: NodeId, tag: u32, rng: &mut StdRng) -> Option<S::Msg> {
        if self.crashed[from] {
            // A dead node does not respond — and draws no randomness,
            // matching the serial wrapper. The inner shard keeps its
            // stash buffer; it returns to the pool with the residue.
            return None;
        }
        self.inner.compose(from, to, tag, rng)
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: S::Msg) {
        if self.crashed[to] {
            // Dropped through the inner shard's discard so pooled buffers
            // still flow back (see the serial wrapper's `deliver`).
            self.inner.discard(msg);
            return;
        }
        self.inner.deliver(from, to, tag, msg);
    }

    fn discard(&mut self, msg: S::Msg) {
        self.inner.discard(msg);
    }

    fn into_residue(self) -> Vec<S::Msg> {
        self.inner.into_residue()
    }
}

impl<P: ShardableProtocol> ShardableProtocol for WithCrashes<P> {
    type Shard<'a>
        = CrashShard<'a, P::Shard<'a>>
    where
        Self: 'a;

    fn make_shards(
        &mut self,
        bounds: &[(usize, usize)],
        send_counts: &[usize],
    ) -> Vec<CrashShard<'_, P::Shard<'_>>> {
        let crashed = &self.crashed;
        self.inner
            .make_shards(bounds, send_counts)
            .into_iter()
            .map(|inner| CrashShard { inner, crashed })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ag::{AgConfig, AlgebraicGossip};
    use crate::placement::Placement;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use ag_sim::{Engine, EngineConfig};

    #[test]
    fn survivors_decode_despite_crashes() {
        let g = builders::complete(12).unwrap();
        let inner =
            AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(6).with_payload_len(1), 7).unwrap();
        // A quarter of the nodes crash early (but after round 2, by which
        // time every message has been forwarded at least once w.h.p.).
        let plan = CrashPlan::explicit(vec![(1, 3), (5, 3), (9, 3)]);
        let mut proto = WithCrashes::new(inner, plan);
        let stats =
            Engine::new(EngineConfig::synchronous(7).with_max_rounds(200_000)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(proto.crashed_count(), 3);
        for v in proto.survivors() {
            assert_eq!(
                proto.inner().decoded(v).unwrap(),
                proto.inner().generation().messages(),
                "survivor {v} failed to decode"
            );
        }
    }

    #[test]
    fn crash_from_start_isolates_node() {
        // k = 3 messages live at nodes 0, 1, 2 (spread placement); node 5
        // holds nothing, so crashing it from the start loses no data.
        let g = builders::complete(6).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(3), 2).unwrap();
        let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(5, 1)]));
        let stats =
            Engine::new(EngineConfig::synchronous(2).with_max_rounds(100_000)).run(&mut proto);
        assert!(stats.completed);
        assert!(proto.is_crashed(5));
        // The crashed node never gained any rank: it was dead on arrival.
        assert_eq!(proto.inner().rank(5), 0);
    }

    #[test]
    fn losing_every_holder_stalls_the_run() {
        // The only holder of all messages crashes before its 1st wakeup
        // AND before anyone contacts it: information is gone.
        let g = builders::path(4).unwrap();
        let cfg = AgConfig::new(2).with_placement(Placement::SingleSource(3));
        let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, 3).unwrap();
        let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(3, 1)]));
        let stats = Engine::new(EngineConfig::synchronous(3).with_max_rounds(500)).run(&mut proto);
        assert!(
            !stats.completed,
            "messages were lost; survivors cannot finish"
        );
    }

    /// Regression for the dead-on-arrival bug: under the asynchronous
    /// model a node scheduled with `at_wakeup = 1` used to answer
    /// `compose` and accept `deliver` until its own wakeup slot was first
    /// drawn. It must be dead from timeslot 0.
    #[test]
    fn dead_on_arrival_node_is_silent_in_async_model() {
        // The sole holder of the lone message is dead on arrival: nothing
        // can ever spread, under any seed. Before the fix, neighbors
        // pulled coded packets out of the "dead" node via EXCHANGE until
        // its first wakeup fired, so other ranks grew.
        let g = builders::path(4).unwrap();
        let cfg = AgConfig::new(2).with_placement(Placement::SingleSource(1));
        for seed in 0..16u64 {
            let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, seed).unwrap();
            let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(1, 1)]));
            assert!(proto.is_crashed(1), "DOA node must be dead at construction");
            let stats =
                Engine::new(EngineConfig::asynchronous(seed).with_max_rounds(50)).run(&mut proto);
            assert!(!stats.completed, "seed {seed}: information was conjured");
            for v in [0, 2, 3] {
                assert_eq!(
                    proto.inner().rank(v),
                    0,
                    "seed {seed}: node {v} heard from the dead"
                );
            }
        }
    }

    /// Dead-on-arrival nodes also never *receive* in the async model: a
    /// DOA sink's rank stays at its seeded value.
    #[test]
    fn dead_on_arrival_node_never_gains_rank_async() {
        let g = builders::complete(6).unwrap();
        let cfg = AgConfig::new(3);
        for seed in 0..8u64 {
            let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, seed).unwrap();
            let doa = 5; // spread placement on k=3 seeds nodes 0, 1, 2
            let seeded_rank = inner.rank(doa);
            let mut proto = WithCrashes::new(inner, CrashPlan::explicit(vec![(doa, 1)]));
            let _ =
                Engine::new(EngineConfig::asynchronous(seed).with_max_rounds(200)).run(&mut proto);
            assert_eq!(
                proto.inner().rank(doa),
                seeded_rank,
                "seed {seed}: dead node accepted deliveries"
            );
        }
    }

    /// Regression for the pooled-row leaks: dedup/loss drops (engine →
    /// `discard`) and deliveries to crashed nodes must both route the
    /// buffer back to the inner `RowPool`. The pool-balance invariant —
    /// between rounds every preallocated buffer is idle in the pool — must
    /// hold for the whole run, under loss and crashes, in both time
    /// models.
    #[test]
    fn crash_and_loss_run_keeps_the_pool_balanced() {
        let g = builders::complete(12).unwrap();
        let cfg = AgConfig::new(6).with_payload_len(4);
        for (sync, seed) in [(true, 3u64), (false, 4u64)] {
            let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, seed).unwrap();
            let prewarm = inner.pool_prewarm();
            assert_eq!(inner.pool_idle(), prewarm);
            // Crash only nodes that hold no initial message (spread
            // placement seeds 0..6), so the survivors can still finish.
            let plan = CrashPlan::explicit(vec![(7, 1), (8, 2), (9, 4)]);
            let mut proto = WithCrashes::new(inner, plan);
            let ecfg = if sync {
                EngineConfig::synchronous(seed)
            } else {
                EngineConfig::asynchronous(seed)
            }
            .with_loss(0.3)
            .with_max_rounds(200_000);
            let mut balanced = true;
            let stats = Engine::new(ecfg).run_observed(&mut proto, |_, p| {
                balanced &= p.inner().pool_idle() == prewarm;
            });
            assert!(stats.completed, "sync={sync}: survivors must finish");
            assert!(
                balanced,
                "sync={sync}: a pooled buffer leaked mid-run (idle != prewarm at a round boundary)"
            );
            assert_eq!(
                proto.inner().pool_idle(),
                prewarm,
                "sync={sync}: pool did not end balanced"
            );
        }
    }

    /// Crash-then-rewire recovery: crashing the star hub strands every
    /// leaf on the static graph, but the same crash under rewiring churn
    /// heals the topology around the dead hub and the survivors finish —
    /// the dynamic-scenario counterpart of RLNC's crash robustness.
    #[test]
    fn rewire_churn_recovers_from_a_hub_crash() {
        use ag_graph::{ChurnSchedule, ScheduledTopology};
        let g = builders::star(10).unwrap();
        let cfg = AgConfig::new(3).with_placement(Placement::SingleSource(0));
        let seed = 6;
        // The hub (the single source) answers exactly one round — each
        // leaf ends round 1 with one random combo (rank 1 < k = 3), and
        // the 9 combos collectively span the whole generation w.h.p. —
        // then it dies. Statically the leaves are mutually unreachable.
        let plan = CrashPlan::explicit(vec![(0, 2)]);
        let inner = AlgebraicGossip::<Gf256>::new(&g, &cfg, seed).unwrap();
        let mut static_run = WithCrashes::new(inner, plan.clone());
        let s_static = Engine::new(EngineConfig::synchronous(seed).with_max_rounds(3_000))
            .run(&mut static_run);
        assert!(
            !s_static.completed,
            "static star with a dead hub must stall"
        );
        let topo = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.2, 99));
        let inner = AlgebraicGossip::<Gf256, _>::on_topology(topo, &cfg, seed).unwrap();
        let mut dynamic_run = WithCrashes::new(inner, plan);
        let s_dynamic = Engine::new(EngineConfig::synchronous(seed).with_max_rounds(3_000))
            .run(&mut dynamic_run);
        assert!(
            s_dynamic.completed,
            "rewiring should reconnect the survivors"
        );
    }

    #[test]
    fn random_fraction_is_deterministic_and_bounded() {
        let a = CrashPlan::random_fraction(100, 0.3, 5, 42);
        let b = CrashPlan::random_fraction(100, 0.3, 5, 42);
        assert_eq!(a, b);
        assert!(a.len() > 10 && a.len() < 60, "got {} crashes", a.len());
        assert!(CrashPlan::random_fraction(50, 0.0, 1, 0).is_empty());
        assert_eq!(CrashPlan::random_fraction(50, 1.0, 1, 0).len(), 50);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn plan_validates_node_range() {
        let g = builders::path(3).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(1), 0).unwrap();
        let _ = WithCrashes::new(inner, CrashPlan::explicit(vec![(99, 1)]));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn plan_rejects_duplicates() {
        let g = builders::path(3).unwrap();
        let inner = AlgebraicGossip::<Gf256>::new(&g, &AgConfig::new(1), 0).unwrap();
        let _ = WithCrashes::new(inner, CrashPlan::explicit(vec![(1, 1), (1, 2)]));
    }
}
