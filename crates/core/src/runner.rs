//! High-level experiment runner: one call from (graph, spec) to stats.
//!
//! The bench harness, the examples and the integration tests all drive the
//! protocols through this module so that every experiment applies identical
//! seeding, verification and accounting rules. Runs go through
//! [`Engine::run_batch`] — the observer-free hot path — since nothing at
//! this level asks for per-round traces; figures that do trace rank growth
//! call [`Engine::run_observed`] on a protocol directly.

use ag_gf::SlabField;
use ag_graph::{Graph, GraphError, NodeId, SpanningTree};
use ag_sim::{Engine, EngineConfig, RunStats};

use crate::ag::{AgConfig, AlgebraicGossip};
use crate::baseline::RandomMessageGossip;
use crate::broadcast::BroadcastTree;
use crate::is_tree::IsTree;
use crate::oracle::OracleTree;
use crate::tag::Tag;
use crate::tree_protocol::{TreeProtocol, TreeRunner};
use crate::CommModel;

/// Which protocol configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Uniform algebraic gossip (Theorem 1 / 3).
    UniformAg,
    /// Algebraic gossip with round-robin partner selection (ablation A3).
    RoundRobinAg,
    /// TAG with the round-robin broadcast `B_RR` rooted at the node
    /// (Theorem 5 / Section 5).
    TagBrr(NodeId),
    /// TAG with uniform-gossip broadcast as the tree protocol.
    TagUniformBroadcast(NodeId),
    /// TAG with the IS-style bitstring tree protocol (Section 6 facsimile).
    TagIs(NodeId),
    /// TAG with the oracle tree revealing after the given per-node wakeup
    /// count (the [5]-bound stand-in; Theorems 7/8).
    TagOracle(NodeId, u64),
    /// The uncoded store-and-forward baseline (random message selection) —
    /// the comparator that quantifies the coding gain.
    UncodedRandom,
}

/// A complete run specification: protocol, AG parameters, engine settings.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Protocol selection.
    pub kind: ProtocolKind,
    /// Generation size, payload, placement, action.
    pub ag: AgConfig,
    /// Time model, budget, loss, dedup, engine seed.
    pub engine: EngineConfig,
    /// Protocol seed (generation content, placement, RR offsets).
    pub seed: u64,
}

impl RunSpec {
    /// A spec with sane defaults for the given protocol and `k`.
    #[must_use]
    pub fn new(kind: ProtocolKind, k: usize) -> Self {
        RunSpec {
            kind,
            ag: AgConfig::new(k),
            engine: EngineConfig::default(),
            seed: 0,
        }
    }

    /// Sets both seeds (protocol and engine) from one value, using the
    /// central derivation in [`crate::seeding`] — the same pairing a
    /// [`crate::TrialPlan`] applies to each of its trials.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.engine.seed = crate::seeding::engine_seed_for(seed);
        self
    }
}

/// Runs the specified protocol on `graph` and verifies decoding.
///
/// Returns the run statistics and whether every node decoded the exact
/// generation (`false` when the run hit the round budget first; decoding
/// success is always checked when the run completes and a failure is a
/// **panic**, because it would mean the codec is wrong, not the protocol
/// slow).
///
/// # Errors
///
/// Propagates construction errors (disconnected graph, bad root, `k = 0`).
///
/// # Panics
///
/// Panics if a completed run fails to decode — that is a correctness bug,
/// never a performance artifact.
pub fn run_protocol<F: SlabField>(
    graph: &Graph,
    spec: &RunSpec,
) -> Result<(RunStats, bool), GraphError> {
    let mut engine = Engine::new(spec.engine);
    match spec.kind {
        ProtocolKind::UniformAg => {
            let cfg = spec.ag.clone().with_comm_model(CommModel::Uniform);
            let mut proto = AlgebraicGossip::<F>::new(graph, &cfg, spec.seed)?;
            let stats = engine.run_batch(&mut proto);
            let ok = verify_ag(&proto, &stats);
            Ok((stats, ok))
        }
        ProtocolKind::RoundRobinAg => {
            let cfg = spec.ag.clone().with_comm_model(CommModel::RoundRobin);
            let mut proto = AlgebraicGossip::<F>::new(graph, &cfg, spec.seed)?;
            let stats = engine.run_batch(&mut proto);
            let ok = verify_ag(&proto, &stats);
            Ok((stats, ok))
        }
        ProtocolKind::TagBrr(root) => {
            let tree = BroadcastTree::new(graph, root, CommModel::RoundRobin, spec.seed)?;
            run_tag::<F, _>(graph, tree, spec, &mut engine)
        }
        ProtocolKind::TagUniformBroadcast(root) => {
            let tree = BroadcastTree::new(graph, root, CommModel::Uniform, spec.seed)?;
            run_tag::<F, _>(graph, tree, spec, &mut engine)
        }
        ProtocolKind::TagIs(root) => {
            let tree = IsTree::new(graph, root, spec.seed)?;
            run_tag::<F, _>(graph, tree, spec, &mut engine)
        }
        ProtocolKind::TagOracle(root, reveal_after) => {
            let tree = OracleTree::new(graph, root, reveal_after)?;
            run_tag::<F, _>(graph, tree, spec, &mut engine)
        }
        ProtocolKind::UncodedRandom => {
            let mut proto = RandomMessageGossip::<F>::new(graph, &spec.ag, spec.seed)?;
            let stats = engine.run_batch(&mut proto);
            let ok = if stats.completed {
                for v in 0..graph.n() {
                    let held = proto.messages_of(v);
                    assert_eq!(held.len(), spec.ag.k, "node {v} missing messages");
                    for m in held {
                        assert_eq!(
                            m.payload,
                            proto.generation().message(m.index),
                            "node {v} holds corrupted message {}",
                            m.index
                        );
                    }
                }
                true
            } else {
                false
            };
            Ok((stats, ok))
        }
    }
}

fn run_tag<F: SlabField, S: TreeProtocol>(
    graph: &Graph,
    tree: S,
    spec: &RunSpec,
    engine: &mut Engine,
) -> Result<(RunStats, bool), GraphError> {
    let mut proto = Tag::<F, S>::new(graph, tree, &spec.ag, spec.seed)?;
    let stats = engine.run_batch(&mut proto);
    let ok = if stats.completed {
        let want = proto.generation().messages();
        for v in 0..graph.n() {
            let got = proto.decoded(v).expect("completed node must decode");
            assert_eq!(got, want, "node {v} decoded wrong data — codec bug");
        }
        true
    } else {
        false
    };
    Ok((stats, ok))
}

fn verify_ag<F: SlabField>(proto: &AlgebraicGossip<F>, stats: &RunStats) -> bool {
    if !stats.completed {
        return false;
    }
    let want = proto.generation().messages();
    for v in 0..proto.graph().n() {
        let got = proto.decoded(v).expect("completed node must decode");
        assert_eq!(got, want, "node {v} decoded wrong data — codec bug");
    }
    true
}

/// Runs a spanning-tree protocol standalone and reports `(t(S), d(S),
/// depth)` together with the run stats — the quantities in Theorem 4's
/// bound.
///
/// # Panics
///
/// Panics if the protocol completes without producing a valid tree (a
/// protocol bug).
pub fn measure_tree_protocol<S: TreeProtocol>(
    tree: S,
    engine_cfg: EngineConfig,
) -> (RunStats, Option<SpanningTree>) {
    let mut runner = TreeRunner::new(tree);
    let stats = Engine::new(engine_cfg).run_batch(&mut runner);
    let tree = if stats.completed {
        Some(
            runner
                .inner()
                .spanning_tree()
                .expect("completed tree protocol must yield a tree"),
        )
    } else {
        None
    };
    (stats, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::Gf256;
    use ag_graph::builders;
    use ag_sim::TimeModel;

    #[test]
    fn every_protocol_kind_completes_on_barbell() {
        let g = builders::barbell(10).unwrap();
        for kind in [
            ProtocolKind::UniformAg,
            ProtocolKind::RoundRobinAg,
            ProtocolKind::TagBrr(0),
            ProtocolKind::TagUniformBroadcast(0),
            ProtocolKind::TagIs(0),
            ProtocolKind::TagOracle(0, 3),
            ProtocolKind::UncodedRandom,
        ] {
            let mut spec = RunSpec::new(kind, 5).with_seed(11);
            spec.engine.max_rounds = 500_000;
            let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
            assert!(stats.completed, "{kind:?} incomplete");
            assert!(ok, "{kind:?} failed verification");
        }
    }

    #[test]
    fn asynchronous_runs_work_through_runner() {
        let g = builders::grid(3, 3).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::TagBrr(4), 9).with_seed(5);
        spec.engine.time_model = TimeModel::Asynchronous;
        spec.engine.max_rounds = 500_000;
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        assert!(stats.completed && ok);
    }

    #[test]
    fn budget_exhaustion_reports_not_ok() {
        let g = builders::barbell(20).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, 20).with_seed(3);
        spec.engine.max_rounds = 2; // hopeless budget
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        assert!(!stats.completed);
        assert!(!ok);
    }

    #[test]
    fn measure_tree_protocol_reports_tree() {
        let g = builders::lollipop(6, 4).unwrap();
        let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 7).unwrap();
        let (stats, tree) =
            measure_tree_protocol(brr, EngineConfig::synchronous(7).with_max_rounds(10_000));
        assert!(stats.completed);
        let tree = tree.unwrap();
        assert!(tree.is_spanning_tree_of(&g));
        assert!(u64::from(tree.tree_diameter()) <= stats.rounds * 2);
    }

    #[test]
    fn with_seed_decorrelates_engine_seed() {
        let a = RunSpec::new(ProtocolKind::UniformAg, 2).with_seed(1);
        let b = RunSpec::new(ProtocolKind::UniformAg, 2).with_seed(2);
        assert_ne!(a.engine.seed, b.engine.seed);
        assert_ne!(a.engine.seed, a.seed);
    }
}
