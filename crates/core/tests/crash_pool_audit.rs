//! Allocation audit for the crash wrapper: a `WithCrashes`-wrapped
//! algebraic gossip run with loss injection must stay allocation-free in
//! steady state, exactly like the bare protocol (`bench_rlnc_throughput`
//! pins the bare case at n = 10⁵).
//!
//! This is the regression lock for two pooled-row leaks the wrapper used
//! to have: it did not forward `Protocol::discard` (so the engine's
//! dedup/loss drops hit the default `drop` instead of the `RowPool`
//! recycle), and it dropped messages delivered to crashed nodes on the
//! floor instead of routing them through `inner.discard`. Either leak
//! shows up here immediately: once the pool drains, every subsequent
//! `compose` allocates a fresh buffer, and the per-round allocator deltas
//! stop being zero.
//!
//! One test only: the file has its own counting global allocator, and a
//! sibling test running concurrently would pollute the per-round deltas.
//! The helpfulness-probe audit lives in its own file
//! (`would_help_audit.rs`) for the same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, ArenaGrowth, CrashPlan, WithCrashes};

/// Counts every allocator entry on the *armed* thread so the round loop can
/// be proven allocation-free (not just leak-free).
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed only on the test thread around the measured run. libtest's
    /// harness threads allocate at their own pace (result channels, capture
    /// buffers), and a process-wide counter intermittently picks those up;
    /// gating on a thread-local keeps the per-round deltas deterministic.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn record_alloc() {
    // `try_with`: TLS is unavailable during thread teardown, and the
    // allocator can be entered from there.
    let _ = COUNTING.try_with(|armed| {
        if armed.get() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: delegates verbatim to `System`; the counter is a side channel.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc(layout)
    }
    // SAFETY: forwards `layout` untouched to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc_zeroed(layout)
    }
    // SAFETY: forwards the caller's `ptr`/`layout`/`new_size` (valid per
    // the GlobalAlloc contract) untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record_alloc();
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwards the caller's `ptr`/`layout` (valid per the
    // GlobalAlloc contract) untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn crash_and_loss_run_is_allocation_free_in_steady_state() {
    let n = 96;
    let k = 8;
    let seed = 0xC4A5_4E57;
    let mut grng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let graph = builders::random_regular(n, 3, &mut grng).expect("rr(3)");
    // Pin the preallocated arena: the chunked default trades steady-state
    // allocation freedom for memory (rows materialize as ranks grow),
    // which is exactly what this audit must not see.
    let cfg = AgConfig::new(k)
        .with_payload_len(32)
        .with_arena_growth(ArenaGrowth::Preallocated);
    let inner = AlgebraicGossip::<Gf256>::new(&graph, &cfg, seed).expect("protocol");
    let prewarm = inner.pool_prewarm();
    // Crash a deterministic batch of non-holders (spread placement seeds
    // 0..k) at staggered wakeups, including two dead-on-arrival nodes, so
    // every gated path — DOA, mid-run crash, deliver-to-dead — runs.
    let plan = CrashPlan::explicit(vec![(20, 1), (21, 1), (40, 2), (41, 3), (60, 5), (61, 8)]);
    let mut proto = WithCrashes::new(inner, plan);

    // Per-round allocator snapshots; preallocated so the observer itself
    // never allocates inside the measured loop. The baseline snapshot
    // taken before the run makes round 1's window observable too.
    let mut snapshots: Vec<(u64, u64)> = Vec::with_capacity(4096);
    COUNTING.with(|armed| armed.set(true));
    snapshots.push((0, ALLOC_CALLS.load(Ordering::Relaxed)));
    let ecfg = EngineConfig::synchronous(seed ^ 0x1)
        .with_loss(0.3)
        .with_max_rounds(3_000);
    let stats = Engine::new(ecfg).run_observed(&mut proto, |round, _p| {
        snapshots.push((round, ALLOC_CALLS.load(Ordering::Relaxed)));
    });
    COUNTING.with(|armed| armed.set(false));
    assert!(stats.completed, "survivors must finish within the budget");
    assert_eq!(proto.crashed_count(), 6);

    let mut allocating_rounds = Vec::new();
    for w in snapshots.windows(2) {
        let delta = w[1].1 - w[0].1;
        if delta > 0 {
            allocating_rounds.push((w[1].0, delta));
        }
    }
    // Round 1's window carries the engine's one-time per-run setup
    // (RunStats buffers, round scratch); every later round — including
    // every dedup drop, loss drop and delivery to a crashed node — must
    // be allocation-free.
    assert!(
        allocating_rounds.iter().all(|&(round, _)| round <= 1),
        "pooled buffers leaked: allocations in rounds {allocating_rounds:?}"
    );
    assert!(
        stats.rounds >= 5,
        "run too short ({} rounds) to call the loop steady",
        stats.rounds
    );
    // And the pool itself ends exactly as pre-warmed: nothing leaked,
    // nothing grew.
    assert_eq!(
        proto.inner().pool_idle(),
        prewarm,
        "pool did not end balanced"
    );
    // The scenario genuinely exercised the drop paths.
    assert!(stats.lost > 0, "loss injection never fired");
}
