//! Property-based tests across the protocol layer.

use ag_gf::{Gf2, Gf256};
use ag_graph::builders;
use ag_sim::{EngineConfig, TimeModel};
use algebraic_gossip::{run_protocol, Placement, ProtocolKind, RunSpec};
use proptest::prelude::*;

/// Small connected graphs drawn from the evaluation families.
fn small_graph(idx: usize, n: usize) -> ag_graph::Graph {
    let n = n.max(4);
    match idx % 5 {
        0 => builders::path(n).unwrap(),
        1 => builders::cycle(n).unwrap(),
        2 => builders::grid(2, n / 2).unwrap(),
        3 => builders::barbell(n).unwrap(),
        _ => builders::complete(n).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform AG completes and decodes on every family, any seed, any k,
    /// both time models.
    #[test]
    fn uniform_ag_always_completes(
        seed in any::<u64>(),
        gidx in 0usize..5,
        n in 4usize..12,
        k in 1usize..8,
        sync in any::<bool>(),
    ) {
        let g = small_graph(gidx, n);
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, k).with_seed(seed);
        spec.engine = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        prop_assert!(stats.completed, "incomplete on graph {gidx}, n={n}, k={k}");
        prop_assert!(ok);
        // Trivial lower bound: >= k/2 rounds in the synchronous model.
        if sync {
            prop_assert!(stats.rounds >= (k as u64) / 2);
        }
    }

    /// TAG with BRR completes and its Phase-1 tree is a spanning tree.
    #[test]
    fn tag_brr_always_completes(
        seed in any::<u64>(),
        gidx in 0usize..5,
        n in 4usize..12,
        k in 1usize..8,
    ) {
        let g = small_graph(gidx, n);
        let root = seed as usize % g.n();
        let mut spec = RunSpec::new(ProtocolKind::TagBrr(root), k).with_seed(seed);
        spec.engine = EngineConfig::synchronous(seed).with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        prop_assert!(stats.completed);
        prop_assert!(ok);
    }

    /// GF(2) — the worst-case field — still always decodes correctly.
    #[test]
    fn gf2_decodes_exactly(
        seed in any::<u64>(),
        n in 4usize..10,
        k in 1usize..6,
    ) {
        let g = builders::cycle(n).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, k).with_seed(seed);
        spec.ag = spec.ag.with_payload_len(3).with_placement(Placement::Random);
        spec.engine = EngineConfig::synchronous(seed).with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf2>(&g, &spec).unwrap();
        prop_assert!(stats.completed && ok);
    }

    /// Determinism: the same spec gives bit-identical stats.
    #[test]
    fn seeded_runs_are_reproducible(seed in any::<u64>(), k in 1usize..6) {
        let g = builders::grid(3, 3).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::TagBrr(0), k).with_seed(seed);
        spec.engine = EngineConfig::asynchronous(seed).with_max_rounds(1_000_000);
        let (a, _) = run_protocol::<Gf256>(&g, &spec).unwrap();
        let (b, _) = run_protocol::<Gf256>(&g, &spec).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Moderate message loss slows but does not break dissemination.
    #[test]
    fn lossy_channels_still_complete(seed in any::<u64>(), loss in 0.05f64..0.4) {
        let g = builders::cycle(8).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, 4).with_seed(seed);
        spec.engine = EngineConfig::synchronous(seed)
            .with_loss(loss)
            .with_max_rounds(1_000_000);
        let (stats, ok) = run_protocol::<Gf256>(&g, &spec).unwrap();
        prop_assert!(stats.completed && ok, "loss {loss} broke the run");
        prop_assert!(stats.lost > 0);
    }

    /// The asynchronous model is never *slower in timeslots* than
    /// max_rounds * n, and rounds accounting is consistent.
    #[test]
    fn async_accounting_consistent(seed in any::<u64>()) {
        let g = builders::path(6).unwrap();
        let mut spec = RunSpec::new(ProtocolKind::UniformAg, 3).with_seed(seed);
        spec.engine = EngineConfig {
            time_model: TimeModel::Asynchronous,
            ..EngineConfig::asynchronous(seed)
        }
        .with_max_rounds(1_000_000);
        let (stats, _) = run_protocol::<Gf256>(&g, &spec).unwrap();
        prop_assert_eq!(stats.rounds, stats.timeslots.div_ceil(6));
    }
}
