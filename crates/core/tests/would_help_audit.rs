//! Allocation audit for the helpfulness probes: `Decoder::would_help`,
//! `Decoder::is_helpful_node` and the arena-side
//! `BasisArena::would_be_innovative_packed` must be allocation-free once
//! their scratch buffers have warmed up.
//!
//! Pull-style protocol variants and the helpful-node oracle ablation call
//! these probes once per contact — far more often than rows are actually
//! stored — so a per-probe temporary (the pre-PR 6 implementation cloned
//! the row before reducing it) multiplies into millions of allocations per
//! trial. Since the coefficient/payload split, a probe packs the `k`-byte
//! coefficient header into a reusable scratch row, reduces it there in one
//! fused pass, and never touches payload state; this test proves the whole
//! probe + redundant-receive + recode-emit cycle performs zero allocator
//! calls in steady state.
//!
//! One test only: the file has its own counting global allocator, and a
//! sibling test running concurrently would pollute the deltas (same
//! discipline as `crash_pool_audit.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ag_gf::{Gf256, SlabField};
use ag_linalg::BasisArena;
use ag_rlnc::{Decoder, Generation, Packet, Recoder};

/// Counts every allocator entry on the *armed* thread so the probe loop can
/// be proven allocation-free (not just leak-free).
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed only on the test thread around the measured loop. libtest's
    /// harness threads allocate at their own pace (result channels, capture
    /// buffers), and a process-wide counter intermittently picks those up;
    /// gating on a thread-local keeps the audit deterministic.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn record_alloc() {
    // `try_with`: TLS is unavailable during thread teardown, and the
    // allocator can be entered from there.
    let _ = COUNTING.try_with(|armed| {
        if armed.get() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: delegates verbatim to `System`; the counter is a side channel.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc(layout)
    }
    // SAFETY: forwards `layout` untouched to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc_zeroed(layout)
    }
    // SAFETY: forwards the caller's `ptr`/`layout`/`new_size` (valid per
    // the GlobalAlloc contract) untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record_alloc();
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwards the caller's `ptr`/`layout` (valid per the
    // GlobalAlloc contract) untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn would_help_heavy_loop_is_allocation_free_after_warmup() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x5EED_4E1F);
    let k = 16;
    let r = 64;
    let g = Generation::<Gf256>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&g);

    // A partially filled sink: its probes do real elimination work.
    let mut sink = Decoder::<Gf256>::new(k, r);
    let mut arena = BasisArena::<Gf256>::new(1, k, k + r);
    while sink.rank() < k / 2 {
        let row = Recoder::new(&source)
            .emit_packed_row(&mut rng)
            .expect("source emits");
        let a = sink.receive_packed_slice(&row).is_innovative();
        let b = arena.insert_packed_slice(0, &row).is_innovative();
        assert_eq!(a, b, "packed and arena lanes must agree");
    }

    // Pre-generate the probe workload outside the measured region (packet
    // construction allocates by design).
    let probes: Vec<Packet<Gf256>> = (0..32)
        .map(|_| Recoder::new(&source).emit(&mut rng).expect("source emits"))
        .collect();
    let redundant: Vec<Vec<u8>> = (0..8)
        .map(|_| {
            Recoder::new(&sink)
                .emit_packed_row(&mut rng)
                .expect("sink has rank")
        })
        .collect();
    let mut emit_buf = Vec::with_capacity(sink.payload_len() + k);

    // Warm-up: one pass over every path so scratch buffers, kernel tables
    // and the emit-factor buffer reach steady-state capacity.
    let _ = sink.would_help(&probes[0]);
    let _ = arena.would_be_innovative_packed(0, &probes[0].to_packed_row());
    let _ = sink.is_helpful_node(&source);
    assert!(!sink.receive_packed_slice(&redundant[0]).is_innovative());
    assert!(Recoder::new(&sink).emit_packed_row_into(&mut rng, &mut emit_buf));
    let packed_probes: Vec<Vec<u8>> = probes.iter().map(Packet::to_packed_row).collect();

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    COUNTING.with(|armed| armed.set(true));
    let mut innovative_probes = 0u32;
    for i in 0..2_000 {
        let p = &probes[i % probes.len()];
        if sink.would_help(p) {
            innovative_probes += 1;
        }
        assert!(
            !source.would_help(p),
            "a source combination can never help the source"
        );
        let _ = arena.would_be_innovative_packed(0, &packed_probes[i % packed_probes.len()]);
        assert!(sink.is_helpful_node(&source), "source stays helpful");
        // Redundant receptions ride along: they may not allocate either.
        assert!(!sink
            .receive_packed_slice(&redundant[i % redundant.len()])
            .is_innovative());
        // Nor may steady-state recode emits (fused gathers, warm buffers).
        assert!(Recoder::new(&sink).emit_packed_row_into(&mut rng, &mut emit_buf));
    }
    COUNTING.with(|armed| armed.set(false));
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "would-help-heavy loop allocated {delta} times in steady state"
    );
    assert!(
        innovative_probes > 0,
        "probe workload never predicted an innovative packet"
    );
    assert_eq!(Gf256::SYMBOL_BYTES, 1);
}
