//! Golden determinism tests: pinned per-round trajectory hashes.
//!
//! Each test runs a fixed-seed quick-scale end-to-end simulation, records
//! an observable after every round (total decoder rank for algebraic
//! gossip, total held messages for the uncoded baseline), hashes the
//! trajectory with [`ag_sim::TrajectoryHash`] and compares against a pinned
//! constant. Step-level equivalence between the packed decoder and the
//! preserved scalar path is established by `ag-rlnc`'s differential suite;
//! these pins extend that guarantee end-to-end: any future hot-path change
//! must reproduce the exact simulation results in every round, not just
//! the final stopping time.
//!
//! CI re-runs this file under `RAYON_NUM_THREADS=1` and `=4`; combined with
//! `parallel_trials_match_serial` below, that re-verifies parallel ==
//! serial for the trial runner on top of the engine-level pins.

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{Engine, EngineConfig, ShardedEngine, TrajectoryHash};
use algebraic_gossip::{
    AgConfig, AlgebraicGossip, Placement, ProtocolKind, RandomMessageGossip, RunSpec, TrialPlan,
};

/// Pinned hash of the UniformAg rank trajectory for the run below.
const GOLDEN_AG_TRAJECTORY: u64 = 0xA356_9144_C8B2_03DD;
/// Pinned hash of the UncodedRandom holdings trajectory for the run below.
const GOLDEN_BASELINE_TRAJECTORY: u64 = 0xE080_65FA_EB0B_DAEA;
/// Pinned hash of the same AG run under the *sharded* engine. The value
/// differs from [`GOLDEN_AG_TRAJECTORY`] by design — the sharded loop
/// draws per-slot compose RNGs instead of one interleaved stream — but it
/// must be identical at every shard count and every thread count (CI
/// re-runs this file under `RAYON_NUM_THREADS=1` and `=4`).
const GOLDEN_SHARDED_AG_TRAJECTORY: u64 = 0xC2B0_ECC9_946E_1A35;

/// One AG protocol: uniform algebraic gossip over GF(256) on a 4×4 grid,
/// k = 8 with payloads, synchronous rounds, all seeds fixed.
fn ag_trajectory() -> (u64, bool) {
    let g = builders::grid(4, 4).expect("grid");
    let cfg = AgConfig::new(8)
        .with_payload_len(4)
        .with_placement(Placement::Spread);
    let mut proto = AlgebraicGossip::<Gf256>::new(&g, &cfg, 0xA11CE).expect("protocol");
    let mut hash = TrajectoryHash::new();
    let stats = Engine::new(EngineConfig::synchronous(0xBEEF).with_max_rounds(100_000))
        .run_observed(&mut proto, |round, p| {
            hash.observe(round);
            hash.observe(p.total_rank() as u64);
        });
    assert!(stats.completed, "golden AG run must complete");
    // Completed runs must also decode correctly — a hash collision can in
    // principle hide a wrong trajectory, but not wrong decoded bytes too.
    for v in 0..g.n() {
        assert_eq!(
            proto.decoded(v).expect("complete node decodes"),
            proto.generation().messages()
        );
    }
    (hash.finish(), stats.completed)
}

/// One baseline: uncoded random-message gossip on the same graph and seeds.
fn baseline_trajectory() -> (u64, bool) {
    let g = builders::grid(4, 4).expect("grid");
    let cfg = AgConfig::new(8).with_payload_len(4);
    let mut proto = RandomMessageGossip::<Gf256>::new(&g, &cfg, 0xA11CE).expect("protocol");
    let mut hash = TrajectoryHash::new();
    let stats = Engine::new(EngineConfig::synchronous(0xBEEF).with_max_rounds(100_000))
        .run_observed(&mut proto, |round, p| {
            hash.observe(round);
            let held: u64 = (0..16).map(|v| p.held(v) as u64).sum();
            hash.observe(held);
        });
    (hash.finish(), stats.completed)
}

/// The same protocol, config and seeds as [`ag_trajectory`], driven by the
/// sharded engine with the given shard count.
fn sharded_ag_trajectory(shards: usize) -> (u64, bool) {
    let g = builders::grid(4, 4).expect("grid");
    let cfg = AgConfig::new(8)
        .with_payload_len(4)
        .with_placement(Placement::Spread);
    let mut proto = AlgebraicGossip::<Gf256>::new(&g, &cfg, 0xA11CE).expect("protocol");
    let mut hash = TrajectoryHash::new();
    let stats = ShardedEngine::new(
        EngineConfig::synchronous(0xBEEF).with_max_rounds(100_000),
        shards,
    )
    .run_observed(&mut proto, |round, p| {
        hash.observe(round);
        hash.observe(p.total_rank() as u64);
    });
    assert!(stats.completed, "golden sharded AG run must complete");
    for v in 0..g.n() {
        assert_eq!(
            proto.decoded(v).expect("complete node decodes"),
            proto.generation().messages()
        );
    }
    (hash.finish(), stats.completed)
}

#[test]
fn golden_ag_rank_trajectory_is_pinned() {
    let (hash, completed) = ag_trajectory();
    assert!(completed);
    assert_eq!(
        hash, GOLDEN_AG_TRAJECTORY,
        "UniformAg per-round rank trajectory changed: got {hash:#018X} — \
         the arithmetic refactor altered simulation results"
    );
}

#[test]
fn golden_baseline_trajectory_is_pinned() {
    let (hash, completed) = baseline_trajectory();
    assert!(completed);
    assert_eq!(
        hash, GOLDEN_BASELINE_TRAJECTORY,
        "UncodedRandom per-round holdings trajectory changed: got {hash:#018X}"
    );
}

#[test]
fn golden_sharded_trajectory_is_pinned_at_every_shard_count() {
    // 1 shard is the serial reference; larger counts (including more
    // shards than would ever be useful at n = 16) must reproduce it
    // bit-for-bit — the tentpole's determinism contract, pinned.
    for shards in [1usize, 2, 4, 16] {
        let (hash, completed) = sharded_ag_trajectory(shards);
        assert!(completed);
        assert_eq!(
            hash, GOLDEN_SHARDED_AG_TRAJECTORY,
            "sharded AG trajectory changed at {shards} shard(s): got {hash:#018X} — \
             the sharded merge is no longer a pure function of (seed, round, slot)"
        );
    }
}

#[test]
fn golden_runs_are_rerun_stable() {
    // The same seeds twice in one process (warm field tables) must agree —
    // separates "tables depend on init order" bugs from genuine pin breaks.
    assert_eq!(ag_trajectory(), ag_trajectory());
    assert_eq!(baseline_trajectory(), baseline_trajectory());
}

#[test]
fn parallel_trials_match_serial() {
    // Re-verify the trial runner on the slab decoder: rayon execution must
    // be bit-identical to the serial reference regardless of thread count
    // (CI runs this under RAYON_NUM_THREADS=1 and 4).
    let g = builders::barbell(10).expect("barbell");
    let mut base = RunSpec::new(ProtocolKind::UniformAg, 5);
    base.engine = EngineConfig::synchronous(0).with_max_rounds(500_000);
    let plan = TrialPlan::new(8, 0x51AB);
    let parallel = plan.run::<Gf256>(&g, &base).expect("parallel");
    let serial = plan.run_serial::<Gf256>(&g, &base).expect("serial");
    assert_eq!(parallel, serial);
    assert!(parallel.all_ok());
}
