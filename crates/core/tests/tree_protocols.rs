//! Cross-cutting tests of the spanning-tree protocol layer: every tree
//! protocol against every topology, Theorem-4 quantity extraction, and
//! TAG composition with each of them.

use ag_gf::Gf256;
use ag_graph::{builders, Graph};
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{
    measure_tree_protocol, AgConfig, BroadcastTree, CommModel, IsTree, OracleTree, Tag,
    TreeProtocol, TreeRunner,
};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", builders::path(12).unwrap()),
        ("cycle", builders::cycle(12).unwrap()),
        ("grid", builders::grid(3, 4).unwrap()),
        ("barbell", builders::barbell(12).unwrap()),
        ("star", builders::star(12).unwrap()),
        ("binary_tree", builders::binary_tree(15).unwrap()),
        ("torus", builders::torus(3, 4).unwrap()),
        ("dumbbell", builders::dumbbell(4, 4).unwrap()),
    ]
}

#[test]
fn brr_tree_valid_on_every_topology_and_root() {
    for (name, g) in graphs() {
        for root in [0, g.n() / 2, g.n() - 1] {
            let brr = BroadcastTree::new(&g, root, CommModel::RoundRobin, 3).unwrap();
            let (stats, tree) = measure_tree_protocol(
                brr,
                EngineConfig::synchronous(3).with_max_rounds(3 * g.n() as u64),
            );
            assert!(stats.completed, "BRR incomplete on {name} root {root}");
            let tree = tree.unwrap();
            assert!(tree.is_spanning_tree_of(&g));
            assert_eq!(tree.root(), root);
            // d(S) sanity: within [D, n-1] of the host graph.
            assert!(u64::from(tree.tree_diameter()) <= g.n() as u64);
        }
    }
}

#[test]
fn uniform_broadcast_tree_valid_everywhere() {
    for (name, g) in graphs() {
        let b = BroadcastTree::new(&g, 0, CommModel::Uniform, 5).unwrap();
        let (stats, tree) =
            measure_tree_protocol(b, EngineConfig::synchronous(5).with_max_rounds(100_000));
        assert!(stats.completed, "uniform broadcast incomplete on {name}");
        assert!(tree.unwrap().is_spanning_tree_of(&g));
    }
}

#[test]
fn is_tree_valid_everywhere_async_too() {
    for (name, g) in graphs() {
        let is = IsTree::new(&g, 0, 7).unwrap();
        let (stats, tree) =
            measure_tree_protocol(is, EngineConfig::asynchronous(7).with_max_rounds(200_000));
        assert!(stats.completed, "IS incomplete on {name} (async)");
        assert!(tree.unwrap().is_spanning_tree_of(&g));
    }
}

#[test]
fn oracle_tree_depth_bounded_by_diameter() {
    for (_, g) in graphs() {
        let oracle = OracleTree::new(&g, 0, 2).unwrap();
        let (stats, tree) =
            measure_tree_protocol(oracle, EngineConfig::synchronous(1).with_max_rounds(100));
        assert!(stats.completed);
        assert!(tree.unwrap().depth() <= g.diameter());
    }
}

#[test]
fn tag_composes_with_every_tree_protocol_on_torus() {
    let g = builders::torus(3, 4).unwrap();
    let cfg = AgConfig::new(6).with_payload_len(1);
    // BRR
    let t1 = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 1).unwrap();
    let mut tag = Tag::<Gf256, _>::new(&g, t1, &cfg, 1).unwrap();
    let s = Engine::new(EngineConfig::synchronous(1).with_max_rounds(100_000)).run(&mut tag);
    assert!(s.completed);
    // IS
    let t2 = IsTree::new(&g, 0, 2).unwrap();
    let mut tag = Tag::<Gf256, _>::new(&g, t2, &cfg, 2).unwrap();
    let s = Engine::new(EngineConfig::synchronous(2).with_max_rounds(100_000)).run(&mut tag);
    assert!(s.completed);
    // Oracle
    let t3 = OracleTree::new(&g, 0, 3).unwrap();
    let mut tag = Tag::<Gf256, _>::new(&g, t3, &cfg, 3).unwrap();
    let s = Engine::new(EngineConfig::synchronous(3).with_max_rounds(100_000)).run(&mut tag);
    assert!(s.completed);
}

#[test]
fn broadcast_finish_time_upper_bounds_tree_depth_sync() {
    // In the synchronous model a broadcast tree's depth cannot exceed the
    // broadcast time (the paper's observation t(B) >= d(B)/2... actually
    // depth grows at most one level per round).
    for (name, g) in graphs() {
        let b = BroadcastTree::new(&g, 0, CommModel::Uniform, 11).unwrap();
        let mut runner = TreeRunner::new(b);
        let stats =
            Engine::new(EngineConfig::synchronous(11).with_max_rounds(100_000)).run(&mut runner);
        assert!(stats.completed);
        let tree = runner.inner().spanning_tree().unwrap();
        assert!(
            u64::from(tree.depth()) <= stats.rounds,
            "{name}: depth {} exceeded broadcast time {}",
            tree.depth(),
            stats.rounds
        );
    }
}

#[test]
fn tree_protocol_default_completeness_logic() {
    // A freshly built broadcast tree is incomplete (non-root nodes lack
    // parents) and spanning_tree() is None until completion.
    let g = builders::path(5).unwrap();
    let b = BroadcastTree::new(&g, 2, CommModel::Uniform, 0).unwrap();
    assert!(!b.is_tree_complete());
    assert!(b.spanning_tree().is_none());
    assert_eq!(b.root(), 2);
    assert_eq!(b.parent(2), None);
}
