//! Kernel-ladder differential proptests: every rung, every edge geometry.
//!
//! The three slab-kernel rungs — [`ag_gf::reference`] (the PR 2 product-
//! table path), [`ag_gf::wide`] (SWAR split-nibble `u64` kernels) and
//! [`ag_gf::simd`] (runtime-detected `PSHUFB`/`GF2P8MULB`) — must be
//! bit-identical on every input, or simulation trajectories would depend on
//! the host CPU. These properties drive all rungs plus the scalar
//! [`Field`]-arithmetic oracle over the geometries where wide kernels break
//! in practice:
//!
//! * empty rows and odd lengths,
//! * sub-8-byte and sub-16/32-byte tails (SWAR word and SIMD block
//!   boundaries),
//! * slabs starting at every misalignment `0..8` inside a parent buffer,
//! * coefficients `c ∈ {0, 1, generator, random}`,
//! * for GF(2⁴): non-canonical high nibbles in the source bytes.
//!
//! Run with `PROPTEST_CASES=256` in CI for the elevated-coverage pass.

use ag_gf::{reference, simd, wide, Field, Gf16, Gf256, SlabField};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random byte buffer.
fn bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// Maps a coefficient selector to the forced edge cases and random draws.
fn coeff<F: Field>(sel: u8, generator: F, seed: u64) -> F {
    match sel {
        0 => F::ZERO,
        1 => F::ONE,
        2 => generator,
        _ => F::random(&mut StdRng::seed_from_u64(seed ^ 0xC0FFEE)),
    }
}

/// Runs one (c, geometry) draw through all three GF(2⁸) rungs and the
/// scalar oracle. `off` misaligns the slab start inside a parent buffer.
fn gf256_rungs_agree(seed: u64, len: usize, off: usize, sel: u8) -> Result<(), TestCaseError> {
    let c = coeff(sel, Gf256::generator(), seed);
    let src_buf = bytes(seed, off + len);
    let dst_buf = bytes(seed.wrapping_mul(31).wrapping_add(7), off + len);
    let src = &src_buf[off..];

    // Scalar oracle from one-element Field ops.
    let want_axpy: Vec<u8> = dst_buf[off..]
        .iter()
        .zip(src)
        .map(|(&d, &s)| d ^ (c * Gf256::new(s)).value())
        .collect();
    let want_mul: Vec<u8> = dst_buf[off..]
        .iter()
        .map(|&d| (c * Gf256::new(d)).value())
        .collect();

    type MulAdd = fn(u8, &[u8], &mut [u8]);
    type Mul = fn(u8, &mut [u8]);
    let rungs: [(&str, MulAdd, Mul); 3] = [
        (
            "reference",
            reference::gf256_mul_add_slice,
            reference::gf256_mul_slice,
        ),
        ("swar", wide::gf256_mul_add_slice, wide::gf256_mul_slice),
        ("simd", simd::gf256_mul_add_slice, simd::gf256_mul_slice),
    ];
    for (name, mul_add, mul) in rungs {
        let mut axpy = dst_buf.clone();
        mul_add(c.value(), src, &mut axpy[off..]);
        prop_assert_eq!(&axpy[off..], &want_axpy[..], "{} axpy", name);
        prop_assert_eq!(
            &axpy[..off],
            &dst_buf[..off],
            "{} axpy prefix clobbered",
            name
        );

        let mut m = dst_buf.clone();
        mul(c.value(), &mut m[off..]);
        prop_assert_eq!(&m[off..], &want_mul[..], "{} mul", name);
        prop_assert_eq!(&m[..off], &dst_buf[..off], "{} mul prefix clobbered", name);
    }
    Ok(())
}

/// GF(2⁴) analog; `src` deliberately contains non-canonical high nibbles,
/// which every rung must ignore exactly like the reference kernel does.
fn gf16_rungs_agree(seed: u64, len: usize, off: usize, sel: u8) -> Result<(), TestCaseError> {
    let c = coeff(sel, Gf16::new(2), seed);
    let src_buf = bytes(seed, off + len);
    let dst_buf = bytes(seed ^ 0xD1CE, off + len);
    let src = &src_buf[off..];

    // The c = 1 fast path of every rung XORs whole bytes (dirty high
    // nibbles included) rather than masking first — harmless on canonical
    // slabs, and part of the shared kernel contract the rungs must agree on.
    let want_axpy: Vec<u8> = dst_buf[off..]
        .iter()
        .zip(src)
        .map(|(&d, &s)| {
            if c == Gf16::ONE {
                d ^ s
            } else {
                d ^ (c * Gf16::new(s)).value()
            }
        })
        .collect();

    type MulAdd = fn(u8, &[u8], &mut [u8]);
    let rungs: [(&str, MulAdd); 3] = [
        ("reference", reference::gf16_mul_add_slice),
        ("swar", wide::gf16_mul_add_slice),
        ("simd", simd::gf16_mul_add_slice),
    ];
    for (name, mul_add) in rungs {
        let mut axpy = dst_buf.clone();
        mul_add(c.value(), src, &mut axpy[off..]);
        prop_assert_eq!(&axpy[off..], &want_axpy[..], "{} axpy", name);
    }

    // mul_slice: only compare rungs to each other on canonical bytes (the
    // c = 1 early-out skips the low-nibble masking by design, so dirty
    // high nibbles would survive differently than under c != 1).
    let canonical: Vec<u8> = src.iter().map(|b| b & 0xF).collect();
    let mut want_mul = canonical.clone();
    reference::gf16_mul_slice(c.value(), &mut want_mul);
    for (name, mul) in [
        ("swar", wide::gf16_mul_slice as fn(u8, &mut [u8])),
        ("simd", simd::gf16_mul_slice as fn(u8, &mut [u8])),
    ] {
        let mut m = canonical.clone();
        mul(c.value(), &mut m);
        prop_assert_eq!(&m, &want_mul, "{} mul", name);
    }
    Ok(())
}

/// The fused gather `mul_add_multi` against a loop of single-row scalar
/// axpys, for any field — pins the fused kernels (GFNI tiles, tails, zero
/// factors) and the generic default to the same bytes.
fn fused_multi_matches_loop<F: SlabField>(
    seed: u64,
    n: usize,
    len: usize,
    zero_mask: u8,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<F> = (0..n)
        .map(|i| {
            if zero_mask & (1 << (i % 8)) != 0 {
                F::ZERO
            } else {
                F::random(&mut rng)
            }
        })
        .collect();
    let rows: Vec<Vec<F>> = (0..n)
        .map(|_| (0..len).map(|_| F::random(&mut rng)).collect())
        .collect();
    let dst: Vec<F> = (0..len).map(|_| F::random(&mut rng)).collect();

    let pf = F::pack(&factors);
    let mut psrcs = Vec::new();
    for r in &rows {
        F::pack_into(r, &mut psrcs);
    }
    let mut fused = F::pack(&dst);
    F::mul_add_multi(&pf, &psrcs, &mut fused);

    let want: Vec<F> = (0..len)
        .map(|j| {
            let mut acc = dst[j];
            for (c, r) in factors.iter().zip(&rows) {
                acc += *c * r[j];
            }
            acc
        })
        .collect();
    prop_assert_eq!(F::unpack(&fused), want);
    Ok(())
}

/// `mul_add_scatter` against a loop of single-row scalar axpys.
fn scatter_matches_loop<F: SlabField>(
    seed: u64,
    n: usize,
    len: usize,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
    let src: Vec<F> = (0..len).map(|_| F::random(&mut rng)).collect();
    let rows: Vec<Vec<F>> = (0..n)
        .map(|_| (0..len).map(|_| F::random(&mut rng)).collect())
        .collect();

    let pf = F::pack(&factors);
    let psrc = F::pack(&src);
    let mut pdsts = Vec::new();
    for r in &rows {
        F::pack_into(r, &mut pdsts);
    }
    F::mul_add_scatter(&pf, &psrc, &mut pdsts);

    for (i, (c, row)) in factors.iter().zip(&rows).enumerate() {
        let want: Vec<F> = row.iter().zip(&src).map(|(&d, &s)| d + *c * s).collect();
        let rb = len * F::SYMBOL_BYTES;
        prop_assert_eq!(F::unpack(&pdsts[i * rb..(i + 1) * rb]), want, "row {}", i);
    }
    Ok(())
}

/// The blocked panel kernel `mul_add_block` against a scalar axpy loop,
/// for any field: an `r × c` coefficient micro-panel applied to `c` source
/// rows accumulated into `r` destination rows must equal `r · c`
/// independent scalar axpys. `force_mask` pins coefficients to the 0/1
/// edge cases (skip paths and the mul-free accumulate); ragged `r`, `c`
/// and odd `len` straddle the register-panel tile sizes and masked tails.
fn block_matches_axpy_loop<F: SlabField>(
    seed: u64,
    r: usize,
    c: usize,
    len: usize,
    force_mask: u16,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let coefs: Vec<F> = (0..r * c)
        .map(|i| match (force_mask >> (i % 16)) & 1 {
            1 if i % 2 == 0 => F::ZERO,
            1 => F::ONE,
            _ => F::random(&mut rng),
        })
        .collect();
    let srcs: Vec<Vec<F>> = (0..c)
        .map(|_| (0..len).map(|_| F::random(&mut rng)).collect())
        .collect();
    let dsts: Vec<Vec<F>> = (0..r)
        .map(|_| (0..len).map(|_| F::random(&mut rng)).collect())
        .collect();

    let pc = F::pack(&coefs);
    let mut psrcs = Vec::new();
    for row in &srcs {
        F::pack_into(row, &mut psrcs);
    }
    let mut pdsts = Vec::new();
    for row in &dsts {
        F::pack_into(row, &mut pdsts);
    }
    F::mul_add_block(&pc, &psrcs, &mut pdsts, len * F::SYMBOL_BYTES);

    for i in 0..r {
        let want: Vec<F> = (0..len)
            .map(|j| {
                let mut acc = dsts[i][j];
                for (k, src) in srcs.iter().enumerate() {
                    acc += coefs[i * c + k] * src[j];
                }
                acc
            })
            .collect();
        let rb = len * F::SYMBOL_BYTES;
        prop_assert_eq!(F::unpack(&pdsts[i * rb..(i + 1) * rb]), want, "row {}", i);
    }
    Ok(())
}

/// The GF(2⁸) SIMD block entry point directly (not through dispatch)
/// against the reference gather loop, with every slab misaligned inside a
/// parent buffer — pins the GFNI-512/GFNI/AVX2/SSSE3 register panels,
/// masked tails and leftover-row gathers no matter which rung is active.
fn gf256_simd_block_matches_reference(
    seed: u64,
    r: usize,
    c: usize,
    len: usize,
    off: usize,
) -> Result<(), TestCaseError> {
    let coefs_buf = bytes(seed, off + r * c);
    let srcs_buf = bytes(seed ^ 0xB10C, off + c * len);
    let dsts_buf = bytes(seed ^ 0x5EED, off + r * len);
    let coefs = &coefs_buf[off..];
    let srcs = &srcs_buf[off..];

    let mut want = dsts_buf.clone();
    for i in 0..r {
        for (k, f) in coefs[i * c..(i + 1) * c].iter().enumerate() {
            reference::gf256_mul_add_slice(
                *f,
                &srcs[k * len..(k + 1) * len],
                &mut want[off + i * len..off + (i + 1) * len],
            );
        }
    }

    let mut got = dsts_buf.clone();
    simd::gf256_mul_add_block(coefs, srcs, &mut got[off..], len);
    prop_assert_eq!(&got[off..], &want[off..], "panel bytes");
    prop_assert_eq!(&got[..off], &dsts_buf[..off], "prefix clobbered");
    Ok(())
}

/// The dispatched `SlabField` surface (whatever kernel is active) against
/// the scalar oracle, for every field — pins the dispatch layer itself.
fn dispatch_matches_scalar<F: SlabField>(
    seed: u64,
    len: usize,
    sel: u8,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<F> = (0..len).map(|_| F::random(&mut rng)).collect();
    let ys: Vec<F> = (0..len).map(|_| F::random(&mut rng)).collect();
    let c = match sel {
        0 => F::ZERO,
        1 => F::ONE,
        _ => F::random(&mut rng),
    };
    let px = F::pack(&xs);
    let py = F::pack(&ys);

    let mut axpy = px.clone();
    F::mul_add_slice(c, &py, &mut axpy);
    let want: Vec<F> = xs.iter().zip(&ys).map(|(&x, &y)| x + c * y).collect();
    prop_assert_eq!(F::unpack(&axpy), want);

    let mut mul = px;
    F::mul_slice(c, &mut mul);
    let want_mul: Vec<F> = xs.iter().map(|&x| c * x).collect();
    prop_assert_eq!(F::unpack(&mul), want_mul);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gf256_kernel_ladder_is_bit_identical(
        seed in any::<u64>(),
        len in 0usize..100,
        off in 0usize..8,
        sel in 0u8..5,
    ) {
        gf256_rungs_agree(seed, len, off, sel)?;
    }

    #[test]
    fn gf16_kernel_ladder_is_bit_identical(
        seed in any::<u64>(),
        len in 0usize..100,
        off in 0usize..8,
        sel in 0u8..5,
    ) {
        gf16_rungs_agree(seed, len, off, sel)?;
    }

    #[test]
    fn fused_multi_matches_loop_gf256(
        seed in any::<u64>(),
        n in 0usize..20,
        // Straddles the 128/256-byte GFNI tile sizes and the scalar tail.
        len in 0usize..300,
        zero_mask in any::<u8>(),
    ) {
        fused_multi_matches_loop::<Gf256>(seed, n, len, zero_mask)?;
    }

    #[test]
    fn fused_multi_matches_loop_gf16(
        seed in any::<u64>(),
        n in 0usize..12,
        len in 0usize..80,
        zero_mask in any::<u8>(),
    ) {
        fused_multi_matches_loop::<Gf16>(seed, n, len, zero_mask)?;
    }

    #[test]
    fn fused_multi_matches_loop_gf2(
        seed in any::<u64>(),
        n in 0usize..12,
        len in 0usize..80,
        zero_mask in any::<u8>(),
    ) {
        fused_multi_matches_loop::<ag_gf::Gf2>(seed, n, len, zero_mask)?;
    }

    #[test]
    fn fused_multi_matches_loop_f257(
        seed in any::<u64>(),
        n in 0usize..8,
        len in 0usize..40,
        zero_mask in any::<u8>(),
    ) {
        fused_multi_matches_loop::<ag_gf::F257>(seed, n, len, zero_mask)?;
    }

    #[test]
    fn block_matches_axpy_loop_gf256(
        seed in any::<u64>(),
        // Ragged panel shapes straddling the 4-row register panels and the
        // leftover-row gathers.
        ri in 0usize..5,
        ci in 0usize..5,
        // Odd lengths straddle the 128/64-byte vector passes and the
        // masked/scalar tails. (`len = 0` is excluded: `check_block` can
        // only infer the panel shape from whole rows, so zero-byte rows
        // require empty slabs by contract.)
        len in 1usize..300,
        force_mask in any::<u16>(),
    ) {
        let shapes = [1usize, 2, 3, 8, 17];
        block_matches_axpy_loop::<Gf256>(seed, shapes[ri], shapes[ci], len, force_mask)?;
    }

    #[test]
    fn block_matches_axpy_loop_gf16(
        seed in any::<u64>(),
        ri in 0usize..5,
        ci in 0usize..5,
        len in 1usize..80,
        force_mask in any::<u16>(),
    ) {
        let shapes = [1usize, 2, 3, 8, 17];
        block_matches_axpy_loop::<Gf16>(seed, shapes[ri], shapes[ci], len, force_mask)?;
    }

    #[test]
    fn block_matches_axpy_loop_gf2(
        seed in any::<u64>(),
        ri in 0usize..5,
        ci in 0usize..5,
        len in 1usize..80,
        force_mask in any::<u16>(),
    ) {
        let shapes = [1usize, 2, 3, 8, 17];
        block_matches_axpy_loop::<ag_gf::Gf2>(seed, shapes[ri], shapes[ci], len, force_mask)?;
    }

    #[test]
    fn block_matches_axpy_loop_f257(
        seed in any::<u64>(),
        ri in 0usize..5,
        ci in 0usize..5,
        len in 1usize..40,
        force_mask in any::<u16>(),
    ) {
        let shapes = [1usize, 2, 3, 8, 17];
        block_matches_axpy_loop::<ag_gf::F257>(seed, shapes[ri], shapes[ci], len, force_mask)?;
    }

    #[test]
    fn gf256_simd_block_matches_reference_misaligned(
        seed in any::<u64>(),
        ri in 0usize..5,
        ci in 0usize..5,
        len in 1usize..300,
        off in 0usize..8,
    ) {
        let shapes = [1usize, 2, 3, 8, 17];
        gf256_simd_block_matches_reference(seed, shapes[ri], shapes[ci], len, off)?;
    }

    #[test]
    fn scatter_matches_loop_gf256(
        seed in any::<u64>(),
        n in 0usize..16,
        len in 0usize..150,
    ) {
        scatter_matches_loop::<Gf256>(seed, n, len)?;
    }

    #[test]
    fn scatter_matches_loop_gf16(
        seed in any::<u64>(),
        n in 0usize..10,
        len in 0usize..80,
    ) {
        scatter_matches_loop::<Gf16>(seed, n, len)?;
    }

    #[test]
    fn dispatch_matches_scalar_gf2(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        dispatch_matches_scalar::<ag_gf::Gf2>(seed, len, sel)?;
    }

    #[test]
    fn dispatch_matches_scalar_gf16(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        dispatch_matches_scalar::<Gf16>(seed, len, sel)?;
    }

    #[test]
    fn dispatch_matches_scalar_gf256(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        dispatch_matches_scalar::<Gf256>(seed, len, sel)?;
    }

    #[test]
    fn dispatch_matches_scalar_gf65536(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        dispatch_matches_scalar::<ag_gf::Gf65536>(seed, len, sel)?;
    }

    #[test]
    fn dispatch_matches_scalar_f257(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        dispatch_matches_scalar::<ag_gf::F257>(seed, len, sel)?;
    }
}

/// Deterministic exhaustive pin: every GF(2⁸) multiplier × every source
/// byte, all rungs, one 256-byte row — the same full-plane check the PR 2
/// suite ran for the table kernel, now across the whole ladder.
#[test]
fn gf256_all_multipliers_all_bytes_all_rungs() {
    let src: Vec<u8> = (0..=255u8).collect();
    for c in 0..=255u8 {
        let mut want = vec![0u8; 256];
        reference::gf256_mul_add_slice(c, &src, &mut want);
        let mut swar = vec![0u8; 256];
        wide::gf256_mul_add_slice(c, &src, &mut swar);
        assert_eq!(swar, want, "swar c={c}");
        let mut sd = vec![0u8; 256];
        simd::gf256_mul_add_slice(c, &src, &mut sd);
        assert_eq!(sd, want, "simd c={c}");
    }
}
