//! Property-based tests of the field axioms over randomly drawn elements.

use ag_gf::symbols::{bytes_to_symbols, symbols_to_bytes};
use ag_gf::{Field, Gf16, Gf2, Gf256, Gf65536, F257};
use proptest::prelude::*;

/// Asserts the axioms that bind three arbitrary elements together.
fn ternary_axioms<F: Field>(a: F, b: F, c: F) -> Result<(), TestCaseError> {
    prop_assert_eq!(a + b, b + a);
    prop_assert_eq!(a * b, b * a);
    prop_assert_eq!((a + b) + c, a + (b + c));
    prop_assert_eq!((a * b) * c, a * (b * c));
    prop_assert_eq!(a * (b + c), a * b + a * c);
    prop_assert_eq!((a - b) + b, a);
    prop_assert_eq!(a + (-a), F::ZERO);
    if b != F::ZERO {
        let q = a.div(b).unwrap();
        prop_assert_eq!(q * b, a);
    }
    Ok(())
}

macro_rules! field_axiom_suite {
    ($name:ident, $field:ty) => {
        proptest! {
            #[test]
            fn $name(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
                let (a, b, c) = (
                    <$field>::from_u64(a),
                    <$field>::from_u64(b),
                    <$field>::from_u64(c),
                );
                ternary_axioms(a, b, c)?;
            }
        }
    };
}

field_axiom_suite!(gf2_axioms, Gf2);
field_axiom_suite!(gf16_axioms, Gf16);
field_axiom_suite!(gf256_axioms, Gf256);
field_axiom_suite!(gf65536_axioms, Gf65536);
field_axiom_suite!(f257_axioms, F257);

proptest! {
    #[test]
    fn inverse_of_inverse_is_identity(v in 1u64..=255) {
        let a = Gf256::from_u64(v);
        let ai = a.inv().unwrap();
        prop_assert_eq!(ai.inv().unwrap(), a);
    }

    #[test]
    fn pow_is_homomorphic(v in 1u64..=255, e1 in 0u64..50, e2 in 0u64..50) {
        let a = Gf256::from_u64(v);
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn symbol_round_trip_gf256(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let syms = bytes_to_symbols::<Gf256>(&data);
        prop_assert_eq!(symbols_to_bytes::<Gf256>(&syms, data.len()), data);
    }

    #[test]
    fn symbol_round_trip_gf2(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let syms = bytes_to_symbols::<Gf2>(&data);
        prop_assert_eq!(symbols_to_bytes::<Gf2>(&syms, data.len()), data);
    }

    #[test]
    fn symbol_round_trip_gf65536(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let syms = bytes_to_symbols::<Gf65536>(&data);
        prop_assert_eq!(symbols_to_bytes::<Gf65536>(&syms, data.len()), data);
    }
}
