//! Slab-law property tests: for every [`SlabField`], the packed bulk
//! operations agree element-wise with the scalar [`Field`] arithmetic.
//!
//! Each law is checked including the `c = 0` and `c = 1` edge cases and on
//! empty and odd-length slices (lengths are drawn from `0..67`, which covers
//! both sides of the 8-byte XOR chunking boundary).

use ag_gf::{Gf16, Gf2, Gf256, Gf65536, SlabField, F257};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random elements of `F` plus the forced edge coefficients 0 and 1.
fn elems_and_coeff<F: SlabField>(seed: u64, len: usize, coeff_sel: u8) -> (Vec<F>, Vec<F>, F) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs = (0..len).map(|_| F::random(&mut rng)).collect();
    let ys = (0..len).map(|_| F::random(&mut rng)).collect();
    let c = match coeff_sel {
        0 => F::ZERO,
        1 => F::ONE,
        _ => F::random(&mut rng),
    };
    (xs, ys, c)
}

/// Checks all three slab laws plus the packing invariants for one draw.
fn check_laws<F: SlabField>(seed: u64, len: usize, coeff_sel: u8) -> Result<(), TestCaseError> {
    let (xs, ys, c) = elems_and_coeff::<F>(seed, len, coeff_sel);
    let px = F::pack(&xs);
    let py = F::pack(&ys);
    prop_assert_eq!(px.len(), len * F::SYMBOL_BYTES);

    // Packing is canonical and round-trips.
    prop_assert_eq!(F::unpack(&px), xs.clone());
    prop_assert_eq!(F::pack(&[F::ZERO]), vec![0u8; F::SYMBOL_BYTES]);

    // add_slice == element-wise Field::add.
    let mut add = px.clone();
    F::add_slice(&py, &mut add);
    let want_add: Vec<F> = xs.iter().zip(&ys).map(|(&x, &y)| x + y).collect();
    prop_assert_eq!(F::unpack(&add), want_add);

    // mul_slice == element-wise Field::mul by c.
    let mut mul = px.clone();
    F::mul_slice(c, &mut mul);
    let want_mul: Vec<F> = xs.iter().map(|&x| c * x).collect();
    prop_assert_eq!(F::unpack(&mul), want_mul);

    // mul_add_slice == element-wise axpy.
    let mut axpy = px.clone();
    F::mul_add_slice(c, &py, &mut axpy);
    let want_axpy: Vec<F> = xs.iter().zip(&ys).map(|(&x, &y)| x + c * y).collect();
    prop_assert_eq!(F::unpack(&axpy), want_axpy);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gf2_slab_laws(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        check_laws::<Gf2>(seed, len, sel)?;
    }

    #[test]
    fn gf16_slab_laws(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        check_laws::<Gf16>(seed, len, sel)?;
    }

    #[test]
    fn gf256_slab_laws(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        check_laws::<Gf256>(seed, len, sel)?;
    }

    #[test]
    fn gf65536_slab_laws(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        check_laws::<Gf65536>(seed, len, sel)?;
    }

    #[test]
    fn f257_slab_laws(seed in any::<u64>(), len in 0usize..67, sel in 0u8..4) {
        check_laws::<F257>(seed, len, sel)?;
    }
}

#[test]
fn gf256_axpy_exhaustive_over_coefficients() {
    // Every coefficient c, against a slab holding every byte value: the
    // full-table kernel must match the scalar product on all 256×256 pairs.
    let all: Vec<Gf256> = (0..=255u8).map(Gf256::new).collect();
    let src = Gf256::pack(&all);
    for c in 0..=255u8 {
        let c = Gf256::new(c);
        let mut dst = vec![0u8; src.len()];
        Gf256::mul_add_slice(c, &src, &mut dst);
        let want: Vec<Gf256> = all.iter().map(|&x| c * x).collect();
        assert_eq!(Gf256::unpack(&dst), want, "c = {c}");
    }
}
