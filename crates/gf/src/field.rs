//! The [`Field`] trait: the contract every coefficient type satisfies.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

/// A finite field `F_q`.
///
/// Implementors are small `Copy` value types (one machine word or less).
/// Arithmetic comes from the standard operator traits, which are supertraits
/// here, so generic code writes `a + b` and `a * b` directly. The trait adds
/// only what operators cannot express: identities, inversion, sampling, and
/// a canonical integer embedding.
///
/// # Examples
///
/// Generic code can be written once for every field:
///
/// ```
/// use ag_gf::{Field, Gf2, Gf256};
///
/// fn dot<F: Field>(xs: &[F], ys: &[F]) -> F {
///     xs.iter().zip(ys).fold(F::ZERO, |acc, (&x, &y)| acc + x * y)
/// }
///
/// let a = [Gf256::new(3), Gf256::new(5)];
/// let b = [Gf256::new(7), Gf256::new(11)];
/// assert_eq!(dot(&a, &b), Gf256::new(3) * Gf256::new(7)
///     + Gf256::new(5) * Gf256::new(11));
///
/// let c = [Gf2::ONE, Gf2::ONE];
/// assert_eq!(dot(&c, &c), Gf2::ZERO); // 1·1 + 1·1 = 0 in GF(2)
/// ```
pub trait Field:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Hash
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The number of elements `q` in the field.
    const SIZE: u64;

    /// Multiplicative inverse, or `None` for zero.
    #[must_use]
    fn inv(self) -> Option<Self>;

    /// Field division (`self / rhs`), or `None` when `rhs` is zero.
    #[must_use]
    fn div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|r| self * r)
    }

    /// Exponentiation by squaring.
    #[must_use]
    fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// An element drawn uniformly at random from the whole field.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// An element drawn uniformly at random from the nonzero elements.
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x = Self::random(rng);
            if x != Self::ZERO {
                return x;
            }
        }
    }

    /// Canonical embedding of a small integer (reduced mod the field's
    /// natural representation). Used by tests and the symbol codecs.
    fn from_u64(v: u64) -> Self;

    /// The canonical integer representation of the element.
    fn to_u64(self) -> u64;

    /// True when the element is zero. Provided for readability at call
    /// sites that scan coefficient vectors.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}
