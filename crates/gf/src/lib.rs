//! Finite-field arithmetic for algebraic gossip.
//!
//! Random linear network coding (RLNC) — the message format used by the
//! algebraic gossip protocols of Avin, Borokhovich, Censor-Hillel and Lotker
//! (PODC 2011) — draws coefficients uniformly at random from a finite field
//! `F_q`. The probability that a coded message emitted by a *helpful* node is
//! itself helpful is at least `1 − 1/q` (Deb et al., Lemma 2.1), so the field
//! size is a first-class experimental parameter. This crate provides:
//!
//! * [`Field`] — the trait every coefficient type implements,
//! * [`Gf2`] — the binary field (q = 2, the paper's worst case),
//! * [`Gf16`] — GF(2⁴), nibble-sized symbols,
//! * [`Gf256`] — GF(2⁸) with log/exp tables (the practical RLNC default),
//! * [`Gf65536`] — GF(2¹⁶) via carry-less multiplication,
//! * [`Fp`] — prime fields GF(p) for any prime `p < 2³²`,
//! * [`SlabField`] — bulk row arithmetic over packed byte slabs (the
//!   [`slab`] module), which is what the decoder and recoder hot paths use,
//! * [`Kernel`] — runtime selection between the slab-kernel rungs: the
//!   preserved PR 2 table path ([`reference`]), portable SWAR split-nibble
//!   `u64` kernels ([`wide`]), and runtime-detected x86-64 SIMD
//!   (`PSHUFB`/`GF2P8MULB`, [`simd`]).
//!
//! # Choosing a field
//!
//! Throughput and overhead pull in opposite directions. [`Gf256`] is the
//! practical default: symbols align with bytes, redundancy probability is
//! `1/256`, and the slab kernels reduce an axpy to one table load plus an
//! XOR per byte. [`Gf2`] symbols cost 8× fewer bits in the paper's
//! wire-size model (`(k + r)·log₂ q`, see `Packet::wire_bits` in
//! `ag-rlnc`; in-memory slabs here store one byte per symbol regardless)
//! and its slabs are pure XOR, but a random combination is redundant with
//! probability `1/2`, so more rounds are needed — it is the paper's worst
//! case, kept for fidelity. [`Gf16`] sits between the two.
//! [`Gf65536`] and [`Fp`] exist for the field-size ablation and run on the
//! scalar slab fallback; do not pick them for throughput.
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! // Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
//! assert_eq!(a * b, Gf256::new(0xc1));
//! // Every nonzero element has a multiplicative inverse.
//! let inv = a.inv().unwrap();
//! assert_eq!(a * inv, Gf256::ONE);
//! ```

// In characteristic-2 fields XOR *is* addition and AND-style carry-less
// products *are* multiplication; clippy's heuristic flags them as suspicious.
#![allow(clippy::suspicious_arithmetic_impl)]
#![allow(clippy::suspicious_op_assign_impl)]

mod field;
mod fp;
mod gf16;
mod gf2;
mod gf256;
mod gf65536;
pub mod kernel;
pub mod reference;
pub mod simd;
pub mod slab;
pub mod symbols;
pub mod wide;

pub use field::Field;
pub use fp::{Fp, F13, F257, F65537, F7};
pub use gf16::Gf16;
pub use gf2::Gf2;
pub use gf256::Gf256;
pub use gf65536::Gf65536;
pub use kernel::{set_kernel, Kernel};
pub use slab::SlabField;

#[cfg(test)]
mod axiom_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exercise the full field-axiom battery on a sample of elements.
    fn check_axioms_sample<F: Field>(elems: &[F]) {
        for &a in elems {
            // Additive identity / inverse.
            assert_eq!(a + F::ZERO, a);
            assert_eq!(a + (-a), F::ZERO);
            // Multiplicative identity.
            assert_eq!(a * F::ONE, a);
            assert_eq!(a * F::ZERO, F::ZERO);
            // Inverse (nonzero only).
            if a != F::ZERO {
                let ai = a.inv().expect("nonzero element must be invertible");
                assert_eq!(a * ai, F::ONE, "a * a^-1 != 1");
            } else {
                assert!(a.inv().is_none(), "zero must not be invertible");
            }
            for &b in elems {
                // Commutativity.
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                // Subtraction is the inverse of addition.
                assert_eq!((a + b) - b, a);
                for &c in elems {
                    // Associativity.
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!((a * b) * c, a * (b * c));
                    // Distributivity.
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    fn sample<F: Field>(count: usize, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![F::ZERO, F::ONE];
        while v.len() < count {
            v.push(F::random(&mut rng));
        }
        v
    }

    #[test]
    fn gf2_axioms_exhaustive() {
        check_axioms_sample::<Gf2>(&[Gf2::ZERO, Gf2::ONE]);
    }

    #[test]
    fn gf16_axioms_exhaustive() {
        let all: Vec<Gf16> = (0..16u8).map(Gf16::new).collect();
        check_axioms_sample(&all);
    }

    #[test]
    fn gf256_axioms_sampled() {
        check_axioms_sample::<Gf256>(&sample(12, 0xA11CE));
    }

    #[test]
    fn gf65536_axioms_sampled() {
        check_axioms_sample::<Gf65536>(&sample(10, 0xB0B));
    }

    #[test]
    fn f257_axioms_sampled() {
        check_axioms_sample::<F257>(&sample(12, 0xCAFE));
    }

    #[test]
    fn f65537_axioms_sampled() {
        check_axioms_sample::<F65537>(&sample(10, 0xD00D));
    }

    #[test]
    fn f7_axioms_exhaustive() {
        let all: Vec<F7> = (0..7u64).map(F7::from_u64).collect();
        check_axioms_sample(&all);
    }

    #[test]
    fn field_sizes_are_correct() {
        assert_eq!(Gf2::SIZE, 2);
        assert_eq!(Gf16::SIZE, 16);
        assert_eq!(Gf256::SIZE, 256);
        assert_eq!(Gf65536::SIZE, 65536);
        assert_eq!(F257::SIZE, 257);
        assert_eq!(F65537::SIZE, 65537);
    }

    #[test]
    fn random_nonzero_is_nonzero() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_ne!(Gf2::random_nonzero(&mut rng), Gf2::ZERO);
            assert_ne!(Gf256::random_nonzero(&mut rng), Gf256::ZERO);
            assert_ne!(F257::random_nonzero(&mut rng), F257::ZERO);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let a = Gf256::random(&mut rng);
            let mut acc = Gf256::ONE;
            for e in 0..10u64 {
                assert_eq!(a.pow(e), acc);
                acc *= a;
            }
        }
    }

    #[test]
    fn from_u64_round_trips_small_values() {
        for v in 0..2 {
            assert_eq!(Gf2::from_u64(v).to_u64(), v);
        }
        for v in 0..16 {
            assert_eq!(Gf16::from_u64(v).to_u64(), v);
        }
        for v in [0u64, 1, 17, 200, 255] {
            assert_eq!(Gf256::from_u64(v).to_u64(), v);
        }
        for v in [0u64, 1, 65535] {
            assert_eq!(Gf65536::from_u64(v).to_u64(), v);
        }
        for v in [0u64, 1, 256] {
            assert_eq!(F257::from_u64(v).to_u64(), v);
        }
    }
}
