//! SWAR split-nibble slab kernels: 8 bytes per step through `u64` words.
//!
//! Multiplication by a fixed `c` in a binary extension field is GF(2)-linear
//! in the operand, so the product of `c` with a whole byte splits along the
//! byte's two nibbles:
//!
//! ```text
//! c · b  =  LO[b & 0xF]  ^  HI[b >> 4]
//! ```
//!
//! where `LO[x] = c · x` and `HI[x] = c · (x << 4)` are two 16-entry
//! *nibble tables* built per multiplier ([`NibbleTables`]). `PSHUFB` applies
//! exactly this table pair 16/32 bytes at a time (see [`crate::simd`]); this
//! module is its scalar emulation: by linearity again, each table is
//! determined by its four power-of-two entries, so
//!
//! ```text
//! c · b = Σ_{i=0..8} bit_i(b) · T[i],   T[i] = (i < 4 ? LO : HI)[1 << (i & 3)]
//! ```
//!
//! and a `u64` word of 8 packed bytes is multiplied with eight
//! shift-mask-multiply-XOR steps, no per-byte loads:
//!
//! ```text
//! acc ^= ((w >> i) & 0x0101…01) * T[i]      // for i in 0..8
//! ```
//!
//! (`(w >> i) & 0x0101…01` extracts bit `i` of every byte lane;
//! multiplying that 0/1 lane mask by the table byte broadcasts `T[i]` into
//! exactly the lanes whose bit was set — lanes never carry into each other
//! because `T[i] < 256`.) GF(2⁴) symbols occupy the low nibble of their
//! byte, so only the four `LO` steps are needed and the high nibble is
//! ignored — the same masking the reference kernel applies, at twice the
//! step rate of GF(2⁸).
//!
//! Loads go through `u64::from_le_bytes`, so slabs need no alignment; the
//! sub-8-byte tail falls back to the nibble tables one byte at a time. The
//! `proptest_kernels` suite pins this rung bit-identical to
//! [`crate::reference`] and [`crate::simd`] over every geometry (odd
//! lengths, tails, empty rows, misaligned starts) and coefficient class.

use crate::slab::xor_slice;
use crate::{Gf16, Gf256};

/// The per-multiplier split-nibble tables: `lo[x] = c·x`,
/// `hi[x] = c·(x << 4)`.
///
/// 32 bytes per multiplier, built with 30 scalar products at the top of a
/// row operation and amortized over its length. Shared by the SWAR rung
/// (via the power-of-two entries) and the `PSHUFB` rung (verbatim).
#[derive(Debug, Clone, Copy)]
pub struct NibbleTables {
    /// Products of `c` with the 16 low-nibble values.
    pub lo: [u8; 16],
    /// Products of `c` with the 16 high-nibble values `x << 4`.
    pub hi: [u8; 16],
}

/// Builds the GF(2⁸) nibble tables for multiplier `c`.
#[must_use]
pub fn gf256_nibble_tables(c: u8) -> NibbleTables {
    let c = Gf256::new(c);
    let mut t = NibbleTables {
        lo: [0; 16],
        hi: [0; 16],
    };
    for x in 0..16u8 {
        t.lo[x as usize] = (c * Gf256::new(x)).value();
        t.hi[x as usize] = (c * Gf256::new(x << 4)).value();
    }
    t
}

/// Builds the GF(2⁴) nibble table for multiplier `c` (the `lo` half; the
/// `hi` half is identically zero because canonical GF(2⁴) packing keeps
/// the high nibble clear and the reference kernel masks it off).
#[must_use]
pub fn gf16_nibble_tables(c: u8) -> NibbleTables {
    let c = Gf16::new(c);
    let mut t = NibbleTables {
        lo: [0; 16],
        hi: [0; 16],
    };
    for x in 0..16u8 {
        t.lo[x as usize] = (c * Gf16::new(x)).value();
    }
    t
}

/// Bit `0` of every byte lane.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// The eight SWAR broadcast steps for one word: `Σ bit_i(w) · T[i]`.
/// `BITS` is 8 for GF(2⁸) and 4 for GF(2⁴) (whose high nibble is ignored).
#[inline]
fn mul_word<const BITS: usize>(w: u64, t: &[u64; 8]) -> u64 {
    let mut acc = 0u64;
    for (i, &ti) in t.iter().enumerate().take(BITS) {
        acc ^= ((w >> i) & LANE_LSB) * ti;
    }
    acc
}

/// Expands the power-of-two table entries into the per-bit multipliers
/// `T[0..8]` consumed by [`mul_word`].
#[inline]
fn bit_multipliers(t: &NibbleTables) -> [u64; 8] {
    [
        u64::from(t.lo[1]),
        u64::from(t.lo[2]),
        u64::from(t.lo[4]),
        u64::from(t.lo[8]),
        u64::from(t.hi[1]),
        u64::from(t.hi[2]),
        u64::from(t.hi[4]),
        u64::from(t.hi[8]),
    ]
}

/// Shared SWAR loop shape for `dst[i] ^= c·src[i]`.
#[inline]
fn mul_add_impl<const BITS: usize>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    let tb = bit_multipliers(t);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(sc.try_into().expect("8-byte chunk"));
        let acc = u64::from_le_bytes(dc[..8].try_into().expect("8-byte chunk"))
            ^ mul_word::<BITS>(w, &tb);
        dc.copy_from_slice(&acc.to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= t.lo[(sb & 0xF) as usize] ^ t.hi[(sb >> 4) as usize];
    }
}

/// Shared SWAR loop shape for `dst[i] = c·dst[i]`.
#[inline]
fn mul_impl<const BITS: usize>(t: &NibbleTables, dst: &mut [u8]) {
    let tb = bit_multipliers(t);
    let mut d = dst.chunks_exact_mut(8);
    for dc in &mut d {
        let w = u64::from_le_bytes(dc[..8].try_into().expect("8-byte chunk"));
        dc.copy_from_slice(&mul_word::<BITS>(w, &tb).to_le_bytes());
    }
    for db in d.into_remainder() {
        *db = t.lo[(*db & 0xF) as usize] ^ t.hi[(*db >> 4) as usize];
    }
}

/// `dst[i] = c · dst[i]` over GF(2⁸), SWAR rung.
pub fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    mul_impl::<8>(&gf256_nibble_tables(c), dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁸), SWAR rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    mul_add_impl::<8>(&gf256_nibble_tables(c), src, dst);
}

/// `dst[i] = c · dst[i]` over GF(2⁴), SWAR rung — the full-byte
/// (8-symbols-per-word) path that replaces the near-scalar nibble loop.
pub fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        // Match the reference rung exactly: multiplying by 1 leaves even
        // non-canonical high nibbles untouched.
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    mul_impl::<4>(&gf16_nibble_tables(c), dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁴), SWAR rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    mul_add_impl::<4>(&gf16_nibble_tables(c), src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_tables_recombine_to_full_products() {
        for c in [2u8, 3, 0x57, 0x8E, 0xFF] {
            let t = gf256_nibble_tables(c);
            for b in 0..=255u8 {
                let want = (Gf256::new(c) * Gf256::new(b)).value();
                assert_eq!(t.lo[(b & 0xF) as usize] ^ t.hi[(b >> 4) as usize], want);
            }
        }
    }

    #[test]
    fn gf256_swar_matches_reference_on_all_bytes() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x03, 0x57, 0xB7, 0xFF] {
            let mut want = vec![0x5Au8; 256];
            crate::reference::gf256_mul_add_slice(c, &src, &mut want);
            let mut got = vec![0x5Au8; 256];
            gf256_mul_add_slice(c, &src, &mut got);
            assert_eq!(got, want, "axpy c={c}");

            let mut want_mul = src.clone();
            crate::reference::gf256_mul_slice(c, &mut want_mul);
            let mut got_mul = src.clone();
            gf256_mul_slice(c, &mut got_mul);
            assert_eq!(got_mul, want_mul, "mul c={c}");
        }
    }

    #[test]
    fn gf16_swar_matches_reference_including_dirty_high_nibbles() {
        let src: Vec<u8> = (0..=255u8).collect(); // includes non-canonical bytes
        for c in 0..16u8 {
            let mut want = vec![0x0Fu8; 256];
            crate::reference::gf16_mul_add_slice(c, &src, &mut want);
            let mut got = vec![0x0Fu8; 256];
            gf16_mul_add_slice(c, &src, &mut got);
            assert_eq!(got, want, "axpy c={c}");
        }
    }

    #[test]
    fn tails_and_odd_lengths_match_reference() {
        let src: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(37)).collect();
        for len in [0usize, 1, 3, 7, 8, 9, 15, 17, 63] {
            let mut want = vec![0x33u8; len];
            crate::reference::gf256_mul_add_slice(0x1D, &src[..len], &mut want);
            let mut got = vec![0x33u8; len];
            gf256_mul_add_slice(0x1D, &src[..len], &mut got);
            assert_eq!(got, want, "len={len}");
        }
    }
}
