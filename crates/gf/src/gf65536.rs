//! GF(2¹⁶): the 65536-element binary extension field.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::field::Field;
use crate::slab::{xor_slice, SlabField};

/// Reduction polynomial x¹⁶ + x¹² + x³ + x + 1 (0x1100B), primitive.
const POLY: u32 = 0x1_100B;

/// An element of GF(2¹⁶): one 16-bit word.
///
/// Multiplication uses carry-less (Russian-peasant) multiplication with
/// interleaved reduction — 16 shift/xor steps, no tables — and inversion uses
/// Fermat's little theorem (`a⁻¹ = a^(2¹⁶−2)`). This keeps the type
/// allocation-free while still being fast enough for simulation workloads
/// where GF(2¹⁶) appears only in the field-size ablation.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf65536};
///
/// let a = Gf65536::new(0x1234);
/// assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf65536(u16);

impl Gf65536 {
    /// Creates an element from a 16-bit word.
    #[must_use]
    pub fn new(v: u16) -> Self {
        Gf65536(v)
    }

    /// The raw 16-bit value.
    #[must_use]
    pub fn value(self) -> u16 {
        self.0
    }
}

/// Carry-less multiply of two 16-bit polynomials, reduced mod POLY.
fn clmul_reduce(a: u16, b: u16) -> u16 {
    let mut a = u32::from(a);
    let mut b = u32::from(b);
    let mut p: u32 = 0;
    while b != 0 {
        if b & 1 == 1 {
            p ^= a;
        }
        a <<= 1;
        if a & 0x1_0000 != 0 {
            a ^= POLY;
        }
        b >>= 1;
    }
    debug_assert!(p < 0x1_0000);
    p as u16
}

impl Field for Gf65536 {
    const ZERO: Self = Gf65536(0);
    const ONE: Self = Gf65536(1);
    const SIZE: u64 = 65536;

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        // a^(q-2) = a^65534 by Fermat.
        Some(self.pow(65534))
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf65536(rng.gen::<u16>())
    }

    fn from_u64(v: u64) -> Self {
        Gf65536((v & 0xFFFF) as u16)
    }

    fn to_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl SlabField for Gf65536 {
    const SYMBOL_BYTES: usize = 2;

    fn write_symbol(self, dst: &mut [u8]) {
        dst[..2].copy_from_slice(&self.0.to_le_bytes());
    }

    fn read_symbol(src: &[u8]) -> Self {
        Gf65536(u16::from_le_bytes([src[0], src[1]]))
    }

    // Addition is XOR on the little-endian packing; multiplication stays on
    // the scalar clmul fallback (GF(2^16) only appears in the field-size
    // ablation, never on the throughput-critical configurations).
    fn add_slice(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
        assert!(
            dst.len().is_multiple_of(Self::SYMBOL_BYTES),
            "slab length {} is not a multiple of the 2-byte symbol size",
            dst.len()
        );
        xor_slice(src, dst);
    }
}

impl fmt::Display for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

impl Add for Gf65536 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf65536 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf65536 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf65536 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf65536 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Gf65536(clmul_reduce(self.0, rhs.0))
    }
}

impl MulAssign for Gf65536 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Gf65536 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl From<u16> for Gf65536 {
    fn from(v: u16) -> Self {
        Gf65536(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn multiplication_by_x_shifts() {
        // 2 = x; multiplying x^14 by x gives x^15 with no reduction.
        assert_eq!(
            Gf65536::new(1 << 14) * Gf65536::new(2),
            Gf65536::new(1 << 15)
        );
        // x^15 * x = x^16 = x^12 + x^3 + x + 1 (mod POLY).
        assert_eq!(
            Gf65536::new(1 << 15) * Gf65536::new(2),
            Gf65536::new(0x100B)
        );
    }

    #[test]
    fn random_elements_invert() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let a = Gf65536::random_nonzero(&mut rng);
            let ai = a.inv().expect("nonzero inverts");
            assert_eq!(a * ai, Gf65536::ONE);
        }
        assert!(Gf65536::ZERO.inv().is_none());
    }

    #[test]
    fn fermat_order_divides_group_order() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..20 {
            let a = Gf65536::random_nonzero(&mut rng);
            assert_eq!(a.pow(65535), Gf65536::ONE);
        }
    }

    #[test]
    fn distributes_over_addition_spot_check() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..100 {
            let a = Gf65536::random(&mut rng);
            let b = Gf65536::random(&mut rng);
            let c = Gf65536::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }
}
