//! The binary field GF(2).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::field::Field;
use crate::slab::{xor_slice, SlabField};

/// An element of GF(2): a single bit.
///
/// This is the paper's worst-case field — the helpfulness probability of a
/// random linear combination is only `1 − 1/q = 1/2`, which is exactly the
/// constant the proofs of Theorems 1 and 4 assume (`p = 1/(2nΔ)` and
/// `p = 1/(2n)` respectively).
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf2};
///
/// assert_eq!(Gf2::ONE + Gf2::ONE, Gf2::ZERO); // XOR
/// assert_eq!(Gf2::ONE * Gf2::ONE, Gf2::ONE);  // AND
/// assert_eq!(Gf2::ONE.inv(), Some(Gf2::ONE));
/// assert_eq!(Gf2::ZERO.inv(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf2(u8);

impl Gf2 {
    /// Creates an element from a bit; only the lowest bit of `v` is kept.
    #[must_use]
    pub fn new(v: u8) -> Self {
        Gf2(v & 1)
    }

    /// The raw bit (0 or 1).
    #[must_use]
    pub fn bit(self) -> u8 {
        self.0
    }
}

impl Field for Gf2 {
    const ZERO: Self = Gf2(0);
    const ONE: Self = Gf2(1);
    const SIZE: u64 = 2;

    fn inv(self) -> Option<Self> {
        if self.0 == 1 {
            Some(self)
        } else {
            None
        }
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf2(rng.gen::<u8>() & 1)
    }

    fn random_nonzero<R: Rng + ?Sized>(_rng: &mut R) -> Self {
        // The only nonzero element.
        Gf2(1)
    }

    fn from_u64(v: u64) -> Self {
        Gf2((v & 1) as u8)
    }

    fn to_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl SlabField for Gf2 {
    const SYMBOL_BYTES: usize = 1;

    fn write_symbol(self, dst: &mut [u8]) {
        dst[0] = self.0;
    }

    fn read_symbol(src: &[u8]) -> Self {
        Gf2(src[0] & 1)
    }

    // GF(2) slabs are pure XOR: the only coefficients are 0 and 1, so an
    // axpy either vanishes or degenerates to `dst ^= src`.
    fn add_slice(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
        xor_slice(src, dst);
    }

    fn mul_slice(c: Self, dst: &mut [u8]) {
        if c.is_zero() {
            dst.fill(0);
        }
    }

    fn mul_add_slice(c: Self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
        if !c.is_zero() {
            xor_slice(src, dst);
        }
    }
}

impl fmt::Display for Gf2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Gf2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf2(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf2 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is addition.
        Gf2(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf2 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Gf2(self.0 & rhs.0)
    }
}

impl MulAssign for Gf2 {
    fn mul_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl Neg for Gf2 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl From<bool> for Gf2 {
    fn from(b: bool) -> Self {
        Gf2(u8::from(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_masks_to_one_bit() {
        assert_eq!(Gf2::new(0), Gf2::ZERO);
        assert_eq!(Gf2::new(1), Gf2::ONE);
        assert_eq!(Gf2::new(2), Gf2::ZERO);
        assert_eq!(Gf2::new(0xFF), Gf2::ONE);
    }

    #[test]
    fn xor_addition_table() {
        assert_eq!(Gf2::ZERO + Gf2::ZERO, Gf2::ZERO);
        assert_eq!(Gf2::ZERO + Gf2::ONE, Gf2::ONE);
        assert_eq!(Gf2::ONE + Gf2::ZERO, Gf2::ONE);
        assert_eq!(Gf2::ONE + Gf2::ONE, Gf2::ZERO);
    }

    #[test]
    fn and_multiplication_table() {
        assert_eq!(Gf2::ZERO * Gf2::ZERO, Gf2::ZERO);
        assert_eq!(Gf2::ZERO * Gf2::ONE, Gf2::ZERO);
        assert_eq!(Gf2::ONE * Gf2::ONE, Gf2::ONE);
    }

    #[test]
    fn negation_is_identity_in_char_2() {
        assert_eq!(-Gf2::ONE, Gf2::ONE);
        assert_eq!(-Gf2::ZERO, Gf2::ZERO);
    }

    #[test]
    fn from_bool() {
        assert_eq!(Gf2::from(true), Gf2::ONE);
        assert_eq!(Gf2::from(false), Gf2::ZERO);
    }

    #[test]
    fn display_is_bit() {
        assert_eq!(Gf2::ONE.to_string(), "1");
        assert_eq!(Gf2::ZERO.to_string(), "0");
    }
}
