//! GF(2⁸): the 256-element binary extension field with log/exp tables.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::kernel::Kernel;
use crate::slab::{xor_slice, SlabField};

/// Reduction polynomial x⁸ + x⁴ + x³ + x + 1 (0x11B, the AES polynomial).
const POLY: u16 = 0x11B;
/// 0x03 = x + 1 is a generator of the multiplicative group for 0x11B.
const GENERATOR: u8 = 0x03;

/// An element of GF(2⁸): one byte.
///
/// This is the practical default for RLNC — symbols align with bytes, the
/// redundancy probability is only `1/256`, and multiplication is two table
/// lookups. The tables are built lazily on first use and shared process-wide.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
///
/// // The classic AES test vector: 0x57 * 0x83 = 0xC1.
/// assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xC1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

struct Tables {
    /// exp[i] = g^i for i in 0..255 (extended to 510 to skip a mod).
    exp: [u8; 512],
    /// log[v] = i such that g^i = v, for v in 1..=255. log[0] unused.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut acc: u16 = 1;
        for i in 0..255u16 {
            exp[i as usize] = acc as u8;
            log[acc as usize] = i;
            // Multiply acc by the generator (x + 1): acc*x + acc.
            acc = (acc << 1) ^ acc;
            if acc & 0x100 != 0 {
                acc ^= POLY;
            }
        }
        debug_assert_eq!(acc, 1, "generator must have order 255");
        // Extend so that exp[i + j] is valid for i, j <= 255 without a mod.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

impl Gf256 {
    /// Creates an element from a byte.
    #[must_use]
    pub fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// The raw byte value.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }

    /// The generator `g = x + 1` of the multiplicative group.
    #[must_use]
    pub fn generator() -> Self {
        Gf256(GENERATOR)
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const SIZE: u64 = 256;

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Some(Gf256(t.exp[255 - l]))
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf256(rng.gen::<u8>())
    }

    fn from_u64(v: u64) -> Self {
        Gf256((v & 0xFF) as u8)
    }

    fn to_u64(self) -> u64 {
        u64::from(self.0)
    }
}

/// The full 256×256 product table: `mul_table()[a][b] = a · b`.
///
/// 64 KiB, built once from the log/exp tables and shared process-wide. The
/// reference slab kernels index one 256-byte row per coefficient, turning
/// each symbol of an axpy into a single dependent load plus an XOR —
/// versus two table lookups, an add and a zero-test on the scalar log/exp
/// path. The wide rungs (`crate::wide`, `crate::simd`) replace the row
/// with per-multiplier 16-entry nibble tables instead.
pub(crate) fn mul_table() -> &'static [[u8; 256]; 256] {
    static FULL: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    FULL.get_or_init(|| {
        let mut full = Box::new([[0u8; 256]; 256]);
        for a in 0..=255u8 {
            let row = &mut full[a as usize];
            for (b, slot) in row.iter_mut().enumerate() {
                *slot = (Gf256(a) * Gf256(b as u8)).0;
            }
        }
        full
    })
}

impl SlabField for Gf256 {
    const SYMBOL_BYTES: usize = 1;

    fn write_symbol(self, dst: &mut [u8]) {
        dst[0] = self.0;
    }

    fn read_symbol(src: &[u8]) -> Self {
        Gf256(src[0])
    }

    fn add_slice(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
        xor_slice(src, dst);
    }

    fn mul_slice(c: Self, dst: &mut [u8]) {
        // Row-length routing (short rows → reference for table-build
        // amortization, long rows demote SWAR) lives in
        // `kernel::gf256_effective_kernel`; all rungs are bit-identical,
        // so this is a pure throughput decision.
        match crate::kernel::gf256_effective_kernel(Kernel::active(), dst.len()) {
            Kernel::Reference => crate::reference::gf256_mul_slice(c.0, dst),
            Kernel::Swar => crate::wide::gf256_mul_slice(c.0, dst),
            Kernel::Simd => crate::simd::gf256_mul_slice(c.0, dst),
        }
    }

    fn mul_add_slice(c: Self, src: &[u8], dst: &mut [u8]) {
        match crate::kernel::gf256_effective_kernel(Kernel::active(), dst.len()) {
            Kernel::Reference => crate::reference::gf256_mul_add_slice(c.0, src, dst),
            Kernel::Swar => crate::wide::gf256_mul_add_slice(c.0, src, dst),
            Kernel::Simd => crate::simd::gf256_mul_add_slice(c.0, src, dst),
        }
    }

    fn mul_add_multi(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        assert_eq!(
            srcs.len(),
            factors.len() * dst.len(),
            "srcs must hold exactly one row of dst.len() bytes per factor"
        );
        if dst.is_empty() || factors.is_empty() {
            return;
        }
        // Only the SIMD rung has a genuinely fused gather (GFNI keeps the
        // destination tile in registers across sources); reference and
        // SWAR loop single-row axpys, which is optimal for them because
        // their per-coefficient tables must be rebuilt per source anyway.
        match crate::kernel::gf256_effective_kernel(Kernel::active(), dst.len()) {
            Kernel::Simd => crate::simd::gf256_mul_add_multi(factors, srcs, dst),
            _ => {
                for (&f, row) in factors.iter().zip(srcs.chunks_exact(dst.len())) {
                    if f != 0 {
                        Self::mul_add_slice(Gf256(f), row, dst);
                    }
                }
            }
        }
    }

    fn mul_add_block(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], row_bytes: usize) {
        let (r, c) = crate::slab::check_block::<Self>(coefs, srcs, dsts, row_bytes);
        if r == 0 || c == 0 {
            return;
        }
        // Only the SIMD rung has a genuinely blocked panel kernel (GFNI
        // reuses each loaded source vector across a register panel of
        // destination accumulators). Reference and SWAR fall back to the
        // per-destination gather loop — for them the panel cannot beat the
        // gather, since their per-coefficient tables are rebuilt per
        // (i, j) product either way.
        match crate::kernel::gf256_effective_kernel(Kernel::active(), row_bytes) {
            Kernel::Simd => crate::simd::gf256_mul_add_block(coefs, srcs, dsts, row_bytes),
            _ => {
                for (panel_row, dst) in coefs.chunks_exact(c).zip(dsts.chunks_exact_mut(row_bytes))
                {
                    Self::mul_add_multi(panel_row, srcs, dst);
                }
            }
        }
    }

    fn mul_add_scatter(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        assert_eq!(
            dsts.len(),
            factors.len() * src.len(),
            "dsts must hold exactly one row of src.len() bytes per factor"
        );
        if src.is_empty() || factors.is_empty() {
            return;
        }
        // The SIMD rung hoists the kernel dispatch and constant splat out
        // of the per-row loop — back-substitution scatters one short pivot
        // row onto every stored row, where per-row dispatch would dominate.
        match crate::kernel::gf256_effective_kernel(Kernel::active(), src.len()) {
            Kernel::Simd => crate::simd::gf256_mul_add_scatter(factors, src, dsts),
            _ => {
                for (&f, row) in factors.iter().zip(dsts.chunks_exact_mut(src.len())) {
                    if f != 0 {
                        Self::mul_add_slice(Gf256(f), src, row);
                    }
                }
            }
        }
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl Add for Gf256 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf256 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[idx])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Gf256 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_reference_products() {
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xC1));
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x13), Gf256::new(0xFE));
        assert_eq!(Gf256::new(0x02) * Gf256::new(0x87), Gf256::new(0x15));
    }

    #[test]
    fn all_nonzero_elements_invert() {
        for v in 1..=255u8 {
            let a = Gf256::new(v);
            assert_eq!(a * a.inv().unwrap(), Gf256::ONE, "v = {v}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf256::generator();
        let mut acc = Gf256::ONE;
        for i in 1..255u32 {
            acc *= g;
            assert_ne!(acc, Gf256::ONE, "premature cycle at {i}");
        }
        assert_eq!(acc * g, Gf256::ONE);
    }

    #[test]
    fn mul_matches_slow_carryless_reference() {
        // Cross-check the table-based product against a bitwise reference.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p: u16 = 0;
            while b != 0 {
                if b & 1 == 1 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            p as u8
        }
        for a in (0..=255u16).step_by(7) {
            for b in (0..=255u16).step_by(11) {
                assert_eq!(
                    (Gf256::new(a as u8) * Gf256::new(b as u8)).value(),
                    slow_mul(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn pow_fermat_identity() {
        // a^255 = 1 for a != 0 (Fermat's little theorem for GF(2^8)).
        for v in [1u8, 2, 3, 0x57, 0xAB, 0xFF] {
            assert_eq!(Gf256::new(v).pow(255), Gf256::ONE);
        }
    }
}
