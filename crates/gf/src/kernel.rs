//! Runtime kernel selection for the bulk slab operations.
//!
//! PR 2 made the [`crate::slab`] row primitives table-driven; this module
//! makes the *implementation* of those primitives a runtime choice between
//! three rungs of a ladder, so the old path survives unchanged for
//! differential testing and benchmarking while the hot path runs as fast as
//! the hardware allows:
//!
//! | rung | module | technique |
//! |---|---|---|
//! | [`Kernel::Reference`] | [`crate::reference`] | the PR 2 byte-at-a-time product-table kernels, preserved verbatim |
//! | [`Kernel::Swar`] | [`crate::wide`] | split-nibble SWAR: per-multiplier 16-entry lo/hi nibble tables applied 8 bytes at a time through `u64` words (the scalar emulation of `PSHUFB`) |
//! | [`Kernel::Simd`] | [`crate::simd`] | the same nibble tables through real `PSHUFB` (SSSE3/AVX2) or, for GF(2⁸), the `GF2P8MULB` instruction (GFNI) — x86-64 only, runtime-detected |
//!
//! GF(2) addition/axpy is a pure `u64` XOR on every rung and is not
//! dispatched. All rungs are bit-identical by construction (multiplication
//! by a constant is GF(2)-linear, and every rung evaluates the same linear
//! map); the `proptest_kernels` suite pins them to each other and to the
//! scalar [`crate::Field`] arithmetic on every field.
//!
//! # Selection
//!
//! The active kernel is resolved once, on first use:
//!
//! 1. an explicit [`set_kernel`] call wins (benchmarks use this to time
//!    each rung in isolation),
//! 2. else the `AG_GF_KERNEL` environment variable (`reference`, `swar`,
//!    `simd`, or `auto`),
//! 3. else the best rung the CPU supports ([`Kernel::detect_best`]).
//!
//! Selection is process-global and may be changed at any time; all rungs
//! compute identical results, so switching mid-run affects throughput only.

use std::sync::atomic::{AtomicU8, Ordering};

/// One rung of the slab-kernel ladder. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The PR 2 byte-at-a-time product-table kernels ([`crate::reference`]).
    Reference,
    /// Portable SWAR split-nibble kernels over `u64` words ([`crate::wide`]).
    Swar,
    /// Runtime-detected x86-64 SIMD (`PSHUFB` / `GF2P8MULB`,
    /// [`crate::simd`]); falls back to [`Kernel::Swar`] elsewhere.
    Simd,
}

/// Rows shorter than this dispatch straight to the reference kernel
/// regardless of the active rung: the wide rungs pay a per-multiplier
/// nibble-table build (~30 scalar products) that only amortizes over
/// longer rows, while the reference kernel just indexes a prebuilt
/// 256-byte product row. Every rung computes identical bytes, so the
/// cutoff is invisible to results — it exists purely so rank-only
/// simulations (rows of `k` bytes) keep their PR 2 throughput.
pub const SHORT_ROW_BYTES: usize = 64;

/// GF(2⁸) rows at least this long route the [`Kernel::Swar`] rung to the
/// reference product-table kernel — and the threshold is **zero**: the
/// demotion is unconditional. The `bench_gf_block` single-row axpy sweep
/// shows split-nibble SWAR losing to the prebuilt product table at *every*
/// GF(2⁸) row length on the bench machine (swar/reference 0.52 at 64 B,
/// 0.77 at the 1 KiB decode shape, 0.73 at 4 KiB, 0.86 at 1 MiB): the
/// per-multiplier nibble-table build never amortizes against a kernel that
/// just indexes a 256-byte product row. The earlier 4096-byte cutoff —
/// tuned from an end-to-end decode number that bundled the old row-at-a-
/// time replay — left the 1 KiB bench shape on SWAR, decoding at 79.96 vs
/// 126.42 MiB/s reference. All rungs are bit-identical, so the routing is
/// invisible to results; forcing `Kernel::Swar` remains meaningful for
/// GF(2⁴), where SWAR beats reference on every measured shape (raw axpy
/// 3658 vs 2060 MiB/s), and for the proptest lanes that pin the SWAR code
/// paths directly.
pub const GF256_SWAR_LONG_ROW_BYTES: usize = 0;

/// The rung a GF(2⁸) bulk operation over `row_bytes` actually executes
/// when `active` is the selected kernel. This is the single routing
/// decision both [`crate::Gf256`] slab ops and the pinning tests consult:
/// short rows always take reference (table-build amortization), and long
/// rows demote [`Kernel::Swar`] to reference per
/// [`GF256_SWAR_LONG_ROW_BYTES`].
#[must_use]
pub fn gf256_effective_kernel(active: Kernel, row_bytes: usize) -> Kernel {
    let short = row_bytes < SHORT_ROW_BYTES;
    // With the threshold at zero every SWAR row demotes; written as a
    // saturating comparison so a re-tuned nonzero cutoff needs no code
    // change here.
    let swar_demoted =
        active == Kernel::Swar && row_bytes.saturating_add(1) > GF256_SWAR_LONG_ROW_BYTES;
    if short || swar_demoted {
        Kernel::Reference
    } else {
        active
    }
}

/// `ACTIVE` sentinel: not yet resolved.
const UNSET: u8 = u8::MAX;

/// The resolved kernel, or [`UNSET`].
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

impl Kernel {
    /// All rungs, slowest first — the order benchmark ladders report.
    pub const LADDER: [Kernel; 3] = [Kernel::Reference, Kernel::Swar, Kernel::Simd];

    /// The kernel every [`crate::SlabField`] bulk operation currently
    /// dispatches to.
    #[must_use]
    pub fn active() -> Kernel {
        match ACTIVE.load(Ordering::Relaxed) {
            UNSET => {
                let k = Self::resolve();
                ACTIVE.store(k as u8, Ordering::Relaxed);
                k
            }
            v => Self::from_u8(v),
        }
    }

    /// The fastest rung this CPU supports: [`Kernel::Simd`] when the
    /// required instruction sets are present, else [`Kernel::Swar`].
    #[must_use]
    pub fn detect_best() -> Kernel {
        if Kernel::Simd.is_supported() {
            Kernel::Simd
        } else {
            Kernel::Swar
        }
    }

    /// Can this rung run on the current CPU? `Reference` and `Swar` are
    /// portable; `Simd` needs x86-64 with at least SSSE3.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Reference | Kernel::Swar => true,
            Kernel::Simd => crate::simd::supported(),
        }
    }

    /// The rung's lower-case name (`reference` / `swar` / `simd`), as
    /// accepted by the `AG_GF_KERNEL` environment variable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Swar => "swar",
            Kernel::Simd => "simd",
        }
    }

    /// Parses a rung name; `None` for anything unknown (including `auto`,
    /// which callers map to [`Kernel::detect_best`]).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Some(Kernel::Reference),
            "swar" => Some(Kernel::Swar),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Kernel {
        match v {
            0 => Kernel::Reference,
            1 => Kernel::Swar,
            _ => Kernel::Simd,
        }
    }

    /// First-use resolution: environment override, else detection. An
    /// unsupported or unknown `AG_GF_KERNEL` value falls back to detection
    /// rather than erroring — a simulation should not abort over a typo'd
    /// tuning knob — but an unknown value is reported once on stderr so it
    /// does not silently benchmark the wrong rung.
    fn resolve() -> Kernel {
        // ag-lint: allow(wall-clock) — AG_GF_KERNEL picks which proven-
        // bit-identical rung runs; resolved once per process at first use,
        // so the choice cannot vary mid-simulation.
        if let Ok(v) = std::env::var("AG_GF_KERNEL") {
            let (forced, warning) = classify_env_value(&v);
            if let Some(w) = warning {
                WARN_UNKNOWN_ENV.call_once(|| eprintln!("{w}"));
            }
            if let Some(k) = forced {
                if k.is_supported() {
                    return k;
                }
            }
        }
        Self::detect_best()
    }
}

/// Emits the unknown-`AG_GF_KERNEL` warning at most once per process.
static WARN_UNKNOWN_ENV: std::sync::Once = std::sync::Once::new();

/// Classifies an `AG_GF_KERNEL` value for first-use resolution: the
/// forced rung (`None` = fall through to detection) plus a warning line
/// for stderr when the value is unknown. `auto` is a sanctioned spelling
/// of "detect", never a typo. Split from the resolver so the warning
/// path is testable without mutating the process environment.
#[must_use]
pub fn classify_env_value(v: &str) -> (Option<Kernel>, Option<String>) {
    match Kernel::from_name(v) {
        Some(k) => (Some(k), None),
        None if v.eq_ignore_ascii_case("auto") => (None, None),
        None => (
            None,
            Some(format!(
                "ag-gf: unknown AG_GF_KERNEL value `{v}` \
                 (expected reference/swar/simd/auto); falling back to detection"
            )),
        ),
    }
}

/// Forces the active kernel for the whole process (used by the benchmark
/// bins to time each rung in isolation). Unsupported rungs are clamped to
/// [`Kernel::detect_best`]. Returns the kernel actually installed.
pub fn set_kernel(kernel: Kernel) -> Kernel {
    let k = if kernel.is_supported() {
        kernel
    } else {
        Kernel::detect_best()
    };
    ACTIVE.store(k as u8, Ordering::Relaxed);
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in Kernel::LADDER {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("REFERENCE"), Some(Kernel::Reference));
        assert_eq!(Kernel::from_name("auto"), None);
        assert_eq!(Kernel::from_name("nonsense"), None);
    }

    #[test]
    fn env_classification_warns_on_typos_but_not_auto() {
        for k in Kernel::LADDER {
            assert_eq!(classify_env_value(k.name()), (Some(k), None));
        }
        assert_eq!(
            classify_env_value("AUTO"),
            (None, None),
            "auto means detect, never a typo"
        );
        let (forced, warning) = classify_env_value("svar");
        assert_eq!(forced, None, "typos fall back to detection");
        let warning = warning.expect("unknown values must warn");
        assert!(warning.contains("AG_GF_KERNEL"), "{warning}");
        assert!(warning.contains("`svar`"), "{warning}");
    }

    #[test]
    fn portable_rungs_always_supported() {
        assert!(Kernel::Reference.is_supported());
        assert!(Kernel::Swar.is_supported());
    }

    #[test]
    fn detect_best_is_supported() {
        assert!(Kernel::detect_best().is_supported());
    }

    #[test]
    fn active_resolves_to_a_supported_kernel() {
        assert!(Kernel::active().is_supported());
    }

    #[test]
    fn gf256_swar_is_demoted_at_every_row_length() {
        // The bench_gf_block axpy sweep shows SWAR losing to the reference
        // product table at every GF(2⁸) row length (64 B through 1 MiB),
        // so the demotion is unconditional: no bulk GF(2⁸) op ever runs
        // the SWAR rung, under an explicit Swar selection and a fortiori
        // under auto-detect. This pins the boundary at zero — the decode
        // bench shape (1 KiB rows) regressed under the old 4096-byte
        // cutoff (79.96 vs 126.42 MiB/s).
        assert_eq!(
            GF256_SWAR_LONG_ROW_BYTES, 0,
            "demotion must be unconditional"
        );
        for row_bytes in [
            1usize,
            SHORT_ROW_BYTES - 1,
            SHORT_ROW_BYTES,
            1024,
            1152,
            4096,
            1 << 20,
        ] {
            assert_eq!(
                gf256_effective_kernel(Kernel::Swar, row_bytes),
                Kernel::Reference,
                "gf256 rows of {row_bytes} bytes must not run SWAR"
            );
        }
        // The other rungs are untouched by the SWAR demotion.
        assert_eq!(gf256_effective_kernel(Kernel::Simd, 1 << 20), Kernel::Simd);
        assert_eq!(
            gf256_effective_kernel(Kernel::Reference, 1024),
            Kernel::Reference
        );
        // Short rows keep the PR 2 reference path on every rung.
        assert_eq!(
            gf256_effective_kernel(Kernel::Simd, SHORT_ROW_BYTES - 1),
            Kernel::Reference
        );
    }
}
