//! Runtime kernel selection for the bulk slab operations.
//!
//! PR 2 made the [`crate::slab`] row primitives table-driven; this module
//! makes the *implementation* of those primitives a runtime choice between
//! three rungs of a ladder, so the old path survives unchanged for
//! differential testing and benchmarking while the hot path runs as fast as
//! the hardware allows:
//!
//! | rung | module | technique |
//! |---|---|---|
//! | [`Kernel::Reference`] | [`crate::reference`] | the PR 2 byte-at-a-time product-table kernels, preserved verbatim |
//! | [`Kernel::Swar`] | [`crate::wide`] | split-nibble SWAR: per-multiplier 16-entry lo/hi nibble tables applied 8 bytes at a time through `u64` words (the scalar emulation of `PSHUFB`) |
//! | [`Kernel::Simd`] | [`crate::simd`] | the same nibble tables through real `PSHUFB` (SSSE3/AVX2) or, for GF(2⁸), the `GF2P8MULB` instruction (GFNI) — x86-64 only, runtime-detected |
//!
//! GF(2) addition/axpy is a pure `u64` XOR on every rung and is not
//! dispatched. All rungs are bit-identical by construction (multiplication
//! by a constant is GF(2)-linear, and every rung evaluates the same linear
//! map); the `proptest_kernels` suite pins them to each other and to the
//! scalar [`crate::Field`] arithmetic on every field.
//!
//! # Selection
//!
//! The active kernel is resolved once, on first use:
//!
//! 1. an explicit [`set_kernel`] call wins (benchmarks use this to time
//!    each rung in isolation),
//! 2. else the `AG_GF_KERNEL` environment variable (`reference`, `swar`,
//!    `simd`, or `auto`),
//! 3. else the best rung the CPU supports ([`Kernel::detect_best`]).
//!
//! Selection is process-global and may be changed at any time; all rungs
//! compute identical results, so switching mid-run affects throughput only.

use std::sync::atomic::{AtomicU8, Ordering};

/// One rung of the slab-kernel ladder. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The PR 2 byte-at-a-time product-table kernels ([`crate::reference`]).
    Reference,
    /// Portable SWAR split-nibble kernels over `u64` words ([`crate::wide`]).
    Swar,
    /// Runtime-detected x86-64 SIMD (`PSHUFB` / `GF2P8MULB`,
    /// [`crate::simd`]); falls back to [`Kernel::Swar`] elsewhere.
    Simd,
}

/// Rows shorter than this dispatch straight to the reference kernel
/// regardless of the active rung: the wide rungs pay a per-multiplier
/// nibble-table build (~30 scalar products) that only amortizes over
/// longer rows, while the reference kernel just indexes a prebuilt
/// 256-byte product row. Every rung computes identical bytes, so the
/// cutoff is invisible to results — it exists purely so rank-only
/// simulations (rows of `k` bytes) keep their PR 2 throughput.
pub const SHORT_ROW_BYTES: usize = 64;

/// GF(2⁸) rows at least this long route the [`Kernel::Swar`] rung to the
/// reference product-table kernel. Measured on the bench machine, SWAR
/// loses the raw streaming axpy to reference at every length from 4 KiB up
/// (1 MiB: 1853 vs 2441 MiB/s, the BENCH_rlnc_throughput.json regression
/// this cutoff fixes), while decode-sized rows (~1–2 KiB, L1-resident) keep
/// SWAR, which is ahead end-to-end there (10.52 vs 11.34 ms/decode in the
/// same report) and is the only wide rung non-x86 hosts have. All rungs
/// are bit-identical, so the routing is invisible to results.
///
/// GF(2⁴) is unaffected: split-nibble SWAR beats the reference kernel on
/// every measured GF(2⁴) shape (raw axpy 3658 vs 2060 MiB/s).
pub const GF256_SWAR_LONG_ROW_BYTES: usize = 4096;

/// The rung a GF(2⁸) bulk operation over `row_bytes` actually executes
/// when `active` is the selected kernel. This is the single routing
/// decision both [`crate::Gf256`] slab ops and the pinning tests consult:
/// short rows always take reference (table-build amortization), and long
/// rows demote [`Kernel::Swar`] to reference per
/// [`GF256_SWAR_LONG_ROW_BYTES`].
#[must_use]
pub fn gf256_effective_kernel(active: Kernel, row_bytes: usize) -> Kernel {
    let short = row_bytes < SHORT_ROW_BYTES;
    let swar_demoted = active == Kernel::Swar && row_bytes >= GF256_SWAR_LONG_ROW_BYTES;
    if short || swar_demoted {
        Kernel::Reference
    } else {
        active
    }
}

/// `ACTIVE` sentinel: not yet resolved.
const UNSET: u8 = u8::MAX;

/// The resolved kernel, or [`UNSET`].
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

impl Kernel {
    /// All rungs, slowest first — the order benchmark ladders report.
    pub const LADDER: [Kernel; 3] = [Kernel::Reference, Kernel::Swar, Kernel::Simd];

    /// The kernel every [`crate::SlabField`] bulk operation currently
    /// dispatches to.
    #[must_use]
    pub fn active() -> Kernel {
        match ACTIVE.load(Ordering::Relaxed) {
            UNSET => {
                let k = Self::resolve();
                ACTIVE.store(k as u8, Ordering::Relaxed);
                k
            }
            v => Self::from_u8(v),
        }
    }

    /// The fastest rung this CPU supports: [`Kernel::Simd`] when the
    /// required instruction sets are present, else [`Kernel::Swar`].
    #[must_use]
    pub fn detect_best() -> Kernel {
        if Kernel::Simd.is_supported() {
            Kernel::Simd
        } else {
            Kernel::Swar
        }
    }

    /// Can this rung run on the current CPU? `Reference` and `Swar` are
    /// portable; `Simd` needs x86-64 with at least SSSE3.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Reference | Kernel::Swar => true,
            Kernel::Simd => crate::simd::supported(),
        }
    }

    /// The rung's lower-case name (`reference` / `swar` / `simd`), as
    /// accepted by the `AG_GF_KERNEL` environment variable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Swar => "swar",
            Kernel::Simd => "simd",
        }
    }

    /// Parses a rung name; `None` for anything unknown (including `auto`,
    /// which callers map to [`Kernel::detect_best`]).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Some(Kernel::Reference),
            "swar" => Some(Kernel::Swar),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Kernel {
        match v {
            0 => Kernel::Reference,
            1 => Kernel::Swar,
            _ => Kernel::Simd,
        }
    }

    /// First-use resolution: environment override, else detection. An
    /// unsupported or unknown `AG_GF_KERNEL` value falls back to detection
    /// rather than erroring — a simulation should not abort over a typo'd
    /// tuning knob.
    fn resolve() -> Kernel {
        // ag-lint: allow(wall-clock) — AG_GF_KERNEL picks which proven-
        // bit-identical rung runs; resolved once per process at first use,
        // so the choice cannot vary mid-simulation.
        if let Ok(v) = std::env::var("AG_GF_KERNEL") {
            if let Some(k) = Kernel::from_name(&v) {
                if k.is_supported() {
                    return k;
                }
            }
        }
        Self::detect_best()
    }
}

/// Forces the active kernel for the whole process (used by the benchmark
/// bins to time each rung in isolation). Unsupported rungs are clamped to
/// [`Kernel::detect_best`]. Returns the kernel actually installed.
pub fn set_kernel(kernel: Kernel) -> Kernel {
    let k = if kernel.is_supported() {
        kernel
    } else {
        Kernel::detect_best()
    };
    ACTIVE.store(k as u8, Ordering::Relaxed);
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in Kernel::LADDER {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("REFERENCE"), Some(Kernel::Reference));
        assert_eq!(Kernel::from_name("auto"), None);
        assert_eq!(Kernel::from_name("nonsense"), None);
    }

    #[test]
    fn portable_rungs_always_supported() {
        assert!(Kernel::Reference.is_supported());
        assert!(Kernel::Swar.is_supported());
    }

    #[test]
    fn detect_best_is_supported() {
        assert!(Kernel::detect_best().is_supported());
    }

    #[test]
    fn active_resolves_to_a_supported_kernel() {
        assert!(Kernel::active().is_supported());
    }

    #[test]
    fn long_gf256_rows_never_run_swar() {
        // The measured shapes from BENCH_rlnc_throughput.json: SWAR loses
        // the 1 MiB streaming axpy to reference, so routing must demote it
        // there — under an explicit Swar selection and a fortiori under
        // auto-detect, which never picks a rung slower than reference on
        // these shapes.
        for k in Kernel::LADDER {
            let eff = gf256_effective_kernel(k, 1 << 20);
            assert_ne!(eff, Kernel::Swar, "1 MiB gf256 rows must not run SWAR");
        }
        assert_eq!(
            gf256_effective_kernel(Kernel::Swar, GF256_SWAR_LONG_ROW_BYTES),
            Kernel::Reference
        );
        // Decode-sized rows (k=128, 1 KiB payloads → 1152 bytes) keep the
        // selected rung: SWAR wins end-to-end there.
        assert_eq!(gf256_effective_kernel(Kernel::Swar, 1152), Kernel::Swar);
        assert_eq!(gf256_effective_kernel(Kernel::Simd, 1 << 20), Kernel::Simd);
        // Short rows keep the PR 2 reference path on every rung.
        assert_eq!(
            gf256_effective_kernel(Kernel::Simd, SHORT_ROW_BYTES - 1),
            Kernel::Reference
        );
    }
}
