//! Conversions between byte streams and field-symbol vectors.
//!
//! The paper represents each initial message as an integer bounded by `M`,
//! i.e. a vector of `r = ⌈log_q M⌉` symbols over `F_q`. This module provides
//! the framing used by the examples and the end-to-end integrity tests:
//! arbitrary bytes in, symbols over the chosen field out, and back.
//!
//! For GF(2⁸) the mapping is the identity on bytes. For smaller fields each
//! byte expands into several symbols; for larger fields several bytes pack
//! into one symbol. Round-tripping requires remembering the original byte
//! length because of padding ([`symbols_to_bytes`] takes it explicitly).

use crate::field::Field;

/// How many field symbols are needed to carry one byte (for sub-byte
/// fields), or `1` otherwise.
fn symbols_per_byte<F: Field>() -> usize {
    match F::SIZE {
        2 => 8,
        4 => 4,
        16 => 2,
        _ => 1,
    }
}

/// How many whole bytes one symbol can carry (for super-byte fields).
fn bytes_per_symbol<F: Field>() -> usize {
    if F::SIZE >= 65536 {
        2
    } else {
        1
    }
}

/// Number of symbols produced by [`bytes_to_symbols`] for `len` bytes.
///
/// # Examples
///
/// ```
/// use ag_gf::{Gf2, Gf256, Gf65536};
/// use ag_gf::symbols::symbol_len;
///
/// assert_eq!(symbol_len::<Gf256>(10), 10);
/// assert_eq!(symbol_len::<Gf2>(10), 80);
/// assert_eq!(symbol_len::<Gf65536>(10), 5);
/// ```
#[must_use]
pub fn symbol_len<F: Field>(len: usize) -> usize {
    let spb = symbols_per_byte::<F>();
    if spb > 1 {
        len * spb
    } else {
        let bps = bytes_per_symbol::<F>();
        len.div_ceil(bps)
    }
}

/// Encodes a byte slice as a vector of field symbols.
///
/// The encoding is big-endian within each byte/symbol group and pads the
/// final symbol with zero bits when the field packs multiple bytes.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_gf::symbols::{bytes_to_symbols, symbols_to_bytes};
///
/// let data = b"gossip";
/// let syms = bytes_to_symbols::<Gf256>(data);
/// assert_eq!(symbols_to_bytes::<Gf256>(&syms, data.len()), data);
/// ```
#[must_use]
pub fn bytes_to_symbols<F: Field>(bytes: &[u8]) -> Vec<F> {
    let spb = symbols_per_byte::<F>();
    if spb > 1 {
        // Sub-byte field: split each byte into big-endian chunks.
        let bits = match F::SIZE {
            2 => 1,
            4 => 2,
            16 => 4,
            // ag-lint: allow(panic-policy) — spb > 1 only for the three
            // sub-byte field sizes matched above.
            _ => unreachable!("symbols_per_byte covered these"),
        };
        let mask = (1u16 << bits) - 1;
        let mut out = Vec::with_capacity(bytes.len() * spb);
        for &b in bytes {
            for i in (0..spb).rev() {
                let chunk = (u16::from(b) >> (i * bits as usize)) & mask;
                out.push(F::from_u64(u64::from(chunk)));
            }
        }
        out
    } else {
        let bps = bytes_per_symbol::<F>();
        let mut out = Vec::with_capacity(bytes.len().div_ceil(bps));
        for group in bytes.chunks(bps) {
            let mut v: u64 = 0;
            for (i, &b) in group.iter().enumerate() {
                v |= u64::from(b) << (8 * (bps - 1 - i));
            }
            out.push(F::from_u64(v));
        }
        out
    }
}

/// Decodes a symbol vector back into `byte_len` bytes.
///
/// `byte_len` is the length of the original input to [`bytes_to_symbols`];
/// it disambiguates padding in the final symbol.
///
/// # Panics
///
/// Panics if `symbols` is too short to contain `byte_len` bytes.
#[must_use]
pub fn symbols_to_bytes<F: Field>(symbols: &[F], byte_len: usize) -> Vec<u8> {
    assert!(
        symbols.len() >= symbol_len::<F>(byte_len),
        "symbol vector too short: {} symbols for {} bytes",
        symbols.len(),
        byte_len
    );
    let spb = symbols_per_byte::<F>();
    let mut out = Vec::with_capacity(byte_len);
    if spb > 1 {
        let bits = match F::SIZE {
            2 => 1,
            4 => 2,
            16 => 4,
            // ag-lint: allow(panic-policy) — spb > 1 only for the three
            // sub-byte field sizes matched above.
            _ => unreachable!("symbols_per_byte covered these"),
        };
        for group in symbols.chunks(spb).take(byte_len) {
            let mut b: u16 = 0;
            for &s in group {
                b = (b << bits) | (s.to_u64() as u16);
            }
            out.push(b as u8);
        }
    } else {
        let bps = bytes_per_symbol::<F>();
        'outer: for &s in symbols {
            let v = s.to_u64();
            for i in 0..bps {
                if out.len() == byte_len {
                    break 'outer;
                }
                out.push(((v >> (8 * (bps - 1 - i))) & 0xFF) as u8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf2, Gf256, Gf65536, F257};

    fn round_trip<F: Field>(data: &[u8]) {
        let syms = bytes_to_symbols::<F>(data);
        assert_eq!(syms.len(), symbol_len::<F>(data.len()));
        let back = symbols_to_bytes::<F>(&syms, data.len());
        assert_eq!(back, data, "round trip failed for q = {}", F::SIZE);
    }

    #[test]
    fn round_trip_all_fields() {
        let data: Vec<u8> = (0..=255).collect();
        round_trip::<Gf2>(&data);
        round_trip::<Gf16>(&data);
        round_trip::<Gf256>(&data);
        round_trip::<Gf65536>(&data);
        round_trip::<F257>(&data);
    }

    #[test]
    fn round_trip_odd_lengths() {
        for len in [0usize, 1, 3, 7, 255] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            round_trip::<Gf2>(&data);
            round_trip::<Gf65536>(&data);
            round_trip::<Gf256>(&data);
        }
    }

    #[test]
    fn gf2_is_bits_msb_first() {
        let syms = bytes_to_symbols::<Gf2>(&[0b1010_0001]);
        let bits: Vec<u64> = syms.iter().map(|s| s.to_u64()).collect();
        assert_eq!(bits, vec![1, 0, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn gf65536_packs_two_bytes_big_endian() {
        let syms = bytes_to_symbols::<Gf65536>(&[0x12, 0x34, 0x56]);
        assert_eq!(syms.len(), 2);
        assert_eq!(syms[0].to_u64(), 0x1234);
        assert_eq!(syms[1].to_u64(), 0x5600); // padded
    }

    #[test]
    #[should_panic(expected = "symbol vector too short")]
    fn too_short_symbol_vector_panics() {
        let syms = bytes_to_symbols::<Gf256>(&[1, 2]);
        let _ = symbols_to_bytes::<Gf256>(&syms, 5);
    }
}
