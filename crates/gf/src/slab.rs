//! Bulk "slab" arithmetic: field operations over packed byte rows.
//!
//! The RLNC hot path — Gauss–Jordan elimination inside
//! `ag_linalg::EchelonBasis` and packet combination inside
//! `ag_rlnc::Recoder` — spends all of its time doing `dst += c · src` over
//! rows of thousands of symbols. Doing that one [`Field`] element at a time
//! costs a bounds-checked table lookup per symbol. The [`SlabField`] trait
//! instead exposes the three row primitives over *packed byte slabs*:
//!
//! * [`SlabField::add_slice`] — `dst += src`,
//! * [`SlabField::mul_slice`] — `dst *= c`,
//! * [`SlabField::mul_add_slice`] — `dst += c · src` (the axpy kernel),
//! * [`SlabField::mul_add_multi`] — fused gather `dst += Σᵢ cᵢ · srcᵢ`
//!   over contiguous source rows (the batched-elimination kernel),
//! * [`SlabField::mul_add_scatter`] — fused scatter `dstᵢ += cᵢ · src`
//!   (the back-substitution kernel).
//!
//! Every field gets a correct scalar fallback (unpack, apply [`Field`] ops,
//! repack), and the fields that matter for throughput override it:
//!
//! | Field | packing | fast path |
//! |---|---|---|
//! | [`Gf2`](crate::Gf2) | 1 byte/symbol | pure XOR (`u64`-chunked) |
//! | [`Gf16`](crate::Gf16) | 1 byte/symbol | XOR add + kernel-ladder multiply |
//! | [`Gf256`](crate::Gf256) | 1 byte/symbol | XOR add + kernel-ladder multiply |
//! | [`Gf65536`](crate::Gf65536) | 2 bytes/symbol LE | XOR add, scalar multiply |
//! | [`Fp<P>`](crate::Fp) | 8 bytes/symbol LE | scalar fallback |
//!
//! "Kernel ladder" means the GF(2⁸)/GF(2⁴) multiply kernels are selected
//! at runtime by [`crate::Kernel`] among three bit-identical rungs: the
//! preserved per-`c` product-table loops ([`crate::reference`]), portable
//! split-nibble SWAR over `u64` words ([`crate::wide`]), and
//! runtime-detected x86-64 SIMD — `PSHUFB` nibble shuffles or the GFNI
//! `GF2P8MULB` instruction ([`crate::simd`]). See the [`crate::kernel`]
//! module docs for the selection rules and `bench_rlnc_throughput` for
//! measured throughput per rung.
//!
//! # Packing invariants
//!
//! A packed slab stores each symbol in exactly [`SlabField::SYMBOL_BYTES`]
//! bytes at offset `i * SYMBOL_BYTES`, in the field's canonical
//! representation. Two invariants make the fast paths sound and are asserted
//! by the `proptest_slab` suite:
//!
//! 1. `ZERO` packs to the all-zero byte pattern (so `mul_slice(ZERO, ..)`
//!    may `fill(0)` and a freshly zeroed buffer is a row of zeros), and
//! 2. packing is canonical: `write_symbol(read_symbol(b)) == b` for every
//!    slab produced by `write_symbol` (so byte equality of slabs is element
//!    equality).
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256, SlabField};
//!
//! let c = Gf256::new(0x57);
//! let src = Gf256::pack(&[Gf256::new(0x83), Gf256::ONE]);
//! let mut dst = vec![0u8; src.len()];
//! Gf256::mul_add_slice(c, &src, &mut dst);
//! assert_eq!(Gf256::unpack(&dst), vec![Gf256::new(0xC1), c]);
//! ```

use crate::field::Field;

/// A [`Field`] that additionally supports bulk arithmetic over packed byte
/// rows ("slabs").
///
/// All slice operations require `src.len() == dst.len()` and lengths that
/// are a multiple of [`SlabField::SYMBOL_BYTES`]; they panic otherwise.
/// Empty slices are valid and are no-ops.
pub trait SlabField: Field {
    /// Bytes one packed symbol occupies.
    const SYMBOL_BYTES: usize;

    /// Writes the canonical packed representation into
    /// `dst[..SYMBOL_BYTES]`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than [`SlabField::SYMBOL_BYTES`].
    fn write_symbol(self, dst: &mut [u8]);

    /// Reads a symbol from `src[..SYMBOL_BYTES]`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than [`SlabField::SYMBOL_BYTES`].
    fn read_symbol(src: &[u8]) -> Self;

    /// Appends the packed representation of `elems` to `out`.
    fn pack_into(elems: &[Self], out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + elems.len() * Self::SYMBOL_BYTES, 0);
        for (e, chunk) in elems
            .iter()
            .zip(out[start..].chunks_exact_mut(Self::SYMBOL_BYTES))
        {
            e.write_symbol(chunk);
        }
    }

    /// The packed representation of `elems` as a fresh slab.
    #[must_use]
    fn pack(elems: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(elems.len() * Self::SYMBOL_BYTES);
        Self::pack_into(elems, &mut out);
        out
    }

    /// Decodes a packed slab back into field elements.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of
    /// [`SlabField::SYMBOL_BYTES`].
    #[must_use]
    fn unpack(bytes: &[u8]) -> Vec<Self> {
        assert!(
            bytes.len().is_multiple_of(Self::SYMBOL_BYTES),
            "slab length {} is not a multiple of the {}-byte symbol size",
            bytes.len(),
            Self::SYMBOL_BYTES
        );
        bytes
            .chunks_exact(Self::SYMBOL_BYTES)
            .map(Self::read_symbol)
            .collect()
    }

    /// `dst[i] += src[i]` for every symbol.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    fn add_slice(src: &[u8], dst: &mut [u8]) {
        check_pair::<Self>(src, dst);
        for (d, s) in dst
            .chunks_exact_mut(Self::SYMBOL_BYTES)
            .zip(src.chunks_exact(Self::SYMBOL_BYTES))
        {
            (Self::read_symbol(d) + Self::read_symbol(s)).write_symbol(d);
        }
    }

    /// `dst[i] *= c` for every symbol.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len()` is not a multiple of
    /// [`SlabField::SYMBOL_BYTES`].
    fn mul_slice(c: Self, dst: &mut [u8]) {
        check_one::<Self>(dst);
        if c == Self::ONE {
            return;
        }
        if c.is_zero() {
            dst.fill(0);
            return;
        }
        for d in dst.chunks_exact_mut(Self::SYMBOL_BYTES) {
            (c * Self::read_symbol(d)).write_symbol(d);
        }
    }

    /// `dst[i] += c * src[i]` for every symbol — the axpy kernel that
    /// dominates Gauss–Jordan elimination and recoding.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    fn mul_add_slice(c: Self, src: &[u8], dst: &mut [u8]) {
        check_pair::<Self>(src, dst);
        if c.is_zero() {
            return;
        }
        for (d, s) in dst
            .chunks_exact_mut(Self::SYMBOL_BYTES)
            .zip(src.chunks_exact(Self::SYMBOL_BYTES))
        {
            (Self::read_symbol(d) + c * Self::read_symbol(s)).write_symbol(d);
        }
    }

    /// Fused gather: `dst += Σᵢ factors[i] · srcs_row_i` in one call.
    ///
    /// `factors` holds `n` packed symbols; `srcs` holds `n` contiguous rows
    /// of exactly `dst.len()` bytes each (row `i` starts at byte
    /// `i * dst.len()`). Rows whose factor is zero are skipped, so callers
    /// may pass a sparse factor vector without pre-filtering.
    ///
    /// This is the batched-elimination kernel: one destination row is
    /// accumulated from many sources per memory pass, which lets SIMD rungs
    /// keep the accumulator in registers instead of re-reading `dst` once
    /// per source row.
    ///
    /// # Panics
    ///
    /// Panics if `factors` or `dst` is misaligned, or if
    /// `srcs.len() != n * dst.len()`.
    fn mul_add_multi(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        check_one::<Self>(factors);
        check_one::<Self>(dst);
        let n = factors.len() / Self::SYMBOL_BYTES;
        assert_eq!(
            srcs.len(),
            n * dst.len(),
            "srcs must hold exactly one row of dst.len() bytes per factor"
        );
        if dst.is_empty() {
            return;
        }
        for (f, row) in factors
            .chunks_exact(Self::SYMBOL_BYTES)
            .zip(srcs.chunks_exact(dst.len()))
        {
            let c = Self::read_symbol(f);
            if !c.is_zero() {
                Self::mul_add_slice(c, row, dst);
            }
        }
    }

    /// Blocked panel update: `dsts_row_i += Σⱼ coefs[i·c + j] · srcs_row_j`
    /// for an `r × c` coefficient micro-panel — the BLAS-3 kernel.
    ///
    /// `coefs` holds `r · c` packed symbols in row-major order (symbol
    /// `i · c + j` multiplies source row `j` into destination row `i`);
    /// `srcs` holds `c` contiguous rows and `dsts` holds `r` contiguous
    /// rows, each exactly `row_bytes` long. Zero coefficients are skipped.
    ///
    /// Where [`SlabField::mul_add_multi`] re-streams every source row once
    /// per destination, this kernel lets an optimized rung reuse each loaded
    /// source vector across all `r` accumulators before it leaves registers
    /// and keep a source tile cache-resident across the whole destination
    /// panel — O(r·c) arithmetic per O(r+c) rows of memory traffic. The
    /// default implementation is the gather loop (one `mul_add_multi` per
    /// destination row), which every rung must match bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is not a multiple of
    /// [`SlabField::SYMBOL_BYTES`], if `srcs` or `dsts` is not a whole
    /// number of `row_bytes` rows, or if `coefs` is not exactly `r · c`
    /// packed symbols. `row_bytes == 0` requires all three slabs empty.
    fn mul_add_block(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], row_bytes: usize) {
        let (r, c) = check_block::<Self>(coefs, srcs, dsts, row_bytes);
        if r == 0 || c == 0 {
            return;
        }
        let csb = c * Self::SYMBOL_BYTES;
        for (panel_row, dst) in coefs
            .chunks_exact(csb)
            .zip(dsts.chunks_exact_mut(row_bytes))
        {
            Self::mul_add_multi(panel_row, srcs, dst);
        }
    }

    /// Fused scatter: `dsts_row_i += factors[i] · src` for every row.
    ///
    /// The transpose of [`SlabField::mul_add_multi`]: `factors` holds `n`
    /// packed symbols and `dsts` holds `n` contiguous rows of exactly
    /// `src.len()` bytes each. Rows with a zero factor are untouched.
    ///
    /// This is the back-substitution kernel: one new pivot row is applied to
    /// every stored row in a single pass. The default loop is kept even on
    /// SIMD rungs — `src` stays cache-hot across iterations, so fusing the
    /// writes buys nothing the loop does not already get.
    ///
    /// # Panics
    ///
    /// Panics if `factors` or `src` is misaligned, or if
    /// `dsts.len() != n * src.len()`.
    fn mul_add_scatter(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        check_one::<Self>(factors);
        check_one::<Self>(src);
        let n = factors.len() / Self::SYMBOL_BYTES;
        assert_eq!(
            dsts.len(),
            n * src.len(),
            "dsts must hold exactly one row of src.len() bytes per factor"
        );
        if src.is_empty() {
            return;
        }
        for (f, row) in factors
            .chunks_exact(Self::SYMBOL_BYTES)
            .zip(dsts.chunks_exact_mut(src.len()))
        {
            let c = Self::read_symbol(f);
            if !c.is_zero() {
                Self::mul_add_slice(c, src, row);
            }
        }
    }
}

#[inline]
fn check_pair<F: SlabField>(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    check_one::<F>(dst);
}

/// Validates the block-panel shapes and returns `(r, c)` — the destination
/// and source row counts.
#[inline]
pub(crate) fn check_block<F: SlabField>(
    coefs: &[u8],
    srcs: &[u8],
    dsts: &[u8],
    row_bytes: usize,
) -> (usize, usize) {
    if row_bytes == 0 {
        assert!(
            coefs.is_empty() && srcs.is_empty() && dsts.is_empty(),
            "zero row_bytes requires empty panel slabs"
        );
        return (0, 0);
    }
    assert!(
        row_bytes.is_multiple_of(F::SYMBOL_BYTES),
        "row_bytes {} is not a multiple of the {}-byte symbol size",
        row_bytes,
        F::SYMBOL_BYTES
    );
    assert!(
        srcs.len().is_multiple_of(row_bytes) && dsts.len().is_multiple_of(row_bytes),
        "panel slabs must be whole rows of {row_bytes} bytes"
    );
    let c = srcs.len() / row_bytes;
    let r = dsts.len() / row_bytes;
    assert_eq!(
        coefs.len(),
        r * c * F::SYMBOL_BYTES,
        "coefficient panel must be exactly r x c packed symbols"
    );
    (r, c)
}

#[inline]
fn check_one<F: SlabField>(dst: &[u8]) {
    assert!(
        dst.len().is_multiple_of(F::SYMBOL_BYTES),
        "slab length {} is not a multiple of the {}-byte symbol size",
        dst.len(),
        F::SYMBOL_BYTES
    );
}

/// `dst ^= src`, processed in `u64` chunks. Addition for every
/// characteristic-2 field in this crate, since their canonical packings are
/// plain bit patterns.
pub(crate) fn xor_slice(src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let word = u64::from_le_bytes(dc[..8].try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(sc[..8].try_into().expect("8-byte chunk"));
        dc.copy_from_slice(&word.to_le_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf2, Gf256};

    #[test]
    fn xor_slice_matches_bytewise() {
        let src: Vec<u8> = (0..37u8).collect();
        let mut dst: Vec<u8> = (100..137u8).collect();
        let want: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        xor_slice(&src, &mut dst);
        assert_eq!(dst, want);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let elems: Vec<Gf256> = (0..=255u8).map(Gf256::new).collect();
        assert_eq!(Gf256::unpack(&Gf256::pack(&elems)), elems);
        let bits = [Gf2::ZERO, Gf2::ONE, Gf2::ONE];
        assert_eq!(Gf2::unpack(&Gf2::pack(&bits)), bits);
    }

    #[test]
    fn zero_packs_to_zero_bytes() {
        // Invariant 1 of the module docs, for the byte-packed fields.
        assert_eq!(Gf256::pack(&[Gf256::ZERO]), vec![0]);
        assert_eq!(Gf2::pack(&[Gf2::ZERO]), vec![0]);
    }

    #[test]
    fn empty_slabs_are_noops() {
        let mut empty: Vec<u8> = Vec::new();
        Gf256::add_slice(&[], &mut empty);
        Gf256::mul_slice(Gf256::new(7), &mut empty);
        Gf256::mul_add_slice(Gf256::new(7), &[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u8; 4];
        Gf256::mul_add_slice(Gf256::ONE, &[1, 2, 3], &mut dst);
    }

    #[test]
    fn mul_add_multi_matches_axpy_loop() {
        let rows: Vec<u8> = (0u8..=255).chain(0..=255).take(3 * 96).collect();
        let factors = [0x00, 0x57, 0x01];
        let mut fused = vec![0xAAu8; 96];
        let mut looped = fused.clone();
        Gf256::mul_add_multi(&factors, &rows, &mut fused);
        for (f, row) in factors.iter().zip(rows.chunks_exact(96)) {
            Gf256::mul_add_slice(Gf256::new(*f), row, &mut looped);
        }
        assert_eq!(fused, looped);
    }

    #[test]
    fn mul_add_scatter_matches_axpy_loop() {
        let src: Vec<u8> = (1u8..=64).collect();
        let factors = [0x03, 0x00, 0xFF];
        let mut fused: Vec<u8> = (0u8..192).collect();
        let mut looped = fused.clone();
        Gf256::mul_add_scatter(&factors, &src, &mut fused);
        for (f, row) in factors.iter().zip(looped.chunks_exact_mut(64)) {
            Gf256::mul_add_slice(Gf256::new(*f), &src, row);
        }
        assert_eq!(fused, looped);
    }

    #[test]
    fn mul_add_block_matches_axpy_loop() {
        let row = 48;
        let (r, c) = (3, 2);
        let srcs: Vec<u8> = (0u8..(c * row) as u8).collect();
        let coefs = [0x00, 0x57, 0x01, 0x03, 0xFF, 0x00];
        let mut blocked: Vec<u8> = (100u8..100 + (r * row) as u8).collect();
        let mut looped = blocked.clone();
        Gf256::mul_add_block(&coefs, &srcs, &mut blocked, row);
        for (panel, dst) in coefs.chunks_exact(c).zip(looped.chunks_exact_mut(row)) {
            for (f, src) in panel.iter().zip(srcs.chunks_exact(row)) {
                Gf256::mul_add_slice(Gf256::new(*f), src, dst);
            }
        }
        assert_eq!(blocked, looped);
    }

    #[test]
    fn mul_add_block_accepts_empty_panels() {
        let mut dsts: Vec<u8> = Vec::new();
        Gf256::mul_add_block(&[], &[], &mut dsts, 0);
        // c = 0 sources into r = 2 rows: a no-op with an empty panel.
        let mut two = vec![7u8; 8];
        Gf256::mul_add_block(&[], &[], &mut two, 4);
        assert_eq!(two, vec![7u8; 8]);
        // r = 0 rows from c = 2 sources: nothing to write.
        Gf256::mul_add_block(&[], &[1, 2, 3, 4, 5, 6, 7, 8], &mut dsts, 4);
        assert!(dsts.is_empty());
    }

    #[test]
    #[should_panic(expected = "r x c packed symbols")]
    fn mul_add_block_rejects_ragged_panels() {
        let mut dsts = vec![0u8; 8];
        Gf256::mul_add_block(&[1, 2, 3], &[0u8; 8], &mut dsts, 4);
    }

    #[test]
    fn fused_kernels_accept_empty_rows() {
        // Zero-width rows (rank-only bases) must be no-ops for any factor
        // count, including zero factors over zero rows.
        let mut dst: Vec<u8> = Vec::new();
        Gf256::mul_add_multi(&[1, 2, 3], &[], &mut dst);
        Gf256::mul_add_multi(&[], &[], &mut dst);
        let mut dsts: Vec<u8> = Vec::new();
        Gf256::mul_add_scatter(&[1, 2, 3], &[], &mut dsts);
        assert!(dst.is_empty() && dsts.is_empty());
    }

    #[test]
    #[should_panic(expected = "one row of dst.len() bytes per factor")]
    fn mul_add_multi_rejects_ragged_slabs() {
        let mut dst = vec![0u8; 4];
        Gf256::mul_add_multi(&[1, 2], &[0u8; 7], &mut dst);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_multibyte_slab_panics() {
        // 3 bytes is not a whole number of 2-byte GF(2^16) symbols; the
        // fast-path override must uphold the trait's alignment contract.
        let mut dst = vec![0u8; 3];
        crate::Gf65536::add_slice(&[1, 2, 3], &mut dst);
    }
}
