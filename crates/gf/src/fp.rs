//! Prime fields GF(p) for odd characteristic experiments.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::field::Field;
use crate::slab::SlabField;

/// An element of the prime field GF(`P`), for a prime `P < 2³²`.
///
/// The paper's bounds hold for any field; prime fields let the field-size
/// ablation include non-power-of-two `q` (e.g. q = 257 just above one byte).
/// The representation is the canonical residue in `0..P`.
///
/// # Panics
///
/// Field operations `debug_assert` that `P` is actually prime the first time
/// an inverse is computed; constructing `Fp` with composite `P` yields a ring
/// in which [`Field::inv`] may return `None` for nonzero elements.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Fp};
///
/// type F11 = Fp<11>;
/// let a = F11::from_u64(7);
/// assert_eq!(a * a.inv().unwrap(), F11::ONE);
/// assert_eq!(F11::from_u64(8) + F11::from_u64(5), F11::from_u64(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fp<const P: u64>(u64);

/// GF(7): tiny prime field (exhaustively testable).
pub type F7 = Fp<7>;
/// GF(13): small prime field.
pub type F13 = Fp<13>;
/// GF(257): the smallest prime above one byte — pairs with [`crate::Gf256`]
/// in the field-size ablation.
pub type F257 = Fp<257>;
/// GF(65537): the Fermat prime above two bytes.
pub type F65537 = Fp<65537>;

impl<const P: u64> Fp<P> {
    /// Creates an element from any integer by reducing mod `P`.
    #[must_use]
    pub fn new(v: u64) -> Self {
        Fp(v % P)
    }

    /// The canonical residue in `0..P`.
    #[must_use]
    pub fn residue(self) -> u64 {
        self.0
    }

    /// Extended Euclid over the integers; returns the inverse of `a` mod `P`.
    fn euclid_inv(a: u64) -> Option<u64> {
        if a == 0 {
            return None;
        }
        let (mut old_r, mut r) = (i128::from(P), i128::from(a));
        let (mut old_t, mut t) = (0i128, 1i128);
        while r != 0 {
            let q = old_r / r;
            (old_r, r) = (r, old_r - q * r);
            (old_t, t) = (t, old_t - q * t);
        }
        if old_r != 1 {
            // gcd != 1: only possible when P is composite.
            return None;
        }
        let p = i128::from(P);
        Some((((old_t % p) + p) % p) as u64)
    }
}

impl<const P: u64> Field for Fp<P> {
    const ZERO: Self = Fp(0);
    const ONE: Self = Fp(1 % P);
    const SIZE: u64 = P;

    fn inv(self) -> Option<Self> {
        Self::euclid_inv(self.0).map(Fp)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Fp(rng.gen_range(0..P))
    }

    fn from_u64(v: u64) -> Self {
        Fp(v % P)
    }

    fn to_u64(self) -> u64 {
        self.0
    }
}

impl<const P: u64> SlabField for Fp<P> {
    // Prime-field slabs use the scalar fallback throughout: odd
    // characteristic rules out the XOR fast path, and GF(p) appears only in
    // the field-size ablation, never on the throughput-critical
    // configurations.
    const SYMBOL_BYTES: usize = 8;

    fn write_symbol(self, dst: &mut [u8]) {
        dst[..8].copy_from_slice(&self.0.to_le_bytes());
    }

    fn read_symbol(src: &[u8]) -> Self {
        Fp(u64::from_le_bytes(src[..8].try_into().expect("8 bytes")) % P)
    }
}

impl<const P: u64> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Add for Fp<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let s = self.0 + rhs.0;
        Fp(if s >= P { s - P } else { s })
    }
}

impl<const P: u64> AddAssign for Fp<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const P: u64> Sub for Fp<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }
}

impl<const P: u64> SubAssign for Fp<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const P: u64> Mul for Fp<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // P < 2^32 keeps the product within u64.
        Fp((self.0 * rhs.0) % P)
    }
}

impl<const P: u64> MulAssign for Fp<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const P: u64> Neg for Fp<P> {
    type Output = Self;
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Fp(P - self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_wraparound() {
        assert_eq!(F7::new(9), F7::new(2));
        assert_eq!(F7::from_u64(6) + F7::from_u64(6), F7::from_u64(5));
        assert_eq!(F7::from_u64(2) - F7::from_u64(5), F7::from_u64(4));
    }

    #[test]
    fn negation_sums_to_zero() {
        for v in 0..7 {
            let a = F7::from_u64(v);
            assert_eq!(a + (-a), F7::ZERO);
        }
    }

    #[test]
    fn f257_inverses_exhaustive() {
        for v in 1..257u64 {
            let a = F257::from_u64(v);
            assert_eq!(a * a.inv().unwrap(), F257::ONE, "v = {v}");
        }
    }

    #[test]
    fn fermat_little_theorem() {
        for v in [1u64, 2, 100, 256] {
            assert_eq!(F257::from_u64(v).pow(256), F257::ONE);
        }
    }

    #[test]
    fn composite_modulus_is_not_a_field() {
        // 4 is not prime: 2 has no inverse mod 4.
        type R4 = Fp<4>;
        assert!(R4::from_u64(2).inv().is_none());
        // ...but units still invert.
        assert_eq!(R4::from_u64(3).inv(), Some(R4::from_u64(3)));
    }
}
