//! The hardware rung of the kernel ladder: `PSHUFB` / `GF2P8MULB` slabs.
//!
//! This module applies the same split-nibble decomposition as
//! [`crate::wide`] — `c·b = LO[b & 0xF] ^ HI[b >> 4]` — but through the
//! instruction the SWAR rung emulates: `PSHUFB` performs sixteen (SSSE3) or
//! thirty-two (AVX2) parallel 16-entry table lookups per cycle. On CPUs
//! with GFNI, GF(2⁸) skips the tables entirely: `GF2P8MULB` multiplies
//! bytes directly in GF(2⁸) modulo `x⁸+x⁴+x³+x+1` (0x11B) — exactly the
//! polynomial [`crate::Gf256`] is built on, so the instruction *is* the
//! field.
//!
//! Everything is runtime-detected (`is_x86_feature_detected!`) and compiled
//! only on x86-64; other architectures transparently fall back to the SWAR
//! rung, as does an x86-64 CPU without SSSE3. The detected level can be
//! forced down with `AG_GF_SIMD=ssse3|avx2|gfni` for ladder benchmarks.
//! Sub-block tails (&lt; 16/32 bytes) run through the SWAR rung, which
//! produces bit-identical bytes; `proptest_kernels` pins all rungs to each
//! other across every block-boundary geometry.

#![allow(unsafe_code)]

use crate::slab::xor_slice;

/// Is the SIMD rung available on this CPU at all (x86-64 with SSSE3+)?
#[must_use]
pub fn supported() -> bool {
    detail::supported()
}

/// The detected instruction level, for benchmark reports: `"gfni"`,
/// `"avx2"`, `"ssse3"`, or `"swar-fallback"` where the rung delegates.
#[must_use]
pub fn level_name() -> &'static str {
    detail::level_name()
}

/// `dst[i] = c · dst[i]` over GF(2⁸), SIMD rung.
pub fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    detail::gf256_mul_slice(c, dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁸), SIMD rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    detail::gf256_mul_add_slice(c, src, dst);
}

/// `dst[i] = c · dst[i]` over GF(2⁴), SIMD rung.
pub fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    detail::gf16_mul_slice(c, dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁴), SIMD rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    detail::gf16_mul_add_slice(c, src, dst);
}

#[cfg(target_arch = "x86_64")]
mod detail {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    use crate::wide::{self, gf16_nibble_tables, gf256_nibble_tables, NibbleTables};

    /// Detected (or `AG_GF_SIMD`-forced) instruction level, best first.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub(super) enum Level {
        /// No SSSE3: delegate every call to the SWAR rung.
        None,
        Ssse3,
        Avx2,
        /// GFNI + AVX2: `GF2P8MULB` for GF(2⁸); GF(2⁴) uses the AVX2 path.
        Gfni,
    }

    fn detect() -> Level {
        let best = if is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2") {
            Level::Gfni
        } else if is_x86_feature_detected!("avx2") {
            Level::Avx2
        } else if is_x86_feature_detected!("ssse3") {
            Level::Ssse3
        } else {
            Level::None
        };
        let forced =
            std::env::var("AG_GF_SIMD")
                .ok()
                .and_then(|v| match v.to_ascii_lowercase().as_str() {
                    "ssse3" => Some(Level::Ssse3),
                    "avx2" => Some(Level::Avx2),
                    "gfni" => Some(Level::Gfni),
                    _ => None,
                });
        match forced {
            // Only allow forcing *down*: forcing an unsupported level up
            // would execute illegal instructions.
            Some(f) if f <= best => f,
            _ => best,
        }
    }

    pub(super) fn level() -> Level {
        static LEVEL: OnceLock<Level> = OnceLock::new();
        *LEVEL.get_or_init(detect)
    }

    pub(super) fn supported() -> bool {
        level() != Level::None
    }

    pub(super) fn level_name() -> &'static str {
        match level() {
            Level::Gfni => "gfni",
            Level::Avx2 => "avx2",
            Level::Ssse3 => "ssse3",
            Level::None => "swar-fallback",
        }
    }

    pub(super) fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        match level() {
            // SAFETY: the matched level was runtime-detected (detect()
            // never reports a level the CPU lacks).
            Level::Gfni => unsafe { gf256_mul_add_gfni(c, src, dst) },
            Level::Avx2 => unsafe { mul_add_avx2::<true>(&gf256_nibble_tables(c), src, dst) },
            Level::Ssse3 => unsafe { mul_add_ssse3::<true>(&gf256_nibble_tables(c), src, dst) },
            Level::None => wide::gf256_mul_add_slice(c, src, dst),
        }
    }

    pub(super) fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected.
            Level::Gfni => unsafe { gf256_mul_gfni(c, dst) },
            Level::Avx2 => unsafe { mul_avx2::<true>(&gf256_nibble_tables(c), dst) },
            Level::Ssse3 => unsafe { mul_ssse3::<true>(&gf256_nibble_tables(c), dst) },
            Level::None => wide::gf256_mul_slice(c, dst),
        }
    }

    pub(super) fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni implies AVX2.
            Level::Gfni | Level::Avx2 => unsafe {
                mul_add_avx2::<false>(&gf16_nibble_tables(c), src, dst)
            },
            Level::Ssse3 => unsafe { mul_add_ssse3::<false>(&gf16_nibble_tables(c), src, dst) },
            Level::None => wide::gf16_mul_add_slice(c, src, dst),
        }
    }

    pub(super) fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni implies AVX2.
            Level::Gfni | Level::Avx2 => unsafe { mul_avx2::<false>(&gf16_nibble_tables(c), dst) },
            Level::Ssse3 => unsafe { mul_ssse3::<false>(&gf16_nibble_tables(c), dst) },
            Level::None => wide::gf16_mul_slice(c, dst),
        }
    }

    /// Scalar nibble-table tail shared by every vector path below.
    fn tail_mul_add(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= t.lo[(s & 0xF) as usize] ^ t.hi[(s >> 4) as usize];
        }
    }

    fn tail_mul(t: &NibbleTables, dst: &mut [u8]) {
        for d in dst.iter_mut() {
            *d = t.lo[(*d & 0xF) as usize] ^ t.hi[(*d >> 4) as usize];
        }
    }

    /// `HI` (GF(2⁸)) or low-nibble-only (GF(2⁴), canonical packing) product
    /// of one 256-bit block of source bytes.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn product_block_avx2<const SPLIT: bool>(
        lo: __m256i,
        hi: __m256i,
        mask: __m256i,
        s: __m256i,
    ) -> __m256i {
        let p_lo = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
        if SPLIT {
            let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
            _mm256_xor_si256(p_lo, _mm256_shuffle_epi8(hi, hi_idx))
        } else {
            p_lo
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_avx2<const SPLIT: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let blocks = src.len() / 32;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 32).cast();
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = product_block_avx2::<SPLIT>(lo, hi, mask, _mm256_loadu_si256(sp));
            _mm256_storeu_si256(dp, _mm256_xor_si256(_mm256_loadu_si256(dp), p));
        }
        tail_mul_add(t, &src[blocks * 32..], &mut dst[blocks * 32..]);
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2<const SPLIT: bool>(t: &NibbleTables, dst: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let blocks = dst.len() / 32;
        for b in 0..blocks {
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = product_block_avx2::<SPLIT>(lo, hi, mask, _mm256_loadu_si256(dp));
            _mm256_storeu_si256(dp, p);
        }
        tail_mul(t, &mut dst[blocks * 32..]);
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_add_ssse3<const SPLIT: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let blocks = src.len() / 16;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 16).cast();
            let dp = dst.as_mut_ptr().add(b * 16).cast();
            let s = _mm_loadu_si128(sp);
            let mut p = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            if SPLIT {
                let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
                p = _mm_xor_si128(p, _mm_shuffle_epi8(hi, hi_idx));
            }
            _mm_storeu_si128(dp, _mm_xor_si128(_mm_loadu_si128(dp), p));
        }
        tail_mul_add(t, &src[blocks * 16..], &mut dst[blocks * 16..]);
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3<const SPLIT: bool>(t: &NibbleTables, dst: &mut [u8]) {
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let blocks = dst.len() / 16;
        for b in 0..blocks {
            let dp: *mut __m128i = dst.as_mut_ptr().add(b * 16).cast();
            let s = _mm_loadu_si128(dp.cast_const());
            let mut p = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            if SPLIT {
                let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
                p = _mm_xor_si128(p, _mm_shuffle_epi8(hi, hi_idx));
            }
            _mm_storeu_si128(dp, p);
        }
        tail_mul(t, &mut dst[blocks * 16..]);
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_add_gfni(c: u8, src: &[u8], dst: &mut [u8]) {
        let cv = _mm256_set1_epi8(c as i8);
        let blocks = src.len() / 32;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 32).cast();
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp), cv);
            _mm256_storeu_si256(dp, _mm256_xor_si256(_mm256_loadu_si256(dp), p));
        }
        // GF2P8MULB needs no tables — only build them if a tail exists.
        if blocks * 32 < src.len() {
            tail_mul_add(
                &gf256_nibble_tables(c),
                &src[blocks * 32..],
                &mut dst[blocks * 32..],
            );
        }
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_gfni(c: u8, dst: &mut [u8]) {
        let cv = _mm256_set1_epi8(c as i8);
        let blocks = dst.len() / 32;
        for b in 0..blocks {
            let dp: *mut __m256i = dst.as_mut_ptr().add(b * 32).cast();
            let p = _mm256_gf2p8mul_epi8(_mm256_loadu_si256(dp.cast_const()), cv);
            _mm256_storeu_si256(dp, p);
        }
        if blocks * 32 < dst.len() {
            tail_mul(&gf256_nibble_tables(c), &mut dst[blocks * 32..]);
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod detail {
    //! Non-x86-64 hosts: the SIMD rung is a transparent alias of SWAR.
    use crate::wide;

    pub(super) fn supported() -> bool {
        false
    }

    pub(super) fn level_name() -> &'static str {
        "swar-fallback"
    }

    pub(super) fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        wide::gf256_mul_add_slice(c, src, dst);
    }

    pub(super) fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
        wide::gf256_mul_slice(c, dst);
    }

    pub(super) fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        wide::gf16_mul_add_slice(c, src, dst);
    }

    pub(super) fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
        wide::gf16_mul_slice(c, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_matches_reference_across_block_boundaries() {
        let src: Vec<u8> = (0..200u8)
            .map(|b| b.wrapping_mul(101).wrapping_add(7))
            .collect();
        for c in [0u8, 1, 2, 0x57, 0x8E, 0xFF] {
            for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 47, 64, 95, 200] {
                let mut want = vec![0xC3u8; len];
                crate::reference::gf256_mul_add_slice(c, &src[..len], &mut want);
                let mut got = vec![0xC3u8; len];
                gf256_mul_add_slice(c, &src[..len], &mut got);
                assert_eq!(got, want, "gf256 axpy c={c} len={len}");

                let mut want_mul = src[..len].to_vec();
                crate::reference::gf256_mul_slice(c, &mut want_mul);
                let mut got_mul = src[..len].to_vec();
                gf256_mul_slice(c, &mut got_mul);
                assert_eq!(got_mul, want_mul, "gf256 mul c={c} len={len}");
            }
        }
    }

    #[test]
    fn simd_gf16_matches_reference_with_dirty_high_nibbles() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in 0..16u8 {
            for len in [0usize, 13, 16, 40, 256] {
                let mut want = vec![0x09u8; len];
                crate::reference::gf16_mul_add_slice(c, &src[..len], &mut want);
                let mut got = vec![0x09u8; len];
                gf16_mul_add_slice(c, &src[..len], &mut got);
                assert_eq!(got, want, "gf16 axpy c={c} len={len}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn detection_reports_a_level() {
        // On any x86-64 made this century the rung is at least SSSE3.
        assert!(supported(), "SIMD rung unsupported: {}", level_name());
    }
}
