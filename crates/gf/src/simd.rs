//! The hardware rung of the kernel ladder: `PSHUFB` / `GF2P8MULB` slabs.
//!
//! This module applies the same split-nibble decomposition as
//! [`crate::wide`] — `c·b = LO[b & 0xF] ^ HI[b >> 4]` — but through the
//! instruction the SWAR rung emulates: `PSHUFB` performs sixteen (SSSE3) or
//! thirty-two (AVX2) parallel 16-entry table lookups per cycle. On CPUs
//! with GFNI, GF(2⁸) skips the tables entirely: `GF2P8MULB` multiplies
//! bytes directly in GF(2⁸) modulo `x⁸+x⁴+x³+x+1` (0x11B) — exactly the
//! polynomial [`crate::Gf256`] is built on, so the instruction *is* the
//! field.
//!
//! Everything is runtime-detected (`is_x86_feature_detected!`) and compiled
//! only on x86-64; other architectures transparently fall back to the SWAR
//! rung, as does an x86-64 CPU without SSSE3. The detected level can be
//! forced down with `AG_GF_SIMD=ssse3|avx2|gfni|gfni512` for ladder
//! benchmarks. Sub-block tails (&lt; 16/32 bytes) run through the SWAR
//! rung, which produces bit-identical bytes; `proptest_kernels` pins all
//! rungs to each other across every block-boundary geometry.
//!
//! The fused gather kernel [`gf256_mul_add_multi`] accumulates many source
//! rows into one destination per memory pass, keeping a tile of the
//! destination in vector registers across all sources. On GFNI machines it
//! runs 128-byte (AVX2) or 256-byte (AVX-512, the `gfni512` level) tiles;
//! below GFNI it degrades to a loop of single-row axpys, which is already
//! optimal there because the nibble tables must be rebuilt per source
//! coefficient anyway.

#![allow(unsafe_code)]

use crate::slab::xor_slice;

/// Is the SIMD rung available on this CPU at all (x86-64 with SSSE3+)?
#[must_use]
pub fn supported() -> bool {
    detail::supported()
}

/// The detected instruction level, for benchmark reports: `"gfni"`,
/// `"avx2"`, `"ssse3"`, or `"swar-fallback"` where the rung delegates.
#[must_use]
pub fn level_name() -> &'static str {
    detail::level_name()
}

/// `dst[i] = c · dst[i]` over GF(2⁸), SIMD rung.
pub fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    detail::gf256_mul_slice(c, dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁸), SIMD rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    detail::gf256_mul_add_slice(c, src, dst);
}

/// Fused gather `dst[j] ^= Σᵢ factors[i] · srcs_row_i[j]` over GF(2⁸),
/// SIMD rung. `srcs` holds one contiguous row of `dst.len()` bytes per
/// factor; zero factors are skipped.
///
/// # Panics
///
/// Panics if `srcs.len() != factors.len() * dst.len()`.
pub fn gf256_mul_add_multi(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
    assert_eq!(
        srcs.len(),
        factors.len() * dst.len(),
        "srcs must hold exactly one row of dst.len() bytes per factor"
    );
    if dst.is_empty() || factors.is_empty() {
        return;
    }
    detail::gf256_mul_add_multi(factors, srcs, dst);
}

/// Blocked panel update `dsts_row_i ^= Σⱼ coefs[i·c + j] · srcs_row_j`
/// over GF(2⁸), SIMD rung — the BLAS-3 kernel behind
/// `SlabField::mul_add_block`. `coefs` holds `r · c` symbols row-major;
/// `srcs` holds `c` rows and `dsts` holds `r` rows of `row_bytes` each.
///
/// On GFNI hardware a register panel of four destination rows accumulates
/// in vector registers while the source rows stream through once, so each
/// loaded source vector is reused across all four accumulator rows; the
/// column-tile loop keeps one narrow column of every source L1-resident
/// across the whole destination panel. Below GFNI it degrades to one
/// fused gather per destination row.
///
/// # Panics
///
/// Panics if `srcs`/`dsts` are not whole rows or `coefs` is not exactly
/// `r · c` symbols (`row_bytes == 0` requires all slabs empty).
pub fn gf256_mul_add_block(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], row_bytes: usize) {
    if row_bytes == 0 {
        assert!(
            coefs.is_empty() && srcs.is_empty() && dsts.is_empty(),
            "zero row_bytes requires empty panel slabs"
        );
        return;
    }
    assert!(
        srcs.len().is_multiple_of(row_bytes) && dsts.len().is_multiple_of(row_bytes),
        "panel slabs must be whole rows of {row_bytes} bytes"
    );
    let c = srcs.len() / row_bytes;
    let r = dsts.len() / row_bytes;
    assert_eq!(
        coefs.len(),
        r * c,
        "coefficient panel must be exactly r x c packed symbols"
    );
    if r == 0 || c == 0 {
        return;
    }
    detail::gf256_mul_add_block(coefs, srcs, dsts, row_bytes);
}

/// Fused scatter `dsts_row_i ^= factors[i] · src` over GF(2⁸), SIMD rung.
/// `dsts` holds one contiguous row of `src.len()` bytes per factor; zero
/// factors are skipped. Hoists the kernel dispatch and constant splat out
/// of the per-row loop — back-substitution applies one pivot row to every
/// stored coefficient row, so on short rows the per-row dispatch of a
/// plain axpy loop dominates the actual field work.
///
/// # Panics
///
/// Panics if `dsts.len() != factors.len() * src.len()`.
pub fn gf256_mul_add_scatter(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
    assert_eq!(
        dsts.len(),
        factors.len() * src.len(),
        "dsts must hold exactly one row of src.len() bytes per factor"
    );
    if src.is_empty() || factors.is_empty() {
        return;
    }
    detail::gf256_mul_add_scatter(factors, src, dsts);
}

/// `dst[i] = c · dst[i]` over GF(2⁴), SIMD rung.
pub fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    detail::gf16_mul_slice(c, dst);
}

/// `dst[i] ^= c · src[i]` over GF(2⁴), SIMD rung.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    detail::gf16_mul_add_slice(c, src, dst);
}

#[cfg(target_arch = "x86_64")]
mod detail {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    use crate::wide::{self, gf16_nibble_tables, gf256_nibble_tables, NibbleTables};

    /// Detected (or `AG_GF_SIMD`-forced) instruction level, best first.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub(super) enum Level {
        /// No SSSE3: delegate every call to the SWAR rung.
        None,
        Ssse3,
        Avx2,
        /// GFNI + AVX2: `GF2P8MULB` for GF(2⁸); GF(2⁴) uses the AVX2 path.
        Gfni,
        /// GFNI + AVX-512F/BW: 512-bit `GF2P8MULB` for the fused gather
        /// kernel. Single-row axpys stay on the 256-bit path, where they
        /// are already memory-bound and immune to zmm frequency effects.
        Gfni512,
    }

    fn detect() -> Level {
        let best = if is_x86_feature_detected!("gfni")
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx2")
        {
            Level::Gfni512
        } else if is_x86_feature_detected!("gfni") && is_x86_feature_detected!("avx2") {
            Level::Gfni
        } else if is_x86_feature_detected!("avx2") {
            Level::Avx2
        } else if is_x86_feature_detected!("ssse3") {
            Level::Ssse3
        } else {
            Level::None
        };
        let forced =
            // ag-lint: allow(wall-clock) — AG_GF_SIMD forces a *lower*
            // SIMD level among rungs the differential suite pins as
            // bit-identical; read once per process via the level() lock.
            std::env::var("AG_GF_SIMD")
                .ok()
                .and_then(|v| match v.to_ascii_lowercase().as_str() {
                    "ssse3" => Some(Level::Ssse3),
                    "avx2" => Some(Level::Avx2),
                    "gfni" => Some(Level::Gfni),
                    "gfni512" => Some(Level::Gfni512),
                    _ => None,
                });
        match forced {
            // Only allow forcing *down*: forcing an unsupported level up
            // would execute illegal instructions.
            Some(f) if f <= best => f,
            _ => best,
        }
    }

    pub(super) fn level() -> Level {
        static LEVEL: OnceLock<Level> = OnceLock::new();
        *LEVEL.get_or_init(detect)
    }

    pub(super) fn supported() -> bool {
        level() != Level::None
    }

    pub(super) fn level_name() -> &'static str {
        match level() {
            Level::Gfni512 => "gfni512",
            Level::Gfni => "gfni",
            Level::Avx2 => "avx2",
            Level::Ssse3 => "ssse3",
            Level::None => "swar-fallback",
        }
    }

    pub(super) fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        match level() {
            // SAFETY: the matched level was runtime-detected (detect()
            // never reports a level the CPU lacks), so gfni+avx2 are legal.
            Level::Gfni512 | Level::Gfni => unsafe { gf256_mul_add_gfni(c, src, dst) },
            // SAFETY: this arm runs only when detect() observed avx2.
            Level::Avx2 => unsafe { mul_add_avx2::<true>(&gf256_nibble_tables(c), src, dst) },
            // SAFETY: this arm runs only when detect() observed ssse3.
            Level::Ssse3 => unsafe { mul_add_ssse3::<true>(&gf256_nibble_tables(c), src, dst) },
            Level::None => wide::gf256_mul_add_slice(c, src, dst),
        }
    }

    pub(super) fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected, so gfni+avx2 are legal.
            Level::Gfni512 | Level::Gfni => unsafe { gf256_mul_gfni(c, dst) },
            // SAFETY: this arm runs only when detect() observed avx2.
            Level::Avx2 => unsafe { mul_avx2::<true>(&gf256_nibble_tables(c), dst) },
            // SAFETY: this arm runs only when detect() observed ssse3.
            Level::Ssse3 => unsafe { mul_ssse3::<true>(&gf256_nibble_tables(c), dst) },
            Level::None => wide::gf256_mul_slice(c, dst),
        }
    }

    pub(super) fn gf256_mul_add_multi(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni512 means
            // avx512f+avx512bw+gfni were all observed.
            Level::Gfni512 => unsafe { gf256_mul_add_multi_gfni512(factors, srcs, dst) },
            // SAFETY: this arm runs only when detect() observed gfni+avx2.
            Level::Gfni => unsafe { gf256_mul_add_multi_gfni(factors, srcs, dst) },
            // Below GFNI a fused pass buys nothing: the per-coefficient
            // nibble tables must be rebuilt per source row either way.
            _ => {
                for (&f, row) in factors.iter().zip(srcs.chunks_exact(dst.len())) {
                    if f != 0 {
                        super::gf256_mul_add_slice(f, row, dst);
                    }
                }
            }
        }
    }

    pub(super) fn gf256_mul_add_block(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], rb: usize) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni512 means
            // avx512f+avx512bw+gfni were all observed.
            Level::Gfni512 => unsafe { gf256_mul_add_block_gfni512(coefs, srcs, dsts, rb) },
            // SAFETY: this arm runs only when detect() observed gfni+avx2.
            Level::Gfni => unsafe { gf256_mul_add_block_gfni(coefs, srcs, dsts, rb) },
            // Below GFNI the panel cannot beat one fused gather per
            // destination row: nibble tables are rebuilt per coefficient
            // either way, so there is nothing for a register panel to
            // amortize.
            _ => {
                let c = srcs.len() / rb;
                for (panel, dst) in coefs.chunks_exact(c).zip(dsts.chunks_exact_mut(rb)) {
                    super::gf256_mul_add_multi(panel, srcs, dst);
                }
            }
        }
    }

    pub(super) fn gf256_mul_add_scatter(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni512 means
            // avx512f+avx512bw+gfni were all observed.
            Level::Gfni512 => unsafe { gf256_mul_add_scatter_gfni512(factors, src, dsts) },
            // SAFETY: this arm runs only when detect() observed gfni+avx2.
            Level::Gfni => unsafe { gf256_mul_add_scatter_gfni(factors, src, dsts) },
            // Below GFNI each row needs its per-coefficient nibble tables
            // built anyway; the plain axpy loop is already optimal.
            _ => {
                for (&f, row) in factors.iter().zip(dsts.chunks_exact_mut(src.len())) {
                    if f != 0 {
                        super::gf256_mul_add_slice(f, src, row);
                    }
                }
            }
        }
    }

    pub(super) fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni implies AVX2.
            Level::Gfni512 | Level::Gfni | Level::Avx2 => unsafe {
                mul_add_avx2::<false>(&gf16_nibble_tables(c), src, dst)
            },
            // SAFETY: this arm runs only when detect() observed ssse3.
            Level::Ssse3 => unsafe { mul_add_ssse3::<false>(&gf16_nibble_tables(c), src, dst) },
            Level::None => wide::gf16_mul_add_slice(c, src, dst),
        }
    }

    pub(super) fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
        match level() {
            // SAFETY: level was runtime-detected; Gfni implies AVX2.
            Level::Gfni512 | Level::Gfni | Level::Avx2 => unsafe {
                mul_avx2::<false>(&gf16_nibble_tables(c), dst)
            },
            // SAFETY: this arm runs only when detect() observed ssse3.
            Level::Ssse3 => unsafe { mul_ssse3::<false>(&gf16_nibble_tables(c), dst) },
            Level::None => wide::gf16_mul_slice(c, dst),
        }
    }

    /// Scalar nibble-table tail shared by every vector path below.
    fn tail_mul_add(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= t.lo[(s & 0xF) as usize] ^ t.hi[(s >> 4) as usize];
        }
    }

    fn tail_mul(t: &NibbleTables, dst: &mut [u8]) {
        for d in dst.iter_mut() {
            *d = t.lo[(*d & 0xF) as usize] ^ t.hi[(*d >> 4) as usize];
        }
    }

    /// `HI` (GF(2⁸)) or low-nibble-only (GF(2⁴), canonical packing) product
    /// of one 256-bit block of source bytes.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    // SAFETY: register-only intrinsics — no memory access; the avx2
    // requirement is discharged by the caller contract above.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn product_block_avx2<const SPLIT: bool>(
        lo: __m256i,
        hi: __m256i,
        mask: __m256i,
        s: __m256i,
    ) -> __m256i {
        let p_lo = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
        if SPLIT {
            let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
            _mm256_xor_si256(p_lo, _mm256_shuffle_epi8(hi, hi_idx))
        } else {
            p_lo
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    // SAFETY: unaligned loads/stores only. Table pointers cover the 16-byte
    // arrays in `t`; `sp`/`dp` offsets stay below `blocks * 32 <= src.len()`
    // and the public wrapper asserts `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_avx2<const SPLIT: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let blocks = src.len() / 32;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 32).cast();
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = product_block_avx2::<SPLIT>(lo, hi, mask, _mm256_loadu_si256(sp));
            _mm256_storeu_si256(dp, _mm256_xor_si256(_mm256_loadu_si256(dp), p));
        }
        tail_mul_add(t, &src[blocks * 32..], &mut dst[blocks * 32..]);
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    // SAFETY: unaligned loads/stores only; `dp` offsets stay below
    // `blocks * 32 <= dst.len()`, in-place within the one slice.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2<const SPLIT: bool>(t: &NibbleTables, dst: &mut [u8]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let blocks = dst.len() / 32;
        for b in 0..blocks {
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = product_block_avx2::<SPLIT>(lo, hi, mask, _mm256_loadu_si256(dp));
            _mm256_storeu_si256(dp, p);
        }
        tail_mul(t, &mut dst[blocks * 32..]);
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    // SAFETY: unaligned loads/stores only; `sp`/`dp` offsets stay below
    // `blocks * 16 <= src.len()` and the public wrapper asserts
    // `src.len() == dst.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_add_ssse3<const SPLIT: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let blocks = src.len() / 16;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 16).cast();
            let dp = dst.as_mut_ptr().add(b * 16).cast();
            let s = _mm_loadu_si128(sp);
            let mut p = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            if SPLIT {
                let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
                p = _mm_xor_si128(p, _mm_shuffle_epi8(hi, hi_idx));
            }
            _mm_storeu_si128(dp, _mm_xor_si128(_mm_loadu_si128(dp), p));
        }
        tail_mul_add(t, &src[blocks * 16..], &mut dst[blocks * 16..]);
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    // SAFETY: unaligned loads/stores only; `dp` offsets stay below
    // `blocks * 16 <= dst.len()`, in-place within the one slice.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3<const SPLIT: bool>(t: &NibbleTables, dst: &mut [u8]) {
        let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let blocks = dst.len() / 16;
        for b in 0..blocks {
            let dp: *mut __m128i = dst.as_mut_ptr().add(b * 16).cast();
            let s = _mm_loadu_si128(dp.cast_const());
            let mut p = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            if SPLIT {
                let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
                p = _mm_xor_si128(p, _mm_shuffle_epi8(hi, hi_idx));
            }
            _mm_storeu_si128(dp, p);
        }
        tail_mul(t, &mut dst[blocks * 16..]);
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    // SAFETY: unaligned loads/stores only; `sp`/`dp` offsets stay below
    // `blocks * 32 <= src.len()` and every caller passes equal-length
    // src/dst (public wrapper asserts it; internal tails re-slice both).
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_add_gfni(c: u8, src: &[u8], dst: &mut [u8]) {
        let cv = _mm256_set1_epi8(c as i8);
        let blocks = src.len() / 32;
        for b in 0..blocks {
            let sp = src.as_ptr().add(b * 32).cast();
            let dp = dst.as_mut_ptr().add(b * 32).cast();
            let p = _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp), cv);
            _mm256_storeu_si256(dp, _mm256_xor_si256(_mm256_loadu_si256(dp), p));
        }
        // GF2P8MULB needs no tables — only build them if a tail exists.
        if blocks * 32 < src.len() {
            tail_mul_add(
                &gf256_nibble_tables(c),
                &src[blocks * 32..],
                &mut dst[blocks * 32..],
            );
        }
    }

    /// Fused gather over 128-byte destination tiles: the tile lives in four
    /// ymm accumulators across *all* source rows, so `dst` is read and
    /// written once per pass instead of once per source.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    // SAFETY: unaligned loads/stores only. `dp` tile offsets stay below
    // `tiles * 128 <= dst.len()`; `sp` row offsets stay inside `srcs`
    // because the public wrapper asserts `srcs.len() == factors.len() *
    // dst.len()` and `i < factors.len()`, `base + 127 < rb`.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_add_multi_gfni(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        const TILE: usize = 128;
        let rb = dst.len();
        let tiles = rb / TILE;
        for t in 0..tiles {
            let base = t * TILE;
            let dp = dst.as_mut_ptr().add(base);
            let mut acc0 = _mm256_loadu_si256(dp.cast());
            let mut acc1 = _mm256_loadu_si256(dp.add(32).cast());
            let mut acc2 = _mm256_loadu_si256(dp.add(64).cast());
            let mut acc3 = _mm256_loadu_si256(dp.add(96).cast());
            for (i, &f) in factors.iter().enumerate() {
                if f == 0 {
                    continue;
                }
                let cv = _mm256_set1_epi8(f as i8);
                let sp = srcs.as_ptr().add(i * rb + base);
                acc0 = _mm256_xor_si256(
                    acc0,
                    _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp.cast()), cv),
                );
                acc1 = _mm256_xor_si256(
                    acc1,
                    _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp.add(32).cast()), cv),
                );
                acc2 = _mm256_xor_si256(
                    acc2,
                    _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp.add(64).cast()), cv),
                );
                acc3 = _mm256_xor_si256(
                    acc3,
                    _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp.add(96).cast()), cv),
                );
            }
            _mm256_storeu_si256(dp.cast(), acc0);
            _mm256_storeu_si256(dp.add(32).cast(), acc1);
            _mm256_storeu_si256(dp.add(64).cast(), acc2);
            _mm256_storeu_si256(dp.add(96).cast(), acc3);
        }
        gf256_multi_tail_gfni(factors, srcs, dst, tiles * TILE);
    }

    /// Fused sub-tile tail shared by both gather kernels: everything past
    /// `base` in 32-byte ymm chunks kept in an accumulator across all
    /// sources, then a per-source table tail for the last < 32 bytes.
    /// Short rows (a `k`-byte coefficient slab row is often smaller than a
    /// full tile) would otherwise fall back to one axpy pass per source —
    /// the exact read-`dst`-per-source pattern the fused kernel exists to
    /// avoid.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support, and that `srcs`
    /// holds `factors.len()` rows of `dst.len()` bytes.
    // SAFETY: unaligned loads/stores only; the ymm loop guards
    // `base + 32 <= rb` before touching `dst[base..]` and the caller
    // contract above bounds each `sp` row pointer inside `srcs`.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_multi_tail_gfni(factors: &[u8], srcs: &[u8], dst: &mut [u8], base: usize) {
        let rb = dst.len();
        let mut base = base;
        while base + 32 <= rb {
            let dp = dst.as_mut_ptr().add(base);
            let mut acc = _mm256_loadu_si256(dp.cast());
            for (i, &f) in factors.iter().enumerate() {
                if f == 0 {
                    continue;
                }
                let cv = _mm256_set1_epi8(f as i8);
                let sp = srcs.as_ptr().add(i * rb + base);
                acc =
                    _mm256_xor_si256(acc, _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp.cast()), cv));
            }
            _mm256_storeu_si256(dp.cast(), acc);
            base += 32;
        }
        if base < rb {
            for (i, &f) in factors.iter().enumerate() {
                if f != 0 {
                    gf256_mul_add_gfni(f, &srcs[i * rb + base..(i + 1) * rb], &mut dst[base..]);
                }
            }
        }
    }

    /// As [`gf256_mul_add_multi_gfni`] with 256-byte tiles in four zmm
    /// accumulators.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F, AVX-512BW and AVX2 support.
    // SAFETY: unaligned loads/stores only. Tile and sub-tile loops guard
    // `base + {256,128,64} <= rb` before touching `dst[base..]`; `sp` row
    // offsets stay inside `srcs` (wrapper asserts `srcs.len() ==
    // factors.len() * dst.len()`); `get_unchecked(i)` has `i < n`.
    #[target_feature(enable = "gfni,avx512f,avx512bw,avx2")]
    unsafe fn gf256_mul_add_multi_gfni512(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        const TILE: usize = 256;
        let rb = dst.len();
        let tiles = rb / TILE;
        for t in 0..tiles {
            let base = t * TILE;
            let dp = dst.as_mut_ptr().add(base);
            let mut acc0 = _mm512_loadu_si512(dp.cast());
            let mut acc1 = _mm512_loadu_si512(dp.add(64).cast());
            let mut acc2 = _mm512_loadu_si512(dp.add(128).cast());
            let mut acc3 = _mm512_loadu_si512(dp.add(192).cast());
            for (i, &f) in factors.iter().enumerate() {
                if f == 0 {
                    continue;
                }
                let cv = _mm512_set1_epi8(f as i8);
                let sp = srcs.as_ptr().add(i * rb + base);
                acc0 = _mm512_xor_si512(
                    acc0,
                    _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.cast()), cv),
                );
                acc1 = _mm512_xor_si512(
                    acc1,
                    _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.add(64).cast()), cv),
                );
                acc2 = _mm512_xor_si512(
                    acc2,
                    _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.add(128).cast()), cv),
                );
                acc3 = _mm512_xor_si512(
                    acc3,
                    _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.add(192).cast()), cv),
                );
            }
            _mm512_storeu_si512(dp.cast(), acc0);
            _mm512_storeu_si512(dp.add(64).cast(), acc1);
            _mm512_storeu_si512(dp.add(128).cast(), acc2);
            _mm512_storeu_si512(dp.add(192).cast(), acc3);
        }
        // Fused sub-tile tails. Without these, rows shorter than a full
        // tile would degrade to one axpy pass per source. The 128-byte
        // block (the whole coefficient row of a k = 128 basis) splits the
        // sources between two accumulator pairs so the xor chain is half
        // as deep as a single-accumulator loop.
        let mut base = tiles * TILE;
        while base + 128 <= rb {
            let dp = dst.as_mut_ptr().add(base);
            let mut a0 = _mm512_loadu_si512(dp.cast());
            let mut a1 = _mm512_setzero_si512();
            let mut b0 = _mm512_loadu_si512(dp.add(64).cast());
            let mut b1 = _mm512_setzero_si512();
            let n = factors.len();
            let mut i = 0;
            while i < n {
                let f = *factors.get_unchecked(i);
                if f != 0 {
                    let cv = _mm512_set1_epi8(f as i8);
                    let sp = srcs.as_ptr().add(i * rb + base);
                    a0 = _mm512_xor_si512(
                        a0,
                        _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.cast()), cv),
                    );
                    b0 = _mm512_xor_si512(
                        b0,
                        _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.add(64).cast()), cv),
                    );
                }
                i += 1;
                if i < n {
                    let f = *factors.get_unchecked(i);
                    if f != 0 {
                        let cv = _mm512_set1_epi8(f as i8);
                        let sp = srcs.as_ptr().add(i * rb + base);
                        a1 = _mm512_xor_si512(
                            a1,
                            _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.cast()), cv),
                        );
                        b1 = _mm512_xor_si512(
                            b1,
                            _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.add(64).cast()), cv),
                        );
                    }
                    i += 1;
                }
            }
            _mm512_storeu_si512(dp.cast(), _mm512_xor_si512(a0, a1));
            _mm512_storeu_si512(dp.add(64).cast(), _mm512_xor_si512(b0, b1));
            base += 128;
        }
        while base + 64 <= rb {
            let dp = dst.as_mut_ptr().add(base);
            let mut acc = _mm512_loadu_si512(dp.cast());
            for (i, &f) in factors.iter().enumerate() {
                if f == 0 {
                    continue;
                }
                let cv = _mm512_set1_epi8(f as i8);
                let sp = srcs.as_ptr().add(i * rb + base);
                acc =
                    _mm512_xor_si512(acc, _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp.cast()), cv));
            }
            _mm512_storeu_si512(dp.cast(), acc);
            base += 64;
        }
        gf256_multi_tail_gfni(factors, srcs, dst, base);
    }

    /// Register-blocked BLAS-3 panel: four destination rows × 128 payload
    /// bytes live in eight zmm accumulators while the `c` source rows
    /// stream through, so every loaded source vector feeds four
    /// multiply-accumulates before it leaves registers. The outer loop
    /// walks 128-byte column tiles — one column of all `c` sources
    /// (≤ 16 KiB at c = 128) stays L1-resident while every destination
    /// panel consumes it. Ragged columns finish with a 64-byte pass and an
    /// AVX-512BW byte-masked pass, so no scalar cleanup exists; the `r % 4`
    /// leftover destination rows fall back to one fused gather each.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F, AVX-512BW and AVX2
    /// support, and that `coefs` is `r·c` bytes, `srcs` is `c` rows and
    /// `dsts` is `r` rows of `rb` bytes each (the public wrapper asserts
    /// this).
    // SAFETY: unaligned and byte-masked loads/stores only. The tile loops
    // guard `base + {128,64} <= rb` before touching column `base`, and the
    // masked pass clamps every lane at or past `rb - base` via `k0`, so no
    // access crosses a row end. Panel row indices stay `< panels * 4 <= r`
    // and source indices `j < c`, keeping `dp`/`sp`/`cp` offsets inside
    // their slabs per the caller contract above.
    #[target_feature(enable = "gfni,avx512f,avx512bw,avx2")]
    unsafe fn gf256_mul_add_block_gfni512(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], rb: usize) {
        let c = srcs.len() / rb;
        let r = dsts.len() / rb;
        let panels = r / 4;
        let mut base = 0usize;
        while base + 128 <= rb {
            for p in 0..panels {
                let cp = coefs.as_ptr().add(p * 4 * c);
                let dp = dsts.as_mut_ptr().add(p * 4 * rb + base);
                let mut a0 = _mm512_loadu_si512(dp.cast());
                let mut a1 = _mm512_loadu_si512(dp.add(64).cast());
                let mut b0 = _mm512_loadu_si512(dp.add(rb).cast());
                let mut b1 = _mm512_loadu_si512(dp.add(rb + 64).cast());
                let mut c0 = _mm512_loadu_si512(dp.add(2 * rb).cast());
                let mut c1 = _mm512_loadu_si512(dp.add(2 * rb + 64).cast());
                let mut d0 = _mm512_loadu_si512(dp.add(3 * rb).cast());
                let mut d1 = _mm512_loadu_si512(dp.add(3 * rb + 64).cast());
                // Sources go two at a time so each accumulator update is a
                // single VPTERNLOGD (acc ^ ma ^ mb, imm 0x96) instead of two
                // VPXORDs: GF2P8MULB, VPXORD and VPBROADCASTB all compete
                // for the same two vector ports, so halving the xor count
                // lifts the port-bound ceiling of the whole panel.
                let mut j = 0usize;
                while j + 2 <= c {
                    let f0a = *cp.add(j);
                    let f1a = *cp.add(c + j);
                    let f2a = *cp.add(2 * c + j);
                    let f3a = *cp.add(3 * c + j);
                    let f0b = *cp.add(j + 1);
                    let f1b = *cp.add(c + j + 1);
                    let f2b = *cp.add(2 * c + j + 1);
                    let f3b = *cp.add(3 * c + j + 1);
                    if f0a | f1a | f2a | f3a | f0b | f1b | f2b | f3b == 0 {
                        j += 2;
                        continue;
                    }
                    let spa = srcs.as_ptr().add(j * rb + base);
                    let spb = srcs.as_ptr().add((j + 1) * rb + base);
                    let sa0 = _mm512_loadu_si512(spa.cast());
                    let sa1 = _mm512_loadu_si512(spa.add(64).cast());
                    let sb0 = _mm512_loadu_si512(spb.cast());
                    let sb1 = _mm512_loadu_si512(spb.add(64).cast());
                    let ca = _mm512_set1_epi8(f0a as i8);
                    let cb = _mm512_set1_epi8(f0b as i8);
                    a0 = _mm512_ternarylogic_epi64(
                        a0,
                        _mm512_gf2p8mul_epi8(sa0, ca),
                        _mm512_gf2p8mul_epi8(sb0, cb),
                        0x96,
                    );
                    a1 = _mm512_ternarylogic_epi64(
                        a1,
                        _mm512_gf2p8mul_epi8(sa1, ca),
                        _mm512_gf2p8mul_epi8(sb1, cb),
                        0x96,
                    );
                    let ca = _mm512_set1_epi8(f1a as i8);
                    let cb = _mm512_set1_epi8(f1b as i8);
                    b0 = _mm512_ternarylogic_epi64(
                        b0,
                        _mm512_gf2p8mul_epi8(sa0, ca),
                        _mm512_gf2p8mul_epi8(sb0, cb),
                        0x96,
                    );
                    b1 = _mm512_ternarylogic_epi64(
                        b1,
                        _mm512_gf2p8mul_epi8(sa1, ca),
                        _mm512_gf2p8mul_epi8(sb1, cb),
                        0x96,
                    );
                    let ca = _mm512_set1_epi8(f2a as i8);
                    let cb = _mm512_set1_epi8(f2b as i8);
                    c0 = _mm512_ternarylogic_epi64(
                        c0,
                        _mm512_gf2p8mul_epi8(sa0, ca),
                        _mm512_gf2p8mul_epi8(sb0, cb),
                        0x96,
                    );
                    c1 = _mm512_ternarylogic_epi64(
                        c1,
                        _mm512_gf2p8mul_epi8(sa1, ca),
                        _mm512_gf2p8mul_epi8(sb1, cb),
                        0x96,
                    );
                    let ca = _mm512_set1_epi8(f3a as i8);
                    let cb = _mm512_set1_epi8(f3b as i8);
                    d0 = _mm512_ternarylogic_epi64(
                        d0,
                        _mm512_gf2p8mul_epi8(sa0, ca),
                        _mm512_gf2p8mul_epi8(sb0, cb),
                        0x96,
                    );
                    d1 = _mm512_ternarylogic_epi64(
                        d1,
                        _mm512_gf2p8mul_epi8(sa1, ca),
                        _mm512_gf2p8mul_epi8(sb1, cb),
                        0x96,
                    );
                    j += 2;
                }
                if j < c {
                    let f0 = *cp.add(j);
                    let f1 = *cp.add(c + j);
                    let f2 = *cp.add(2 * c + j);
                    let f3 = *cp.add(3 * c + j);
                    if f0 | f1 | f2 | f3 != 0 {
                        let sp = srcs.as_ptr().add(j * rb + base);
                        let s0 = _mm512_loadu_si512(sp.cast());
                        let s1 = _mm512_loadu_si512(sp.add(64).cast());
                        let cv = _mm512_set1_epi8(f0 as i8);
                        a0 = _mm512_xor_si512(a0, _mm512_gf2p8mul_epi8(s0, cv));
                        a1 = _mm512_xor_si512(a1, _mm512_gf2p8mul_epi8(s1, cv));
                        let cv = _mm512_set1_epi8(f1 as i8);
                        b0 = _mm512_xor_si512(b0, _mm512_gf2p8mul_epi8(s0, cv));
                        b1 = _mm512_xor_si512(b1, _mm512_gf2p8mul_epi8(s1, cv));
                        let cv = _mm512_set1_epi8(f2 as i8);
                        c0 = _mm512_xor_si512(c0, _mm512_gf2p8mul_epi8(s0, cv));
                        c1 = _mm512_xor_si512(c1, _mm512_gf2p8mul_epi8(s1, cv));
                        let cv = _mm512_set1_epi8(f3 as i8);
                        d0 = _mm512_xor_si512(d0, _mm512_gf2p8mul_epi8(s0, cv));
                        d1 = _mm512_xor_si512(d1, _mm512_gf2p8mul_epi8(s1, cv));
                    }
                }
                _mm512_storeu_si512(dp.cast(), a0);
                _mm512_storeu_si512(dp.add(64).cast(), a1);
                _mm512_storeu_si512(dp.add(rb).cast(), b0);
                _mm512_storeu_si512(dp.add(rb + 64).cast(), b1);
                _mm512_storeu_si512(dp.add(2 * rb).cast(), c0);
                _mm512_storeu_si512(dp.add(2 * rb + 64).cast(), c1);
                _mm512_storeu_si512(dp.add(3 * rb).cast(), d0);
                _mm512_storeu_si512(dp.add(3 * rb + 64).cast(), d1);
            }
            base += 128;
        }
        if base + 64 <= rb {
            for p in 0..panels {
                let cp = coefs.as_ptr().add(p * 4 * c);
                let dp = dsts.as_mut_ptr().add(p * 4 * rb + base);
                let mut a0 = _mm512_loadu_si512(dp.cast());
                let mut b0 = _mm512_loadu_si512(dp.add(rb).cast());
                let mut c0 = _mm512_loadu_si512(dp.add(2 * rb).cast());
                let mut d0 = _mm512_loadu_si512(dp.add(3 * rb).cast());
                for j in 0..c {
                    let f0 = *cp.add(j);
                    let f1 = *cp.add(c + j);
                    let f2 = *cp.add(2 * c + j);
                    let f3 = *cp.add(3 * c + j);
                    if f0 | f1 | f2 | f3 == 0 {
                        continue;
                    }
                    let s0 = _mm512_loadu_si512(srcs.as_ptr().add(j * rb + base).cast());
                    let cv = _mm512_set1_epi8(f0 as i8);
                    a0 = _mm512_xor_si512(a0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f1 as i8);
                    b0 = _mm512_xor_si512(b0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f2 as i8);
                    c0 = _mm512_xor_si512(c0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f3 as i8);
                    d0 = _mm512_xor_si512(d0, _mm512_gf2p8mul_epi8(s0, cv));
                }
                _mm512_storeu_si512(dp.cast(), a0);
                _mm512_storeu_si512(dp.add(rb).cast(), b0);
                _mm512_storeu_si512(dp.add(2 * rb).cast(), c0);
                _mm512_storeu_si512(dp.add(3 * rb).cast(), d0);
            }
            base += 64;
        }
        if base < rb {
            let rem = rb - base; // 1..=63
            let k0: __mmask64 = (1u64 << rem) - 1;
            for p in 0..panels {
                let cp = coefs.as_ptr().add(p * 4 * c);
                let dp = dsts.as_mut_ptr().add(p * 4 * rb + base);
                let mut a0 = _mm512_maskz_loadu_epi8(k0, dp.cast());
                let mut b0 = _mm512_maskz_loadu_epi8(k0, dp.add(rb).cast());
                let mut c0 = _mm512_maskz_loadu_epi8(k0, dp.add(2 * rb).cast());
                let mut d0 = _mm512_maskz_loadu_epi8(k0, dp.add(3 * rb).cast());
                for j in 0..c {
                    let f0 = *cp.add(j);
                    let f1 = *cp.add(c + j);
                    let f2 = *cp.add(2 * c + j);
                    let f3 = *cp.add(3 * c + j);
                    if f0 | f1 | f2 | f3 == 0 {
                        continue;
                    }
                    let s0 = _mm512_maskz_loadu_epi8(k0, srcs.as_ptr().add(j * rb + base).cast());
                    let cv = _mm512_set1_epi8(f0 as i8);
                    a0 = _mm512_xor_si512(a0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f1 as i8);
                    b0 = _mm512_xor_si512(b0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f2 as i8);
                    c0 = _mm512_xor_si512(c0, _mm512_gf2p8mul_epi8(s0, cv));
                    let cv = _mm512_set1_epi8(f3 as i8);
                    d0 = _mm512_xor_si512(d0, _mm512_gf2p8mul_epi8(s0, cv));
                }
                _mm512_mask_storeu_epi8(dp.cast(), k0, a0);
                _mm512_mask_storeu_epi8(dp.add(rb).cast(), k0, b0);
                _mm512_mask_storeu_epi8(dp.add(2 * rb).cast(), k0, c0);
                _mm512_mask_storeu_epi8(dp.add(3 * rb).cast(), k0, d0);
            }
        }
        for i in panels * 4..r {
            gf256_mul_add_multi_gfni512(
                &coefs[i * c..(i + 1) * c],
                srcs,
                &mut dsts[i * rb..(i + 1) * rb],
            );
        }
    }

    /// As [`gf256_mul_add_block_gfni512`] with four-row × 64-byte ymm
    /// panels (eight ymm accumulators), a 32-byte column pass, and a
    /// reference product-table scalar tail for the last `rb % 32` bytes.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support, and that `coefs`
    /// is `r·c` bytes, `srcs` is `c` rows and `dsts` is `r` rows of `rb`
    /// bytes each (the public wrapper asserts this).
    // SAFETY: unaligned loads/stores only. The tile loops guard
    // `base + {64,32} <= rb` before touching column `base`; the scalar
    // tail and the leftover-row gathers use checked slices. Panel row
    // indices stay `< panels * 4 <= r` and source indices `j < c`, keeping
    // `dp`/`sp`/`cp` offsets inside their slabs per the caller contract.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_add_block_gfni(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], rb: usize) {
        let c = srcs.len() / rb;
        let r = dsts.len() / rb;
        let panels = r / 4;
        let mut base = 0usize;
        while base + 64 <= rb {
            for p in 0..panels {
                let cp = coefs.as_ptr().add(p * 4 * c);
                let dp = dsts.as_mut_ptr().add(p * 4 * rb + base);
                let mut a0 = _mm256_loadu_si256(dp.cast());
                let mut a1 = _mm256_loadu_si256(dp.add(32).cast());
                let mut b0 = _mm256_loadu_si256(dp.add(rb).cast());
                let mut b1 = _mm256_loadu_si256(dp.add(rb + 32).cast());
                let mut c0 = _mm256_loadu_si256(dp.add(2 * rb).cast());
                let mut c1 = _mm256_loadu_si256(dp.add(2 * rb + 32).cast());
                let mut d0 = _mm256_loadu_si256(dp.add(3 * rb).cast());
                let mut d1 = _mm256_loadu_si256(dp.add(3 * rb + 32).cast());
                for j in 0..c {
                    let f0 = *cp.add(j);
                    let f1 = *cp.add(c + j);
                    let f2 = *cp.add(2 * c + j);
                    let f3 = *cp.add(3 * c + j);
                    if f0 | f1 | f2 | f3 == 0 {
                        continue;
                    }
                    let sp = srcs.as_ptr().add(j * rb + base);
                    let s0 = _mm256_loadu_si256(sp.cast());
                    let s1 = _mm256_loadu_si256(sp.add(32).cast());
                    let cv = _mm256_set1_epi8(f0 as i8);
                    a0 = _mm256_xor_si256(a0, _mm256_gf2p8mul_epi8(s0, cv));
                    a1 = _mm256_xor_si256(a1, _mm256_gf2p8mul_epi8(s1, cv));
                    let cv = _mm256_set1_epi8(f1 as i8);
                    b0 = _mm256_xor_si256(b0, _mm256_gf2p8mul_epi8(s0, cv));
                    b1 = _mm256_xor_si256(b1, _mm256_gf2p8mul_epi8(s1, cv));
                    let cv = _mm256_set1_epi8(f2 as i8);
                    c0 = _mm256_xor_si256(c0, _mm256_gf2p8mul_epi8(s0, cv));
                    c1 = _mm256_xor_si256(c1, _mm256_gf2p8mul_epi8(s1, cv));
                    let cv = _mm256_set1_epi8(f3 as i8);
                    d0 = _mm256_xor_si256(d0, _mm256_gf2p8mul_epi8(s0, cv));
                    d1 = _mm256_xor_si256(d1, _mm256_gf2p8mul_epi8(s1, cv));
                }
                _mm256_storeu_si256(dp.cast(), a0);
                _mm256_storeu_si256(dp.add(32).cast(), a1);
                _mm256_storeu_si256(dp.add(rb).cast(), b0);
                _mm256_storeu_si256(dp.add(rb + 32).cast(), b1);
                _mm256_storeu_si256(dp.add(2 * rb).cast(), c0);
                _mm256_storeu_si256(dp.add(2 * rb + 32).cast(), c1);
                _mm256_storeu_si256(dp.add(3 * rb).cast(), d0);
                _mm256_storeu_si256(dp.add(3 * rb + 32).cast(), d1);
            }
            base += 64;
        }
        if base + 32 <= rb {
            for p in 0..panels {
                let cp = coefs.as_ptr().add(p * 4 * c);
                let dp = dsts.as_mut_ptr().add(p * 4 * rb + base);
                let mut a0 = _mm256_loadu_si256(dp.cast());
                let mut b0 = _mm256_loadu_si256(dp.add(rb).cast());
                let mut c0 = _mm256_loadu_si256(dp.add(2 * rb).cast());
                let mut d0 = _mm256_loadu_si256(dp.add(3 * rb).cast());
                for j in 0..c {
                    let f0 = *cp.add(j);
                    let f1 = *cp.add(c + j);
                    let f2 = *cp.add(2 * c + j);
                    let f3 = *cp.add(3 * c + j);
                    if f0 | f1 | f2 | f3 == 0 {
                        continue;
                    }
                    let s0 = _mm256_loadu_si256(srcs.as_ptr().add(j * rb + base).cast());
                    let cv = _mm256_set1_epi8(f0 as i8);
                    a0 = _mm256_xor_si256(a0, _mm256_gf2p8mul_epi8(s0, cv));
                    let cv = _mm256_set1_epi8(f1 as i8);
                    b0 = _mm256_xor_si256(b0, _mm256_gf2p8mul_epi8(s0, cv));
                    let cv = _mm256_set1_epi8(f2 as i8);
                    c0 = _mm256_xor_si256(c0, _mm256_gf2p8mul_epi8(s0, cv));
                    let cv = _mm256_set1_epi8(f3 as i8);
                    d0 = _mm256_xor_si256(d0, _mm256_gf2p8mul_epi8(s0, cv));
                }
                _mm256_storeu_si256(dp.cast(), a0);
                _mm256_storeu_si256(dp.add(rb).cast(), b0);
                _mm256_storeu_si256(dp.add(2 * rb).cast(), c0);
                _mm256_storeu_si256(dp.add(3 * rb).cast(), d0);
            }
            base += 32;
        }
        if base < rb {
            // Scalar tail through the prebuilt reference product table: no
            // per-coefficient nibble-table builds for a < 32-byte remnant.
            for i in 0..panels * 4 {
                let dst = &mut dsts[i * rb + base..(i + 1) * rb];
                for j in 0..c {
                    let f = coefs[i * c + j];
                    if f != 0 {
                        crate::reference::gf256_mul_add_slice(
                            f,
                            &srcs[j * rb + base..(j + 1) * rb],
                            dst,
                        );
                    }
                }
            }
        }
        for i in panels * 4..r {
            gf256_mul_add_multi_gfni(
                &coefs[i * c..(i + 1) * c],
                srcs,
                &mut dsts[i * rb..(i + 1) * rb],
            );
        }
    }

    /// Fused scatter: each destination row gets `factors[i] · src` in one
    /// pass with the dispatch and constant splat hoisted out of the row
    /// loop; `src` stays cache-hot across rows.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    // SAFETY: unaligned loads/stores only; `sp` stays below `blocks * 32
    // <= src.len()` and `dp` points into `row`, a checked slice of `dsts`
    // with exactly `rb = src.len()` bytes.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_add_scatter_gfni(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        let rb = src.len();
        let blocks = rb / 32;
        for (i, &f) in factors.iter().enumerate() {
            if f == 0 {
                continue;
            }
            let cv = _mm256_set1_epi8(f as i8);
            let row = &mut dsts[i * rb..(i + 1) * rb];
            for b in 0..blocks {
                let sp = src.as_ptr().add(b * 32).cast();
                let dp: *mut __m256i = row.as_mut_ptr().add(b * 32).cast();
                let p = _mm256_gf2p8mul_epi8(_mm256_loadu_si256(sp), cv);
                _mm256_storeu_si256(dp, _mm256_xor_si256(_mm256_loadu_si256(dp.cast_const()), p));
            }
            if blocks * 32 < rb {
                gf256_mul_add_gfni(f, &src[blocks * 32..], &mut row[blocks * 32..]);
            }
        }
    }

    /// As [`gf256_mul_add_scatter_gfni`] with 64-byte zmm blocks.
    ///
    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F, AVX-512BW and AVX2 support.
    // SAFETY: unaligned loads/stores only; `sp` stays below `blocks * 64
    // <= src.len()` and `dp` points into `row`, a checked slice of `dsts`
    // with exactly `rb = src.len()` bytes.
    #[target_feature(enable = "gfni,avx512f,avx512bw,avx2")]
    unsafe fn gf256_mul_add_scatter_gfni512(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        let rb = src.len();
        let blocks = rb / 64;
        for (i, &f) in factors.iter().enumerate() {
            if f == 0 {
                continue;
            }
            let cv = _mm512_set1_epi8(f as i8);
            let row = &mut dsts[i * rb..(i + 1) * rb];
            for b in 0..blocks {
                let sp = src.as_ptr().add(b * 64).cast();
                let dp = row.as_mut_ptr().add(b * 64);
                let p = _mm512_gf2p8mul_epi8(_mm512_loadu_si512(sp), cv);
                _mm512_storeu_si512(
                    dp.cast(),
                    _mm512_xor_si512(_mm512_loadu_si512(dp.cast()), p),
                );
            }
            if blocks * 64 < rb {
                gf256_mul_add_gfni(f, &src[blocks * 64..], &mut row[blocks * 64..]);
            }
        }
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    // SAFETY: unaligned loads/stores only; `dp` offsets stay below
    // `blocks * 32 <= dst.len()`, in-place within the one slice.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn gf256_mul_gfni(c: u8, dst: &mut [u8]) {
        let cv = _mm256_set1_epi8(c as i8);
        let blocks = dst.len() / 32;
        for b in 0..blocks {
            let dp: *mut __m256i = dst.as_mut_ptr().add(b * 32).cast();
            let p = _mm256_gf2p8mul_epi8(_mm256_loadu_si256(dp.cast_const()), cv);
            _mm256_storeu_si256(dp, p);
        }
        if blocks * 32 < dst.len() {
            tail_mul(&gf256_nibble_tables(c), &mut dst[blocks * 32..]);
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod detail {
    //! Non-x86-64 hosts: the SIMD rung is a transparent alias of SWAR.
    use crate::wide;

    pub(super) fn supported() -> bool {
        false
    }

    pub(super) fn level_name() -> &'static str {
        "swar-fallback"
    }

    pub(super) fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        wide::gf256_mul_add_slice(c, src, dst);
    }

    pub(super) fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
        wide::gf256_mul_slice(c, dst);
    }

    pub(super) fn gf256_mul_add_multi(factors: &[u8], srcs: &[u8], dst: &mut [u8]) {
        for (&f, row) in factors.iter().zip(srcs.chunks_exact(dst.len())) {
            if f != 0 {
                wide::gf256_mul_add_slice(f, row, dst);
            }
        }
    }

    pub(super) fn gf256_mul_add_scatter(factors: &[u8], src: &[u8], dsts: &mut [u8]) {
        for (&f, row) in factors.iter().zip(dsts.chunks_exact_mut(src.len())) {
            if f != 0 {
                wide::gf256_mul_add_slice(f, src, row);
            }
        }
    }

    pub(super) fn gf256_mul_add_block(coefs: &[u8], srcs: &[u8], dsts: &mut [u8], rb: usize) {
        let c = srcs.len() / rb;
        for (panel, dst) in coefs.chunks_exact(c).zip(dsts.chunks_exact_mut(rb)) {
            gf256_mul_add_multi(panel, srcs, dst);
        }
    }

    pub(super) fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        wide::gf16_mul_add_slice(c, src, dst);
    }

    pub(super) fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
        wide::gf16_mul_slice(c, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_matches_reference_across_block_boundaries() {
        let src: Vec<u8> = (0..200u8)
            .map(|b| b.wrapping_mul(101).wrapping_add(7))
            .collect();
        for c in [0u8, 1, 2, 0x57, 0x8E, 0xFF] {
            for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 47, 64, 95, 200] {
                let mut want = vec![0xC3u8; len];
                crate::reference::gf256_mul_add_slice(c, &src[..len], &mut want);
                let mut got = vec![0xC3u8; len];
                gf256_mul_add_slice(c, &src[..len], &mut got);
                assert_eq!(got, want, "gf256 axpy c={c} len={len}");

                let mut want_mul = src[..len].to_vec();
                crate::reference::gf256_mul_slice(c, &mut want_mul);
                let mut got_mul = src[..len].to_vec();
                gf256_mul_slice(c, &mut got_mul);
                assert_eq!(got_mul, want_mul, "gf256 mul c={c} len={len}");
            }
        }
    }

    #[test]
    fn simd_gf16_matches_reference_with_dirty_high_nibbles() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in 0..16u8 {
            for len in [0usize, 13, 16, 40, 256] {
                let mut want = vec![0x09u8; len];
                crate::reference::gf16_mul_add_slice(c, &src[..len], &mut want);
                let mut got = vec![0x09u8; len];
                gf16_mul_add_slice(c, &src[..len], &mut got);
                assert_eq!(got, want, "gf16 axpy c={c} len={len}");
            }
        }
    }

    #[test]
    fn fused_multi_matches_reference_loop_across_tile_boundaries() {
        // Row lengths straddle the 128-byte (AVX2) and 256-byte (AVX-512)
        // tile sizes plus the sub-32-byte scalar tail.
        let factors: Vec<u8> = vec![0x00, 0x01, 0x57, 0x8E, 0xFF, 0x02, 0x00, 0xC3];
        let srcs: Vec<u8> = (0..factors.len() * 520)
            .map(|i| (i as u8).wrapping_mul(167).wrapping_add(13))
            .collect();
        for rb in [
            0usize, 1, 31, 32, 33, 127, 128, 129, 255, 256, 257, 300, 511, 512, 520,
        ] {
            let packed: Vec<u8> = srcs
                .chunks_exact(520)
                .flat_map(|row| row[..rb].to_vec())
                .collect();
            let mut want = vec![0x5Au8; rb];
            for (f, row) in factors.iter().zip(packed.chunks_exact(rb.max(1))) {
                crate::reference::gf256_mul_add_slice(*f, row, &mut want);
            }
            let mut got = vec![0x5Au8; rb];
            gf256_mul_add_multi(&factors, &packed, &mut got);
            assert_eq!(got, want, "fused gather rb={rb}");
        }
    }

    #[test]
    fn blocked_panel_matches_reference_loop_across_tile_boundaries() {
        // Panel shapes straddle the 4-row register panel and every column
        // pass (128/64-byte zmm tiles, 64/32-byte ymm tiles, masked and
        // scalar tails).
        for (r, c) in [(1usize, 1usize), (2, 3), (4, 4), (5, 2), (7, 9), (8, 17)] {
            let coefs: Vec<u8> = (0..r * c)
                .map(|i| (i as u8).wrapping_mul(73).wrapping_add(5) % 7)
                .map(|v| if v == 3 { 0 } else { v.wrapping_mul(41) })
                .collect();
            for rb in [1usize, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200, 256, 300] {
                let srcs: Vec<u8> = (0..c * rb)
                    .map(|i| (i as u8).wrapping_mul(167).wrapping_add(13))
                    .collect();
                let init: Vec<u8> = (0..r * rb).map(|i| (i as u8).wrapping_mul(29)).collect();
                let mut want = init.clone();
                for (panel, dst) in coefs.chunks_exact(c).zip(want.chunks_exact_mut(rb)) {
                    for (f, row) in panel.iter().zip(srcs.chunks_exact(rb)) {
                        crate::reference::gf256_mul_add_slice(*f, row, dst);
                    }
                }
                let mut got = init.clone();
                gf256_mul_add_block(&coefs, &srcs, &mut got, rb);
                assert_eq!(got, want, "blocked panel r={r} c={c} rb={rb}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn detection_reports_a_level() {
        // On any x86-64 made this century the rung is at least SSSE3.
        assert!(supported(), "SIMD rung unsupported: {}", level_name());
    }
}
