//! GF(2⁴): the 16-element binary extension field.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::kernel::Kernel;
use crate::slab::{xor_slice, SlabField};

/// Reduction polynomial x⁴ + x + 1 (0b1_0011), primitive over GF(2).
const POLY: u16 = 0b1_0011;

/// An element of GF(2⁴), stored in the low nibble of a byte.
///
/// Nibble-sized symbols halve coefficient overhead relative to GF(2⁸) while
/// keeping the redundancy probability `1/q = 1/16` low; they are a common
/// operating point for RLNC over small generations.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf16};
///
/// let a = Gf16::new(0x6);
/// let b = Gf16::new(0xB);
/// assert_eq!((a * b) * b.inv().unwrap(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf16(u8);

struct Tables {
    mul: [[u8; 16]; 16],
    inv: [u8; 16],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut mul = [[0u8; 16]; 16];
        for a in 0..16u16 {
            for (b, slot) in mul[a as usize].iter_mut().enumerate() {
                *slot = carryless_mod(a, b as u16);
            }
        }
        let mut inv = [0u8; 16];
        for a in 1..16usize {
            let b = mul[a]
                .iter()
                .position(|&p| p == 1)
                .expect("every nonzero GF(16) element has an inverse");
            inv[a] = b as u8;
        }
        Tables { mul, inv }
    })
}

/// Carry-less (polynomial) multiplication followed by reduction mod POLY.
fn carryless_mod(a: u16, b: u16) -> u8 {
    let mut prod: u16 = 0;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            prod ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    // Reduce the (up to 7-bit) product modulo the degree-4 polynomial.
    for shift in (4..8).rev() {
        if prod & (1 << shift) != 0 {
            prod ^= POLY << (shift - 4);
        }
    }
    (prod & 0xF) as u8
}

/// The 16-entry product row for multiplier `c` — the reference kernel's
/// per-`c` table (`crate::reference::gf16_mul_add_slice`).
pub(crate) fn mul_row(c: u8) -> &'static [u8; 16] {
    &tables().mul[(c & 0xF) as usize]
}

impl Gf16 {
    /// Creates an element from the low nibble of `v`.
    #[must_use]
    pub fn new(v: u8) -> Self {
        Gf16(v & 0xF)
    }

    /// The raw nibble value (0..=15).
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl Field for Gf16 {
    const ZERO: Self = Gf16(0);
    const ONE: Self = Gf16(1);
    const SIZE: u64 = 16;

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf16(tables().inv[self.0 as usize]))
        }
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Gf16(rng.gen::<u8>() & 0xF)
    }

    fn from_u64(v: u64) -> Self {
        Gf16((v & 0xF) as u8)
    }

    fn to_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl SlabField for Gf16 {
    const SYMBOL_BYTES: usize = 1;

    fn write_symbol(self, dst: &mut [u8]) {
        dst[0] = self.0;
    }

    fn read_symbol(src: &[u8]) -> Self {
        Gf16(src[0] & 0xF)
    }

    fn add_slice(src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
        xor_slice(src, dst);
    }

    fn mul_slice(c: Self, dst: &mut [u8]) {
        // Short rows keep the reference kernel — see `Gf256::mul_slice`.
        if dst.len() < crate::kernel::SHORT_ROW_BYTES {
            return crate::reference::gf16_mul_slice(c.0, dst);
        }
        match Kernel::active() {
            Kernel::Reference => crate::reference::gf16_mul_slice(c.0, dst),
            Kernel::Swar => crate::wide::gf16_mul_slice(c.0, dst),
            Kernel::Simd => crate::simd::gf16_mul_slice(c.0, dst),
        }
    }

    fn mul_add_slice(c: Self, src: &[u8], dst: &mut [u8]) {
        if dst.len() < crate::kernel::SHORT_ROW_BYTES {
            return crate::reference::gf16_mul_add_slice(c.0, src, dst);
        }
        match Kernel::active() {
            Kernel::Reference => crate::reference::gf16_mul_add_slice(c.0, src, dst),
            Kernel::Swar => crate::wide::gf16_mul_add_slice(c.0, src, dst),
            Kernel::Simd => crate::simd::gf16_mul_add_slice(c.0, src, dst),
        }
    }
}

impl fmt::Display for Gf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl Add for Gf16 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf16(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf16 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf16 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Gf16(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf16 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf16 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Gf16(tables().mul[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf16 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Gf16 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

// Test-only duplicate probes: insert/contains, order never observed.
#[allow(clippy::disallowed_types)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_by_generator_cycles_through_all_nonzero() {
        // x (= 2) is a generator for the chosen primitive polynomial.
        let g = Gf16::new(2);
        let mut seen = std::collections::HashSet::new();
        let mut acc = Gf16::ONE;
        for _ in 0..15 {
            seen.insert(acc);
            acc *= g;
        }
        assert_eq!(acc, Gf16::ONE, "generator order must be 15");
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn inverse_table_is_total_on_nonzero() {
        for v in 1..16u8 {
            let a = Gf16::new(v);
            let ai = a.inv().expect("invertible");
            assert_eq!(a * ai, Gf16::ONE);
        }
        assert!(Gf16::ZERO.inv().is_none());
    }

    #[test]
    fn known_products() {
        // (x+1)(x^2+x) = x^3 + x  -> 3 * 6 = 0b1010 = 10 (no reduction needed)
        assert_eq!(Gf16::new(3) * Gf16::new(6), Gf16::new(10));
        // x^3 * x = x^4 = x + 1 -> 8 * 2 = 3
        assert_eq!(Gf16::new(8) * Gf16::new(2), Gf16::new(3));
    }

    #[test]
    fn new_masks_high_bits() {
        assert_eq!(Gf16::new(0xFF), Gf16::new(0xF));
    }
}
