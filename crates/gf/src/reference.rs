//! The PR 2 product-table slab kernels, preserved as the reference rung.
//!
//! These are the byte-at-a-time kernels that [`crate::Gf256`] and
//! [`crate::Gf16`] shipped with before the wide-word rework: one product-
//! table row per multiplier, one bounds-elided load plus an XOR per byte.
//! They are kept verbatim for two jobs:
//!
//! 1. **Differential testing** — the `proptest_kernels` suite replays every
//!    geometry through this rung, the SWAR rung ([`crate::wide`]) and the
//!    SIMD rung ([`crate::simd`]) and asserts bit-identical output.
//! 2. **Benchmarking** — `bench_rlnc_throughput` times the ladder against
//!    this rung; the committed ≥ 2× decode-throughput gate is measured
//!    relative to it.
//!
//! Select it at runtime with `AG_GF_KERNEL=reference` or
//! [`crate::kernel::set_kernel`]. Like every rung, these functions are
//! total in `c` (the 0 and 1 fast paths live here too, so a rung is a
//! complete implementation on its own).

use crate::slab::xor_slice;

/// `dst[i] = c · dst[i]` over GF(2⁸), one product-table load per byte.
pub fn gf256_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let row = &crate::gf256::mul_table()[c as usize];
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

/// `dst[i] ^= c · src[i]` over GF(2⁸) — the PR 2 axpy kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf256_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    let row = &crate::gf256::mul_table()[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// `dst[i] = c · dst[i]` over GF(2⁴) (one symbol per byte, low nibble).
pub fn gf16_mul_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let row = crate::gf16::mul_row(c);
    for d in dst.iter_mut() {
        *d = row[(*d & 0xF) as usize];
    }
}

/// `dst[i] ^= c · src[i]` over GF(2⁴).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gf16_mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slab operands must have equal length");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    let row = crate::gf16::mul_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[(*s & 0xF) as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf16, Gf256};

    #[test]
    fn gf256_kernels_match_scalar_field_ops() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 3, 0x57, 0xFF] {
            let mut axpy = vec![0xAA; 256];
            gf256_mul_add_slice(c, &src, &mut axpy);
            let mut mul = src.clone();
            gf256_mul_slice(c, &mut mul);
            for (i, &s) in src.iter().enumerate() {
                let prod = (Gf256::new(c) * Gf256::new(s)).value();
                assert_eq!(axpy[i], 0xAA ^ prod, "axpy c={c} i={i}");
                assert_eq!(mul[i], prod, "mul c={c} i={i}");
            }
        }
    }

    #[test]
    fn gf16_kernels_match_scalar_field_ops() {
        let src: Vec<u8> = (0..16u8).collect();
        for c in 0..16u8 {
            let mut axpy = vec![0x05; 16];
            gf16_mul_add_slice(c, &src, &mut axpy);
            let mut mul = src.clone();
            gf16_mul_slice(c, &mut mul);
            for (i, &s) in src.iter().enumerate() {
                let prod = (Gf16::new(c) * Gf16::new(s)).value();
                assert_eq!(axpy[i], 0x05 ^ prod, "axpy c={c} i={i}");
                assert_eq!(mul[i], prod, "mul c={c} i={i}");
            }
        }
    }

    #[test]
    fn gf16_kernels_mask_noncanonical_high_nibbles() {
        // The PR 2 kernels read only the low nibble of each source byte;
        // the wide rungs must match (pinned by proptest_kernels).
        let src = [0xF3u8, 0x2A];
        let mut dst = [0u8; 2];
        gf16_mul_add_slice(2, &src, &mut dst);
        assert_eq!(dst[0], (Gf16::new(2) * Gf16::new(3)).value());
        assert_eq!(dst[1], (Gf16::new(2) * Gf16::new(0xA)).value());
    }

    #[test]
    fn identity_and_annihilator_fast_paths() {
        let src = [7u8, 9];
        let mut dst = [1u8, 2];
        gf256_mul_add_slice(0, &src, &mut dst);
        assert_eq!(dst, [1, 2]);
        gf256_mul_add_slice(1, &src, &mut dst);
        assert_eq!(dst, [1 ^ 7, 2 ^ 9]);
        let mut z = [3u8, 4];
        gf256_mul_slice(0, &mut z);
        assert_eq!(z, [0, 0]);
        let mut one = [3u8, 4];
        gf16_mul_slice(1, &mut one);
        assert_eq!(one, [3, 4]);
        let _ = Gf256::ONE; // silence unused-import lint paths in cfg(test)
    }
}
