//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] and returns an
//! [`ExperimentReport`]; the `src/bin/*` binaries print single experiments,
//! and `src/bin/all_experiments` runs the whole suite and rewrites
//! `EXPERIMENTS.md`. Experiment IDs follow DESIGN.md §5.
//!
//! Scale: every experiment takes a [`Scale`]; `Scale::Quick` keeps the
//! whole suite under ~a minute (and is what `cargo bench` runs inside
//! `benches/tables.rs`), `Scale::Full` uses larger n and more trials for
//! the committed EXPERIMENTS.md numbers. Set `AG_BENCH_SCALE=full` to
//! upgrade the binaries.

pub mod common;
pub mod experiments;

pub use common::{median_rounds_protocol, ExperimentReport, Scale};

/// All experiments in DESIGN.md §5 order.
#[must_use]
pub fn all_reports(scale: Scale) -> Vec<ExperimentReport> {
    vec![
        experiments::table1::run(scale),
        experiments::table2::run(scale),
        experiments::queue_fig::run(scale),
        experiments::brr_fig::run(scale),
        experiments::scaling_fig::run(scale),
        experiments::barbell_fig::run(scale),
        experiments::progress_fig::run(scale),
        experiments::stopping_time::run(scale),
        experiments::ablation::run(scale),
        experiments::dynamic_fig::run(scale),
    ]
}
