//! Shared experiment plumbing: scales, trial plans, report formatting.

use ag_gf::SlabField;
use ag_graph::Graph;
use ag_sim::{EngineConfig, TimeModel};
use algebraic_gossip::{ProtocolKind, RunSpec, TrialPlan};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes / few trials — the `cargo bench` configuration.
    Quick,
    /// The sizes used for the committed `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Reads `AG_BENCH_SCALE`: any capitalization of `full` upgrades,
    /// everything else (including unset or invalid values) stays `Quick`.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_value(std::env::var("AG_BENCH_SCALE").ok().as_deref())
    }

    /// [`Self::from_env`] on an explicit value (separated for testing).
    #[must_use]
    pub fn from_value(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.trim().eq_ignore_ascii_case("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of trials per measured cell.
    #[must_use]
    pub fn trials(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 7,
        }
    }

    /// A [`TrialPlan`] carrying this scale's trial count — the default
    /// way an experiment turns "one measured cell" into trials.
    #[must_use]
    pub fn plan(self, seed0: u64) -> TrialPlan {
        TrialPlan::new(self.trials(), seed0)
    }
}

/// One regenerated table/figure: id, title, rendered text (stdout) and a
/// Markdown section for `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// DESIGN.md §5 experiment id (e.g. "T1", "F1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Plain-text rendering for the terminal.
    pub text: String,
    /// Markdown section body for EXPERIMENTS.md.
    pub markdown: String,
}

impl ExperimentReport {
    /// Prints the plain-text rendering with a banner.
    pub fn print(&self) {
        println!("==== [{}] {} ====", self.id, self.title);
        println!("{}", self.text);
    }
}

/// Median synchronous/asynchronous rounds of a protocol over trials: a
/// thin wrapper over [`TrialPlan`]. Panics if any trial fails to complete
/// or decode — experiments must be sized so that completion is certain.
#[must_use]
pub fn median_rounds_protocol<F: SlabField>(
    graph: &Graph,
    kind: ProtocolKind,
    k: usize,
    time: TimeModel,
    trials: u64,
    seed0: u64,
) -> f64 {
    let mut base = RunSpec::new(kind, k);
    base.engine = match time {
        TimeModel::Synchronous => EngineConfig::synchronous(0),
        TimeModel::Asynchronous => EngineConfig::asynchronous(0),
    }
    .with_max_rounds(20_000_000);
    TrialPlan::new(trials, seed0)
        .run::<F>(graph, &base)
        .expect("valid spec")
        .expect_all_ok(&format!("{kind:?} on n={} k={k}", graph.n()))
        .median_rounds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::Gf256;
    use ag_graph::builders;

    #[test]
    fn scale_trials_ordering() {
        assert!(Scale::Full.trials() > Scale::Quick.trials());
    }

    #[test]
    fn scale_parsing_is_case_insensitive_and_rejects_garbage() {
        assert_eq!(Scale::from_value(Some("full")), Scale::Full);
        assert_eq!(Scale::from_value(Some("FULL")), Scale::Full);
        assert_eq!(Scale::from_value(Some("Full")), Scale::Full);
        assert_eq!(Scale::from_value(Some("fUlL")), Scale::Full);
        assert_eq!(Scale::from_value(Some("  full ")), Scale::Full);
        assert_eq!(Scale::from_value(Some("quick")), Scale::Quick);
        assert_eq!(Scale::from_value(Some("")), Scale::Quick);
        assert_eq!(Scale::from_value(Some("fullest")), Scale::Quick);
        assert_eq!(Scale::from_value(Some("banana")), Scale::Quick);
        assert_eq!(Scale::from_value(None), Scale::Quick);
    }

    // No set_var-based test for from_env: mutating the process
    // environment races with the concurrent getenv calls other test
    // threads make (the rayon shim reads RAYON_NUM_THREADS), which is
    // undefined behavior on glibc. from_value covers the parsing;
    // from_env is a one-line env read over it, exercised end-to-end by
    // the AG_BENCH_SCALE=FuLL runs in CI and the verify flow.

    #[test]
    fn scale_plans_carry_trial_counts() {
        assert_eq!(Scale::Quick.plan(9).trials(), Scale::Quick.trials());
        assert_eq!(Scale::Full.plan(9).trials(), Scale::Full.trials());
        assert_eq!(Scale::Quick.plan(9).seed0(), 9);
    }

    #[test]
    fn median_is_deterministic() {
        let g = builders::cycle(8).unwrap();
        let a = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            4,
            TimeModel::Synchronous,
            3,
            1,
        );
        let b = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            4,
            TimeModel::Synchronous,
            3,
            1,
        );
        assert_eq!(a, b);
        assert!(a >= 2.0, "k/2 lower bound");
    }
}
