//! Shared experiment plumbing: scales, medians, report formatting.

use ag_gf::Field;
use ag_graph::Graph;
use ag_sim::{EngineConfig, TimeModel};
use algebraic_gossip::{run_protocol, ProtocolKind, RunSpec};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes / few trials — the `cargo bench` configuration.
    Quick,
    /// The sizes used for the committed `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Reads `AG_BENCH_SCALE` (`quick` default, `full` to upgrade).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("AG_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of trials per measured cell.
    #[must_use]
    pub fn trials(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 7,
        }
    }
}

/// One regenerated table/figure: id, title, rendered text (stdout) and a
/// Markdown section for `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// DESIGN.md §5 experiment id (e.g. "T1", "F1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Plain-text rendering for the terminal.
    pub text: String,
    /// Markdown section body for EXPERIMENTS.md.
    pub markdown: String,
}

impl ExperimentReport {
    /// Prints the plain-text rendering with a banner.
    pub fn print(&self) {
        println!("==== [{}] {} ====", self.id, self.title);
        println!("{}", self.text);
    }
}

/// Median synchronous/asynchronous rounds of a protocol over trials.
/// Panics if any trial fails to complete or decode — experiments must be
/// sized so that completion is certain.
#[must_use]
pub fn median_rounds_protocol<F: Field>(
    graph: &Graph,
    kind: ProtocolKind,
    k: usize,
    time: TimeModel,
    trials: u64,
    seed0: u64,
) -> f64 {
    let mut rounds: Vec<u64> = (0..trials)
        .map(|t| {
            let seed = seed0.wrapping_add(t.wrapping_mul(0x9E37_79B9));
            let mut spec = RunSpec::new(kind, k).with_seed(seed);
            spec.engine = match time {
                TimeModel::Synchronous => EngineConfig::synchronous(seed ^ 0x5EED),
                TimeModel::Asynchronous => EngineConfig::asynchronous(seed ^ 0x5EED),
            }
            .with_max_rounds(20_000_000);
            let (stats, ok) = run_protocol::<F>(graph, &spec).expect("valid spec");
            assert!(
                stats.completed && ok,
                "experiment run failed: {kind:?} on n={} k={k}",
                graph.n()
            );
            stats.rounds
        })
        .collect();
    rounds.sort_unstable();
    rounds[rounds.len() / 2] as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::Gf256;
    use ag_graph::builders;

    #[test]
    fn scale_trials_ordering() {
        assert!(Scale::Full.trials() > Scale::Quick.trials());
    }

    #[test]
    fn median_is_deterministic() {
        let g = builders::cycle(8).unwrap();
        let a = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            4,
            TimeModel::Synchronous,
            3,
            1,
        );
        let b = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            4,
            TimeModel::Synchronous,
            3,
            1,
        );
        assert_eq!(a, b);
        assert!(a >= 2.0, "k/2 lower bound");
    }
}
