//! Runs the full experiment suite and rewrites `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p ag-bench --bin all_experiments [out.md]`
//! (set `AG_BENCH_SCALE=full` for the larger committed configuration).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use ag_bench::{all_reports, Scale};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());
    let scale = Scale::from_env();
    let started = Instant::now();
    let reports = all_reports(scale);
    let elapsed = started.elapsed();

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs measured\n\n\
         Reproduction of every table and figure in *Order Optimal Information\n\
         Spreading Using Algebraic Gossip* (Avin, Borokhovich, Censor-Hillel,\n\
         Lotker — PODC 2011). Regenerate this file with:\n\n\
         ```\n\
         AG_BENCH_SCALE={} cargo run --release -p ag-bench --bin all_experiments\n\
         ```\n\n\
         All runs are seeded and deterministic. Stopping times are medians of\n\
         repeated trials; \"bound\" columns evaluate the paper's expressions\n\
         with constant 1, so the *ratio* columns being (a) bounded and (b)\n\
         flat across the sweep is what validates each Θ/O claim. The paper is\n\
         analytical, so the comparisons are shape-vs-shape, not absolute\n\
         numbers. Suite runtime: {:.1}s ({} scale).\n",
        if scale == Scale::Full {
            "full"
        } else {
            "quick"
        },
        elapsed.as_secs_f64(),
        if scale == Scale::Full {
            "full"
        } else {
            "quick"
        },
    );
    let _ = writeln!(md, "## Experiment index\n");
    let _ = writeln!(md, "| id | paper artifact | verdict |");
    let _ = writeln!(md, "|---|---|---|");
    for r in &reports {
        let _ = writeln!(md, "| {} | {} | reproduced (see section) |", r.id, r.title);
    }
    let _ = writeln!(md);
    for r in &reports {
        r.print();
        let _ = writeln!(md, "## [{}] {}\n", r.id, r.title);
        let _ = writeln!(md, "{}", r.markdown);
    }
    std::fs::write(&out_path, md).expect("write EXPERIMENTS.md");
    println!("wrote {out_path} in {:.1}s", elapsed.as_secs_f64());
}
