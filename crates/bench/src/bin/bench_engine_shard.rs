//! Machine-readable gate for the sharded round loop + rank-bounded arena:
//! asserts the sharded engine's determinism contract (identical stats and
//! per-round trajectory at every shard count), times a shard-count ladder,
//! then drives the two acceptance runs — a rank-only completion at
//! n = 10⁶ and a payload-bearing completion at n = 3·10⁵ — recording
//! wall-clock and the chunked arena's measured bytes (initial, final, and
//! what the old k-rows-per-node preallocation would have pinned up front).
//! Writes `BENCH_engine_shard.json` for future PRs to diff against.
//!
//! The determinism assertion is unconditional: on the 1-core CI container
//! the rayon shim degrades to a serial loop, so `speedup ≈ 1x` across the
//! ladder is expected and acceptable — what must hold everywhere is that
//! shard count (and `RAYON_NUM_THREADS`) cannot change a single bit of
//! the run.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_engine_shard`
//! (optionally `AG_BENCH_SHARD_BIG_N=n`, `AG_BENCH_SHARD_PAYLOAD_N=n`,
//! `AG_BENCH_SHARD_LADDER_N=n` to resize).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use ag_bench::experiments::stopping_time::SweepFamily;
use ag_gf::Gf256;
use ag_graph::Graph;
use ag_sim::{EngineConfig, RunStats, ShardedEngine, TrajectoryHash};
use algebraic_gossip::{AgConfig, AlgebraicGossip, ArenaGrowth, Placement};

const SEED: u64 = 0x5C_A1_E0;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn protocol(graph: &Graph, k: usize, payload_len: usize) -> AlgebraicGossip<Gf256> {
    let cfg = AgConfig::new(k)
        .with_payload_len(payload_len)
        .with_placement(Placement::Spread);
    AlgebraicGossip::<Gf256>::new(graph, &cfg, SEED ^ 0xA6).expect("protocol")
}

struct TracedRun {
    stats: RunStats,
    hash: u64,
    seconds: f64,
}

/// One observed sharded run: per-round (round, total rank) trajectory
/// hashed, wall-clock timed (observer included — identical across the
/// ladder, so relative timings stay comparable).
fn traced_run(graph: &Graph, k: usize, shards: usize) -> TracedRun {
    let mut proto = protocol(graph, k, 0);
    let mut hash = TrajectoryHash::new();
    let t = Instant::now();
    let stats = ShardedEngine::new(
        EngineConfig::synchronous(SEED).with_max_rounds(1_000_000),
        shards,
    )
    .run_observed(&mut proto, |round, p| {
        hash.observe(round);
        hash.observe(p.total_rank() as u64);
    });
    let seconds = t.elapsed().as_secs_f64();
    assert!(
        stats.completed,
        "ladder run must complete ({shards} shards)"
    );
    TracedRun {
        stats,
        hash: hash.finish(),
        seconds,
    }
}

struct BigRun {
    n: usize,
    rounds: u64,
    timeslots: u64,
    seconds: f64,
    initial_bytes: usize,
    final_bytes: usize,
    prealloc_bytes: usize,
}

/// Drives a chunked-arena completion run at scale and measures the arena
/// before and after, plus what `ArenaGrowth::Preallocated` would have
/// committed to up front on the same configuration.
fn big_run(graph: &Graph, k: usize, payload_len: usize, shards: usize, label: &str) -> BigRun {
    let prealloc_bytes = {
        let cfg = AgConfig::new(k)
            .with_payload_len(payload_len)
            .with_placement(Placement::Spread)
            .with_arena_growth(ArenaGrowth::Preallocated);
        AlgebraicGossip::<Gf256>::new(graph, &cfg, SEED ^ 0xA6)
            .expect("preallocated protocol")
            .arena_allocated_bytes()
    };
    let mut proto = protocol(graph, k, payload_len);
    let initial_bytes = proto.arena_allocated_bytes();
    let t = Instant::now();
    let stats = ShardedEngine::new(
        EngineConfig::synchronous(SEED).with_max_rounds(1_000_000),
        shards,
    )
    .run_batch(&mut proto);
    let seconds = t.elapsed().as_secs_f64();
    assert!(stats.completed, "{label} run must complete");
    assert_eq!(
        proto.total_rank(),
        graph.n() * k,
        "{label}: every node must reach full rank"
    );
    BigRun {
        n: graph.n(),
        rounds: stats.rounds,
        timeslots: stats.timeslots,
        seconds,
        initial_bytes,
        final_bytes: proto.arena_allocated_bytes(),
        prealloc_bytes,
    }
}

fn main() {
    let ladder_n = env_usize("AG_BENCH_SHARD_LADDER_N", 4096);
    let big_n = env_usize("AG_BENCH_SHARD_BIG_N", 1_000_000);
    let payload_n = env_usize("AG_BENCH_SHARD_PAYLOAD_N", 300_000);
    const LADDER_K: usize = 8;
    const SHARDS: [usize; 4] = [1, 2, 4, 8];

    // --- Determinism + shard ladder at moderate n. ----------------------
    eprintln!("shard ladder at n = {ladder_n} (k = {LADDER_K}, rank-only)…");
    let graph = SweepFamily::RandomRegular.build(ladder_n, SEED ^ 0xB16);
    let runs: Vec<TracedRun> = SHARDS
        .iter()
        .map(|&s| traced_run(&graph, LADDER_K, s))
        .collect();
    let serial = &runs[0];
    for (s, run) in SHARDS.iter().zip(&runs) {
        assert_eq!(
            run.stats, serial.stats,
            "stats diverged at {s} shards — determinism contract broken"
        );
        assert_eq!(
            run.hash, serial.hash,
            "trajectory diverged at {s} shards — determinism contract broken"
        );
        eprintln!(
            "  {s} shard(s): {:.3} s over {} rounds (hash {:#018X}) — {:.2}x vs 1 shard",
            run.seconds,
            run.stats.rounds,
            run.hash,
            serial.seconds / run.seconds
        );
    }
    let deterministic_match = true; // asserted above; recorded for the diff

    // --- Acceptance run 1: rank-only completion at n = 10^6. ------------
    eprintln!("rank-only completion at n = {big_n} (k = {LADDER_K}, 4 shards)…");
    let graph = SweepFamily::RandomRegular.build(big_n, SEED ^ 0xB16);
    let big = big_run(&graph, LADDER_K, 0, 4, "rank-only");
    eprintln!(
        "  n = {}: {} rounds ({} slots) in {:.1} s; arena {} -> {} bytes \
         (prealloc would pin {}; final {:.1} B/node)",
        big.n,
        big.rounds,
        big.timeslots,
        big.seconds,
        big.initial_bytes,
        big.final_bytes,
        big.prealloc_bytes,
        big.final_bytes as f64 / big.n as f64
    );

    // --- Acceptance run 2: payload-bearing completion at n = 3·10^5. ----
    const PAYLOAD_K: usize = 16;
    const PAYLOAD_LEN: usize = 64;
    eprintln!(
        "payload completion at n = {payload_n} (k = {PAYLOAD_K}, {PAYLOAD_LEN}-byte payloads)…"
    );
    let graph = SweepFamily::RandomRegular.build(payload_n, SEED ^ 0x9A7);
    let pay = big_run(&graph, PAYLOAD_K, PAYLOAD_LEN, 4, "payload");
    eprintln!(
        "  n = {}: {} rounds in {:.1} s; arena {} -> {} bytes (prealloc {})",
        pay.n, pay.rounds, pay.seconds, pay.initial_bytes, pay.final_bytes, pay.prealloc_bytes
    );

    // --- JSON. ----------------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"engine_shard\",\n");
    let _ = writeln!(json, "  \"deterministic_match\": {deterministic_match},");
    let _ = writeln!(
        json,
        "  \"shard_ladder\": {{\"family\": \"random 3-regular\", \"n\": {ladder_n}, \
         \"k\": {LADDER_K}, \"payload_len\": 0, \"rounds\": {}, \"trajectory_hash\": \
         \"{:#018X}\", \"runs\": [",
        serial.stats.rounds, serial.hash
    );
    for (i, (s, run)) in SHARDS.iter().zip(&runs).enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {s}, \"seconds\": {:.3}, \"speedup_vs_1_shard\": {:.3}}}{}",
            run.seconds,
            serial.seconds / run.seconds,
            if i + 1 < SHARDS.len() { "," } else { "" }
        );
    }
    json.push_str("  ]},\n");
    for (key, r, k, payload_len, trailer) in [
        ("large_run", &big, LADDER_K, 0usize, ","),
        ("payload_run", &pay, PAYLOAD_K, PAYLOAD_LEN, "\n}"),
    ] {
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"family\": \"random 3-regular\", \"n\": {}, \"k\": {k}, \
             \"payload_len\": {payload_len}, \"shards\": 4, \"completed\": true, \
             \"rounds\": {}, \"timeslots\": {}, \"seconds\": {:.2},",
            r.n, r.rounds, r.timeslots, r.seconds
        );
        let _ = writeln!(
            json,
            "    \"arena_initial_bytes\": {}, \"arena_final_bytes\": {}, \
             \"prealloc_bytes\": {}, \"final_bytes_per_node\": {:.1}}}{trailer}",
            r.initial_bytes,
            r.final_bytes,
            r.prealloc_bytes,
            r.final_bytes as f64 / r.n as f64
        );
    }

    std::fs::write("BENCH_engine_shard.json", &json).expect("write BENCH_engine_shard.json");
    print!("{json}");
}
