//! Machine-readable perf baseline for the reworked engine hot path:
//! times rank-only uniform algebraic gossip at n = 10⁴ on the ring and
//! the complete graph through the reworked stack (fast `ag_sim::Engine`
//! round loop + packed-row messages) against the frozen pre-rework stack
//! (`ag_sim::reference::ReferenceEngine` + `PacketAlgebraicGossip`'s
//! unpack/repack `Packet` messages) on identical seeds, verifies both
//! stacks produce bit-identical `RunStats`, runs the F8 stopping-time
//! sweeps at bench-scale ladders (up to a 10⁵-node completion run on a
//! random 3-regular expander), and writes `BENCH_engine_scale.json` for
//! future PRs to diff against.
//!
//! The headline configuration is the acceptance target: at n = 10⁴,
//! rank-only (`payload_len = 0`, k = 4), the reworked stack must be
//! ≥ 1.5× the pre-rework stack on both the ring and the complete graph.
//! The two stacks differ only in what this PR reworked — loop structure
//! (per-round `Vec` + `HashSet` allocation, delivery-time hash dedup,
//! O(n) completion sweep, always-on observer plumbing) and outbox wire
//! format (`Packet` unpack/repack vs packed rows) — every shared layer
//! (fields, graph, RNG, elimination) is identical, and the asserted
//! stats equality proves the rework changed no simulation result. The
//! ring window is warm-started so the timed rounds exercise the
//! message-bearing regime, not a cold mostly-idle ring.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_engine_scale`
//! (optionally `AG_BENCH_ENGINE_REPS=r`, `AG_BENCH_ENGINE_N=n`,
//! `AG_BENCH_ENGINE_BIG_N=n` to resize).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use ag_bench::experiments::stopping_time::{fit_slope, sweep_family, SweepFamily, SWEEP_K};
use ag_gf::Gf256;
use ag_sim::reference::ReferenceEngine;
use ag_sim::{Engine, EngineConfig, RunStats, TimeModel};
use algebraic_gossip::{AgConfig, AlgebraicGossip, PacketAlgebraicGossip};

const SEED: u64 = 0x5C_A1_E0;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

struct LoopMeasurement {
    family: &'static str,
    n: usize,
    warm_rounds: u64,
    rounds_run: u64,
    ref_ms: f64,
    fast_ms: f64,
    speedup: f64,
}

/// Times `reps` runs of the same seeded, warm-started protocol state
/// through both stacks under a fixed round budget and checks the results
/// are bit-identical. The pre-rework stack is `ReferenceEngine` driving
/// `PacketAlgebraicGossip`; the reworked stack is `Engine::run_batch`
/// driving packed-row `AlgebraicGossip` — same seeds, same coefficients,
/// same eliminations.
fn time_loop(
    family: SweepFamily,
    label: &'static str,
    n: usize,
    warm_rounds: u64,
    budget: u64,
    reps: usize,
) -> LoopMeasurement {
    let graph = family.build(n, SEED);
    // payload_len = 0: rank-only.
    let cfg = AgConfig::new(SWEEP_K);
    // Warm start: advance the protocol so the timed window measures the
    // message-bearing regime (and, as a side effect, faults in the field
    // tables and allocator ahead of the timers).
    let mut warm = AlgebraicGossip::<Gf256>::new(&graph, &cfg, SEED).expect("protocol");
    if warm_rounds > 0 {
        let wcfg = EngineConfig::synchronous(SEED ^ 0xAA).with_max_rounds(warm_rounds);
        let _ = Engine::new(wcfg).run_batch(&mut warm);
    }
    let ecfg = EngineConfig::synchronous(SEED ^ 0xE).with_max_rounds(budget);
    // One untimed run per stack (icache, branch predictors).
    let _ = ReferenceEngine::new(ecfg).run(&mut PacketAlgebraicGossip(warm.clone()));
    let _ = Engine::new(ecfg).run_batch(&mut warm.clone());

    let mut ref_best = f64::INFINITY;
    let mut fast_best = f64::INFINITY;
    let mut ref_stats: Option<RunStats> = None;
    let mut fast_stats: Option<RunStats> = None;
    for _ in 0..reps {
        let mut proto = PacketAlgebraicGossip(warm.clone());
        let t = Instant::now();
        let stats = ReferenceEngine::new(ecfg).run(&mut proto);
        ref_best = ref_best.min(t.elapsed().as_secs_f64());
        ref_stats = Some(stats);

        let mut proto = warm.clone();
        let t = Instant::now();
        let stats = Engine::new(ecfg).run_batch(&mut proto);
        fast_best = fast_best.min(t.elapsed().as_secs_f64());
        fast_stats = Some(stats);
    }
    let ref_stats = ref_stats.expect("reference ran");
    let fast_stats = fast_stats.expect("fast ran");
    assert_eq!(
        ref_stats, fast_stats,
        "{label}: reworked and pre-rework stacks diverged at n = {n}"
    );
    LoopMeasurement {
        family: label,
        n,
        warm_rounds,
        rounds_run: fast_stats.rounds,
        ref_ms: ref_best * 1e3,
        fast_ms: fast_best * 1e3,
        speedup: ref_best / fast_best,
    }
}

struct LargeRun {
    n: usize,
    rounds: u64,
    timeslots: u64,
    seconds: f64,
}

/// The ≥10⁵-node acceptance run: rank-only uniform AG on a random
/// 3-regular expander, driven to completion by the fast loop.
fn large_run(big_n: usize) -> LargeRun {
    let graph = SweepFamily::RandomRegular.build(big_n, SEED ^ 0xB16);
    let cfg = AgConfig::new(SWEEP_K);
    let mut proto = AlgebraicGossip::<Gf256>::new(&graph, &cfg, SEED).expect("protocol");
    let t = Instant::now();
    let stats = Engine::new(EngineConfig::synchronous(SEED).with_max_rounds(1_000_000))
        .run_batch(&mut proto);
    let seconds = t.elapsed().as_secs_f64();
    assert!(stats.completed, "10^5-node run must complete");
    assert_eq!(
        proto.total_rank(),
        graph.n() * SWEEP_K,
        "every node must reach full rank"
    );
    LargeRun {
        n: graph.n(),
        rounds: stats.rounds,
        timeslots: stats.timeslots,
        seconds,
    }
}

struct SlopeRecord {
    family: SweepFamily,
    ns: Vec<usize>,
    medians: Vec<f64>,
    slope: f64,
    r_squared: f64,
}

fn bench_ladder(family: SweepFamily) -> Vec<usize> {
    match family {
        // The implicit K_n representation makes 10⁵ nodes free to build.
        SweepFamily::Complete => vec![1024, 4096, 16_384, 65_536, 100_000],
        SweepFamily::Ring => vec![256, 512, 1024, 2048],
        SweepFamily::Grid => vec![256, 1024, 4096, 16_384],
        SweepFamily::RandomRegular => vec![1024, 4096, 16_384, 65_536],
        SweepFamily::Barbell => vec![24, 48, 64, 96],
    }
}

fn main() {
    let reps = env_usize("AG_BENCH_ENGINE_REPS", 3);
    let n_headline = env_usize("AG_BENCH_ENGINE_N", 10_000);
    let big_n = env_usize("AG_BENCH_ENGINE_BIG_N", 100_000);

    // --- Headline: fast vs reference loop at n = 10^4, rank-only. -------
    eprintln!("timing loops at n = {n_headline} (reps = {reps})…");
    let ring = time_loop(SweepFamily::Ring, "ring", n_headline, 2_500, 256, reps);
    let complete = time_loop(SweepFamily::Complete, "complete", n_headline, 2, 24, reps);
    for m in [&ring, &complete] {
        eprintln!(
            "{} n={}: pre-rework {:.1} ms, reworked {:.1} ms over {} rounds (warm {}) — {:.2}x",
            m.family, m.n, m.ref_ms, m.fast_ms, m.rounds_run, m.warm_rounds, m.speedup
        );
    }
    let met = ring.speedup >= 1.5 && complete.speedup >= 1.5;

    // --- The >= 10^5-node completion run. -------------------------------
    eprintln!("running rank-only AG to completion at n = {big_n}…");
    let big = large_run(big_n);
    eprintln!(
        "random 3-regular n={}: completed in {} rounds ({} slots) in {:.1} s",
        big.n, big.rounds, big.timeslots, big.seconds
    );

    // --- Bench-scale stopping-time sweeps with slope fits. --------------
    let mut slopes = Vec::new();
    for family in SweepFamily::ALL {
        let ns = bench_ladder(family);
        eprintln!("sweeping {} over {ns:?}…", family.label());
        let points = sweep_family(family, &ns, 1, TimeModel::Synchronous, 0xF8);
        let fit = fit_slope(&points);
        eprintln!("  slope {:.3} (R² {:.3})", fit.slope, fit.r_squared);
        slopes.push(SlopeRecord {
            family,
            ns: points.iter().map(|p| p.n).collect(),
            medians: points.iter().map(|p| p.median_rounds).collect(),
            slope: fit.slope,
            r_squared: fit.r_squared,
        });
    }

    // --- JSON. ----------------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"engine_scale\",\n");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"k\": {SWEEP_K}, \"payload_len\": 0, \"n\": {n_headline}, \
         \"requirement\": \">= 1.5x on ring and complete\", \"met\": {met},"
    );
    for (m, trailer) in [(&ring, ","), (&complete, "},")] {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"warm_rounds\": {}, \"rounds\": {}, \"pre_rework_ms\": {:.2}, \
             \"reworked_ms\": {:.2}, \"speedup\": {:.3}}}{}",
            m.family, m.warm_rounds, m.rounds_run, m.ref_ms, m.fast_ms, m.speedup, trailer
        );
    }
    let _ = writeln!(
        json,
        "  \"large_run\": {{\"family\": \"random 3-regular\", \"n\": {}, \"k\": {SWEEP_K}, \
         \"payload_len\": 0, \"completed\": true, \"rounds\": {}, \"timeslots\": {}, \
         \"seconds\": {:.2}}},",
        big.n, big.rounds, big.timeslots, big.seconds
    );
    json.push_str("  \"stopping_time_slopes\": [\n");
    for (i, s) in slopes.iter().enumerate() {
        let k_desc = match s.family {
            SweepFamily::Barbell => "n".to_string(),
            _ => SWEEP_K.to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"family\": \"{}\", \"k\": \"{}\", \"time_model\": \"synchronous\", \
             \"ns\": {:?}, \"median_rounds\": {:?}, \"slope\": {:.3}, \"r_squared\": {:.3}, \
             \"tight_exponent\": {:.1}, \"delta_n_bound_exponent\": {:.1}}}{}",
            s.family.label(),
            k_desc,
            s.ns,
            s.medians,
            s.slope,
            s.r_squared,
            s.family.tight_exponent(),
            s.family.delta_n_exponent(),
            if i + 1 < slopes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"deterministic_match\": true\n}\n");

    std::fs::write("BENCH_engine_scale.json", &json).expect("write BENCH_engine_scale.json");
    print!("{json}");

    // Sanity on the measured physics, then the acceptance criterion.
    let slope_of = |f: SweepFamily| slopes.iter().find(|s| s.family == f).expect("swept").slope;
    assert!(
        slope_of(SweepFamily::Ring) > 0.8,
        "ring must scale ~linearly"
    );
    assert!(
        slope_of(SweepFamily::Barbell) > 1.5,
        "barbell must show its quadratic regime"
    );
    assert!(
        slope_of(SweepFamily::RandomRegular) < 0.35,
        "expander must stay polylog"
    );
    assert!(
        met,
        "engine-scale speedup below 1.5x: ring {:.2}x, complete {:.2}x",
        ring.speedup, complete.speedup
    );
}
