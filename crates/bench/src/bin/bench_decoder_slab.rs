//! Machine-readable perf baseline for the packed slab decoder: times
//! full-generation RLNC decodes through the packed `ag_rlnc::Decoder`
//! against the preserved scalar reference
//! (`ag_linalg::reference::ScalarBasis`) on identical packet streams,
//! verifies both decode to identical messages, and writes
//! `BENCH_decoder_slab.json` for future PRs to diff against.
//!
//! The headline configuration is the acceptance target: GF(256), k = 128,
//! 1024-byte payloads, where the slab path must be ≥ 2× the scalar path.
//!
//! Since the wide-kernel rework, the packed decoder dispatches through
//! `ag_gf::Kernel`. To keep the `scalar`/`slab` columns comparable across
//! PRs, the slab column forces `Kernel::Reference` (the PR 2 table
//! kernels, exactly what this benchmark always measured); a third `wide`
//! column records the same decode on the auto-detected best kernel. The
//! full per-rung ladder lives in `bench_rlnc_throughput`.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_decoder_slab`
//! (optionally `AG_BENCH_DECODER_REPS=n` to resize the timed batch).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use ag_gf::{set_kernel, Gf2, Gf256, Kernel, SlabField};
use ag_linalg::reference::ScalarBasis;
use ag_rlnc::{Decoder, Generation, Packet, Recoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x51AB_DEC0;

struct Config {
    field: &'static str,
    k: usize,
    payload_symbols: usize,
    headline: bool,
}

struct Measurement {
    field: &'static str,
    k: usize,
    payload_symbols: usize,
    payload_bytes: usize,
    reps: usize,
    scalar_ms_per_decode: f64,
    slab_ms_per_decode: f64,
    wide_ms_per_decode: f64,
    scalar_mib_s: f64,
    slab_mib_s: f64,
    wide_mib_s: f64,
    speedup: f64,
    wide_speedup: f64,
    headline: bool,
}

/// Times `reps` full decodes of the same packet stream through both paths.
fn measure<F: SlabField>(cfg: &Config, reps: usize) -> Measurement {
    let mut rng = StdRng::seed_from_u64(SEED);
    let generation = Generation::<F>::random(cfg.k, cfg.payload_symbols, &mut rng);
    let source = Decoder::with_all_messages(&generation);
    // A surplus of coded packets so every rep completes on the same stream.
    let packets: Vec<Packet<F>> = (0..2 * cfg.k + 32)
        .map(|_| Recoder::new(&source).emit(&mut rng).expect("source emits"))
        .collect();

    // Scalar path. Rows are materialized outside the timer: the scalar
    // insert consumes an owned `Vec<F>`, and cloning is not elimination.
    let rows: Vec<Vec<F>> = packets.iter().map(|p| p.clone().into_row()).collect();
    // One untimed decode per path first: faults in the field tables,
    // allocator state and instruction cache outside the measurement.
    set_kernel(Kernel::Reference);
    {
        let mut warm = ScalarBasis::<F>::new(cfg.k);
        for row in &rows {
            if warm.is_full() {
                break;
            }
            let _ = warm.insert(row.clone());
        }
        let mut warm = Decoder::<F>::new(cfg.k, cfg.payload_symbols);
        for p in &packets {
            if warm.is_complete() {
                break;
            }
            let _ = warm.try_receive(p).expect("shape-valid packet");
        }
    }
    let mut scalar_solution = None;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut basis = ScalarBasis::<F>::new(cfg.k);
        for row in &rows {
            if basis.is_full() {
                break;
            }
            let _ = basis.insert(row.clone());
        }
        assert!(basis.is_full(), "stream must complete the scalar decoder");
        scalar_solution = basis.solution();
    }
    let scalar_secs = t0.elapsed().as_secs_f64() / reps as f64;

    // Packed slab path, timed over the same packets (packing included —
    // it is part of the real receive cost). `Kernel::Reference` keeps this
    // column's meaning fixed at the PR 2 kernels across PRs.
    set_kernel(Kernel::Reference);
    let mut slab_solution = None;
    let t1 = Instant::now();
    for _ in 0..reps {
        let mut sink = Decoder::<F>::new(cfg.k, cfg.payload_symbols);
        for p in &packets {
            if sink.is_complete() {
                break;
            }
            let _ = sink.try_receive(p).expect("shape-valid packet");
        }
        assert!(sink.is_complete(), "stream must complete the slab decoder");
        slab_solution = sink.decode();
    }
    let slab_secs = t1.elapsed().as_secs_f64() / reps as f64;

    // The same decode on the auto-detected wide kernel (SWAR or SIMD).
    set_kernel(Kernel::detect_best());
    let mut wide_solution = None;
    let t2 = Instant::now();
    for _ in 0..reps {
        let mut sink = Decoder::<F>::new(cfg.k, cfg.payload_symbols);
        for p in &packets {
            if sink.is_complete() {
                break;
            }
            let _ = sink.try_receive(p).expect("shape-valid packet");
        }
        assert!(sink.is_complete(), "stream must complete the wide decoder");
        wide_solution = sink.decode();
    }
    let wide_secs = t2.elapsed().as_secs_f64() / reps as f64;

    // All paths must agree with each other and with the ground truth.
    let scalar_solution = scalar_solution.expect("scalar decoded");
    let slab_solution = slab_solution.expect("slab decoded");
    let wide_solution = wide_solution.expect("wide decoded");
    assert_eq!(scalar_solution, slab_solution, "decoded output diverged");
    assert_eq!(slab_solution, wide_solution, "wide kernel diverged");
    assert_eq!(slab_solution, generation.messages(), "decode is wrong");

    let payload_bytes = cfg.k * cfg.payload_symbols * F::SYMBOL_BYTES;
    let mib = payload_bytes as f64 / (1024.0 * 1024.0);
    Measurement {
        field: cfg.field,
        k: cfg.k,
        payload_symbols: cfg.payload_symbols,
        payload_bytes,
        reps,
        scalar_ms_per_decode: scalar_secs * 1e3,
        slab_ms_per_decode: slab_secs * 1e3,
        wide_ms_per_decode: wide_secs * 1e3,
        scalar_mib_s: mib / scalar_secs,
        slab_mib_s: mib / slab_secs,
        wide_mib_s: mib / wide_secs,
        speedup: scalar_secs / slab_secs,
        wide_speedup: scalar_secs / wide_secs,
        headline: cfg.headline,
    }
}

fn main() {
    let reps: usize = std::env::var("AG_BENCH_DECODER_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(9);

    let configs = [
        // The acceptance-criterion configuration: GF(256), k = 128,
        // 1024-byte (= 1024-symbol) payloads.
        Config {
            field: "Gf256",
            k: 128,
            payload_symbols: 1024,
            headline: true,
        },
        Config {
            field: "Gf256",
            k: 64,
            payload_symbols: 256,
            headline: false,
        },
        Config {
            field: "Gf2",
            k: 128,
            payload_symbols: 1024,
            headline: false,
        },
    ];

    let results: Vec<Measurement> = configs
        .iter()
        .map(|cfg| match cfg.field {
            "Gf256" => measure::<Gf256>(cfg, reps),
            "Gf2" => measure::<Gf2>(cfg, reps),
            other => unreachable!("unknown field {other}"),
        })
        .collect();

    let headline = results
        .iter()
        .find(|m| m.headline)
        .expect("headline config present");

    let mut json = String::from("{\n  \"bench\": \"decoder_slab\",\n");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"field\": \"{}\", \"k\": {}, \"payload_bytes\": {}, \
         \"speedup\": {:.3}, \"requirement\": \">= 2x\", \"met\": {}, \
         \"wide_kernel\": \"{}\", \"wide_speedup\": {:.3}}},",
        headline.field,
        headline.k,
        headline.payload_bytes,
        headline.speedup,
        headline.speedup >= 2.0,
        ag_gf::simd::level_name(),
        headline.wide_speedup
    );
    json.push_str("  \"configs\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"field\": \"{}\", \"k\": {}, \"payload_symbols\": {}, \
             \"payload_bytes\": {}, \"reps\": {}, \
             \"scalar_ms_per_decode\": {:.3}, \"slab_ms_per_decode\": {:.3}, \
             \"wide_ms_per_decode\": {:.3}, \
             \"scalar_payload_MiB_s\": {:.2}, \"slab_payload_MiB_s\": {:.2}, \
             \"wide_payload_MiB_s\": {:.2}, \
             \"speedup\": {:.3}, \"wide_speedup\": {:.3}}}{}",
            m.field,
            m.k,
            m.payload_symbols,
            m.payload_bytes,
            m.reps,
            m.scalar_ms_per_decode,
            m.slab_ms_per_decode,
            m.wide_ms_per_decode,
            m.scalar_mib_s,
            m.slab_mib_s,
            m.wide_mib_s,
            m.speedup,
            m.wide_speedup,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"deterministic_match\": true\n}\n");

    std::fs::write("BENCH_decoder_slab.json", &json).expect("write BENCH_decoder_slab.json");
    print!("{json}");
    for m in &results {
        eprintln!(
            "{} k={} r={}: scalar {:.2} ms, slab {:.2} ms ({:.2}x), wide {:.2} ms ({:.2}x)",
            m.field,
            m.k,
            m.payload_symbols,
            m.scalar_ms_per_decode,
            m.slab_ms_per_decode,
            m.speedup,
            m.wide_ms_per_decode,
            m.wide_speedup
        );
    }
    assert!(
        headline.speedup >= 2.0,
        "headline slab speedup {:.2}x is below the required 2x",
        headline.speedup
    );
}
