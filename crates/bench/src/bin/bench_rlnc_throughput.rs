//! Machine-readable perf gate for the wide-kernel + arena rework.
//!
//! Two measurements, written to `BENCH_rlnc_throughput.json`:
//!
//! 1. **Kernel ladder** — full-generation GF(256) (and GF(2⁴)) decodes
//!    through `ag_rlnc::Decoder` with each slab-kernel rung forced in turn
//!    (`ag_gf::set_kernel`): the preserved PR 2 product-table path
//!    (`reference`), the portable SWAR split-nibble path (`swar`), and the
//!    runtime-detected SIMD path (`simd`: `PSHUFB` or `GF2P8MULB`). Plus
//!    raw `mul_add_slice` streaming throughput per rung. The acceptance
//!    gate — asserted here and in CI — is GF(256) `k = 128` decode at
//!    **≥ 2×** the reference rung. All rungs must decode bit-identical
//!    messages.
//!
//! 2. **Allocation-free completion run** — uniform algebraic gossip with
//!    `k = 32` messages of 1 KiB payload on a random 3-regular graph at
//!    `n = 10⁵` (quick scale: `n = 10⁴`), with this binary's counting
//!    global allocator snapshotted before the run and at every round
//!    boundary: at most round 1's window may allocate (it carries the
//!    engine's one-time per-run setup — `RunStats` buffers, round
//!    scratch), and every other round must perform **zero** heap
//!    allocations — the decoder arena and the pre-warmed `RowPool` make
//!    the per-message path allocation-free outright. The run must
//!    complete and the first nodes must decode the exact generation.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_rlnc_throughput`
//! (`AG_BENCH_SCALE=full` for the committed n = 10⁵ configuration,
//! `AG_BENCH_RLNC_REPS=n` to resize the timed decode batches).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ag_bench::Scale;
use ag_gf::{set_kernel, Gf16, Gf256, Kernel, SlabField};
use ag_rlnc::{Decoder, Generation, Packet, Recoder};
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, Placement};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocator entry so the round loop can be proven
/// allocation-free (not just leak-free).
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side channel.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const SEED: u64 = 0x51AB_51AB;

/// One rung's decode timing at one configuration.
struct RungMeasurement {
    kernel: &'static str,
    ms_per_decode: f64,
    payload_mib_s: f64,
    /// Raw `mul_add_slice` streaming throughput, MiB/s.
    raw_axpy_mib_s: f64,
}

/// Times `reps` full decodes of one pre-generated packet stream under the
/// currently forced kernel; returns ms/decode and checks the solution.
fn decode_once<F: SlabField>(
    k: usize,
    r: usize,
    packets: &[Packet<F>],
    truth: &[Vec<F>],
    reps: usize,
) -> f64 {
    // Warm cache/tables outside the timer.
    for _ in 0..2 {
        let mut warm = Decoder::<F>::new(k, r);
        for p in packets {
            if warm.is_complete() {
                break;
            }
            let _ = warm.try_receive(p).expect("shape-valid packet");
        }
        assert!(warm.is_complete(), "stream must complete the decoder");
        assert_eq!(warm.decode().expect("complete"), truth, "wrong decode");
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut sink = Decoder::<F>::new(k, r);
        for p in packets {
            if sink.is_complete() {
                break;
            }
            let _ = sink.try_receive(p).expect("shape-valid packet");
        }
        assert!(sink.is_complete(), "stream must complete the decoder");
        std::hint::black_box(sink.rank());
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Raw axpy streaming rate under the forced kernel: `dst ^= c·src` over a
/// 1 MiB row, in MiB/s.
fn raw_axpy_mib_s<F: SlabField>(c: F, reps: usize) -> f64 {
    const LEN: usize = 1 << 20;
    let src = vec![0xA7u8; LEN];
    let mut dst = vec![0x31u8; LEN];
    F::mul_add_slice(c, &src, &mut dst); // warm
    let t0 = Instant::now();
    for _ in 0..reps {
        F::mul_add_slice(c, &src, &mut dst);
        std::hint::black_box(&dst);
    }
    let mib = (LEN * reps) as f64 / (1024.0 * 1024.0);
    mib / t0.elapsed().as_secs_f64()
}

/// Measures the whole ladder at one decode configuration.
fn ladder<F: SlabField>(k: usize, r: usize, c: F, reps: usize) -> Vec<RungMeasurement> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);
    let packets: Vec<Packet<F>> = (0..2 * k + 32)
        .map(|_| Recoder::new(&source).emit(&mut rng).expect("source emits"))
        .collect();
    let truth = generation.messages().to_vec();
    let payload_mib = (k * r * F::SYMBOL_BYTES) as f64 / (1024.0 * 1024.0);

    let mut out = Vec::new();
    for kernel in Kernel::LADDER {
        if !kernel.is_supported() {
            continue;
        }
        let installed = set_kernel(kernel);
        assert_eq!(installed, kernel, "kernel not installed");
        let ms = decode_once::<F>(k, r, &packets, &truth, reps);
        out.push(RungMeasurement {
            kernel: kernel.name(),
            ms_per_decode: ms,
            payload_mib_s: payload_mib / (ms / 1e3),
            raw_axpy_mib_s: raw_axpy_mib_s::<F>(c, 128),
        });
    }
    set_kernel(Kernel::detect_best());
    out
}

/// Result of the allocation-counted completion run.
struct CompletionRun {
    n: usize,
    k: usize,
    payload_bytes: usize,
    rounds: u64,
    seconds: f64,
    /// Last round whose window saw any allocation. With the pre-warmed
    /// `RowPool` this is at most 1: the engine's one-time per-run setup
    /// (`RunStats` buffers, round scratch) allocates inside `run`, ahead
    /// of round 1's loop, and lands in round 1's window.
    warmup_rounds: u64,
    /// Rounds after warm-up: every one of them allocation-free.
    steady_rounds: u64,
    /// Number of rounds whose window saw any allocation at all.
    allocating_rounds: u64,
    /// Total allocator calls across every round window (setup included).
    allocs_during_run: u64,
    completed: bool,
    decode_ok: bool,
}

/// Runs uniform AG with payloads at scale and audits per-round allocations.
fn completion_run(n: usize) -> CompletionRun {
    let k = 32;
    let r = 1024; // 1 KiB payload per message over GF(2^8)
    let mut grng = StdRng::seed_from_u64(SEED ^ 0xE0);
    let graph = ag_graph::builders::random_regular(n, 3, &mut grng).expect("rr(3) graph");
    let cfg = AgConfig::new(k)
        .with_payload_len(r)
        .with_placement(Placement::Spread);
    let mut proto = AlgebraicGossip::<Gf256>::new(&graph, &cfg, SEED).expect("protocol");

    // Per-round allocator snapshots; preallocated so the observer itself
    // never allocates inside the measured loop. The baseline snapshot
    // taken *before* the run makes round 1's window observable too — it
    // additionally covers the engine's per-run setup (`RunStats`, round
    // scratch), which allocates inside `run` ahead of the first round.
    let mut snapshots: Vec<(u64, u64)> = Vec::with_capacity(4096);
    snapshots.push((0, ALLOC_CALLS.load(Ordering::Relaxed)));
    let t0 = Instant::now();
    let stats = Engine::new(EngineConfig::synchronous(SEED ^ 0x1).with_max_rounds(4000))
        .run_observed(&mut proto, |round, _p| {
            snapshots.push((round, ALLOC_CALLS.load(Ordering::Relaxed)));
        });
    let seconds = t0.elapsed().as_secs_f64();

    // Delta per round window; warm-up ends at the last allocating round.
    let mut warmup_rounds = 0u64;
    let mut allocating_rounds = 0u64;
    let mut allocs_during_run = 0u64;
    for w in snapshots.windows(2) {
        let (round, after) = w[1];
        let delta = after - w[0].1;
        if delta > 0 {
            warmup_rounds = round;
            allocating_rounds += 1;
            allocs_during_run += delta;
        }
    }
    let steady_rounds = stats.rounds.saturating_sub(warmup_rounds);
    let decode_ok = stats.completed
        && (0..3.min(n))
            .all(|v| proto.decoded(v).as_deref() == Some(proto.generation().messages()));
    CompletionRun {
        n,
        k,
        payload_bytes: r,
        rounds: stats.rounds,
        seconds,
        warmup_rounds,
        steady_rounds,
        allocating_rounds,
        allocs_during_run,
        completed: stats.completed,
        decode_ok,
    }
}

fn main() {
    let reps: usize = std::env::var("AG_BENCH_RLNC_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(9);
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Full => 100_000,
        Scale::Quick => 10_000,
    };

    let gf256 = ladder::<Gf256>(128, 1024, Gf256::new(0x57), reps);
    let gf16 = ladder::<Gf16>(64, 1024, Gf16::new(0xB), reps);

    let reference = gf256
        .iter()
        .find(|m| m.kernel == "reference")
        .expect("reference rung always runs");
    let best = gf256
        .iter()
        .min_by(|a, b| a.ms_per_decode.total_cmp(&b.ms_per_decode))
        .expect("ladder is nonempty");
    let speedup = reference.ms_per_decode / best.ms_per_decode;

    let run = completion_run(n);

    let mut json = String::from("{\n  \"bench\": \"rlnc_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"field\": \"Gf256\", \"k\": 128, \"payload_symbols\": 1024, \
         \"best_kernel\": \"{}\", \"simd_level\": \"{}\", \"speedup_vs_reference\": {:.3}, \
         \"requirement\": \">= 2x\", \"met\": {}}},",
        best.kernel,
        ag_gf::simd::level_name(),
        speedup,
        speedup >= 2.0
    );
    for (field, rungs) in [("Gf256", &gf256), ("Gf16", &gf16)] {
        let _ = writeln!(json, "  \"ladder_{}\": [", field.to_lowercase());
        for (i, m) in rungs.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"kernel\": \"{}\", \"ms_per_decode\": {:.3}, \
                 \"decode_payload_MiB_s\": {:.2}, \"raw_axpy_MiB_s\": {:.1}}}{}",
                m.kernel,
                m.ms_per_decode,
                m.payload_mib_s,
                m.raw_axpy_mib_s,
                if i + 1 < rungs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "  ],");
    }
    let _ = writeln!(
        json,
        "  \"completion_run\": {{\"n\": {}, \"k\": {}, \"payload_bytes\": {}, \
         \"graph\": \"random_regular(3)\", \"action\": \"exchange\", \"rounds\": {}, \
         \"seconds\": {:.1}, \"warmup_rounds\": {}, \"steady_rounds\": {}, \
         \"allocating_rounds\": {}, \"allocs_during_run\": {}, \
         \"completed\": {}, \"decode_ok\": {}}}",
        run.n,
        run.k,
        run.payload_bytes,
        run.rounds,
        run.seconds,
        run.warmup_rounds,
        run.steady_rounds,
        run.allocating_rounds,
        run.allocs_during_run,
        run.completed,
        run.decode_ok
    );
    json.push_str("}\n");

    std::fs::write("BENCH_rlnc_throughput.json", &json).expect("write BENCH_rlnc_throughput.json");
    print!("{json}");
    for m in &gf256 {
        eprintln!(
            "Gf256 k=128 r=1024 [{}]: {:.2} ms/decode ({:.1} MiB/s payload, raw axpy {:.0} MiB/s)",
            m.kernel, m.ms_per_decode, m.payload_mib_s, m.raw_axpy_mib_s
        );
    }
    eprintln!(
        "completion n={} k=32 r=1KiB: {} rounds in {:.1}s — {} allocating round(s) \
         ({} allocs, engine per-run setup), {} allocation-free steady rounds",
        run.n,
        run.rounds,
        run.seconds,
        run.allocating_rounds,
        run.allocs_during_run,
        run.steady_rounds
    );

    // The acceptance gates.
    assert!(
        speedup >= 2.0,
        "best kernel ({}) is only {speedup:.2}x the reference rung — below the required 2x",
        best.kernel
    );
    assert!(run.completed, "completion run hit the round budget");
    assert!(
        run.decode_ok,
        "completed nodes failed to decode — codec bug"
    );
    // Round 1's window is allowed to carry the engine's one-time per-run
    // setup allocations (`RunStats` buffers, round scratch); every other
    // round — and thus every per-message operation — must be
    // allocation-free.
    assert!(
        run.warmup_rounds <= 1 && run.allocating_rounds <= 1,
        "per-message allocations leaked into the round loop: last allocating \
         round {}, {} allocating rounds",
        run.warmup_rounds,
        run.allocating_rounds
    );
    assert!(
        run.steady_rounds >= 5,
        "too few allocation-free rounds ({}) to call the loop steady",
        run.steady_rounds
    );
}
