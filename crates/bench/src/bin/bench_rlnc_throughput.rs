//! Machine-readable perf gate for the wide-kernel + arena rework.
//!
//! Two measurements, written to `BENCH_rlnc_throughput.json`:
//!
//! 1. **Kernel ladder** — full-generation GF(256) (and GF(2⁴)) decodes
//!    through `ag_rlnc::Decoder` with each slab-kernel rung forced in turn
//!    (`ag_gf::set_kernel`): the preserved PR 2 product-table path
//!    (`reference`), the portable SWAR split-nibble path (`swar`), and the
//!    runtime-detected SIMD path (`simd`: `PSHUFB` or `GF2P8MULB`). Plus
//!    raw `mul_add_slice` streaming throughput per rung. Two timings per
//!    rung since the coefficient/payload split:
//!
//!    - `ms_per_decode` / `decode_payload_MiB_s` — the receive stream to
//!      completion, the exact harness behind the committed pre-split
//!      numbers (the timed loop never called `decode()`). Pre-split this
//!      loop eliminated payloads eagerly on every insert; now it is
//!      coefficient-only plus a raw payload memcpy, which is the point of
//!      the lazy design. Gated at **≥ 5×** the committed eager baseline
//!      (220.76 → ≥ 1103.8 MiB/s) on the best GF(256) rung.
//!    - `stages` — the full decode split per pipeline stage, all under the
//!      library-default `ReplayMode::Auto`: the receive stream, the payload
//!      flush (`Decoder::settle`, timed as stream+settle minus stream) and
//!      the back-substitution/solution unpack (`decode()` minus
//!      stream+settle).
//!    - `batched` — the same stream plus one `decode()` at the end: the
//!      honest full-decode latency. Measured three ways: under `Auto`
//!      (what the library runs), and with the payload replay *forced*
//!      row-wise (`mul_add_multi` gather per logged event, the PR 6
//!      schedule) and *forced* blocked (the transform-panel
//!      `mul_add_block` GEMM schedule) — the `replay` columns that show
//!      what the BLAS-3 schedule buys per rung. The **≥ 2×**
//!      best-vs-reference rung gate applies to the Auto numbers; the
//!      blocked schedule is additionally gated against the committed PR 6
//!      row-wise batched baseline (see `BLOCKED_GATE_FACTOR`).
//!
//!    All rungs must decode bit-identical messages. Note: the forced-swar
//!    rung reports reference-rung speed on GF(256) since the unconditional
//!    SWAR demotion (`GF256_SWAR_LONG_ROW_BYTES = 0`); the bench measures
//!    what the library actually runs, not the bypassed kernel.
//!
//!    A roofline note on the blocked gate: a full k = 128 decode of 1 KiB
//!    rows performs `k² · payload_bytes` ≈ 16.8 M byte-multiplies in the
//!    flush GEMM alone. `bench_gf_block`'s register-only probes put
//!    GF2P8MULB at ~180 G byte-mults/s on this machine (single issue
//!    port; the affine-mixed probe shows no second-port headroom), so the
//!    GEMM floor is ~93 µs against a ~72 µs receive stream — the
//!    flush-inclusive ceiling is ~1.1 GiB/s with everything else free,
//!    and the measured blocked schedule lands at ~1.8× the committed PR 6
//!    baseline (~1.7× the row-wise schedule re-measured in-run), not the
//!    raw-axpy-extrapolated 3×. The gate asserts the demonstrated
//!    multiple with noise margin.
//!
//! 2. **Allocation-free completion run** — uniform algebraic gossip with
//!    `k = 32` messages of 1 KiB payload on a random 3-regular graph at
//!    `n = 10⁵` (quick scale: `n = 10⁴`), with this binary's counting
//!    global allocator snapshotted before the run and at every round
//!    boundary: at most round 1's window may allocate (it carries the
//!    engine's one-time per-run setup — `RunStats` buffers, round
//!    scratch), and every other round must perform **zero** heap
//!    allocations — the decoder arena and the pre-warmed `RowPool` make
//!    the per-message path allocation-free outright. The run must
//!    complete and the first nodes must decode the exact generation.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_rlnc_throughput`
//! (`AG_BENCH_SCALE=full` for the committed n = 10⁵ configuration,
//! `AG_BENCH_RLNC_REPS=n` to resize the timed decode batches).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ag_bench::Scale;
use ag_gf::{set_kernel, Gf16, Gf256, Kernel, SlabField};
use ag_linalg::{set_replay_mode, ReplayMode};
use ag_rlnc::{Decoder, Generation, Packet, Recoder};
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, ArenaGrowth, Placement};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocator entry so the round loop can be proven
/// allocation-free (not just leak-free).
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side channel.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwards `layout` untouched to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    // SAFETY: forwards the caller's `ptr`/`layout`/`new_size` (valid per
    // the GlobalAlloc contract) untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwards the caller's `ptr`/`layout` (valid per the
    // GlobalAlloc contract) untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const SEED: u64 = 0x51AB_51AB;

/// Receive-stream decode throughput committed before the
/// coefficient/payload split (eager inline elimination, identical
/// harness): GF(256) `k = 128`, 1 KiB payloads, GFNI rung. The lazy
/// decode path must beat it by at least [`DECODE_GATE_FACTOR`].
const EAGER_BASELINE_MIB_S: f64 = 220.76;
const DECODE_GATE_FACTOR: f64 = 5.0;

/// Flush-inclusive batched decode throughput committed by PR 6 (row-wise
/// event replay, GF(256) k = 128, 1 KiB payloads, GFNI rung). The blocked
/// replay schedule must beat it by at least [`BLOCKED_GATE_FACTOR`] — see
/// the roofline note in the module docs for why the gate is 2× and not the
/// raw-axpy-extrapolated 3×.
const PR6_BATCHED_BASELINE_MIB_S: f64 = 267.8;
const BLOCKED_GATE_FACTOR: f64 = 1.6;

/// How far one timed decode runs.
#[derive(Clone, Copy, PartialEq)]
enum Stage {
    /// Receive stream to completion only — the pre-split harness.
    Stream,
    /// Stream plus `Decoder::settle()`: includes the payload flush but not
    /// the solution back-substitution/unpack.
    Settle,
    /// Stream plus `decode()`: flush and solution, the full batched decode.
    Decode,
}

/// One rung's decode timing at one configuration.
struct RungMeasurement {
    kernel: &'static str,
    /// Receive stream to completion, no `decode()` — the pre-split
    /// harness, now coefficient-only.
    ms_per_decode: f64,
    payload_mib_s: f64,
    /// Stream + `settle()` under `Auto` — the flush stage lands between
    /// this and `ms_per_decode`.
    settle_ms_per_decode: f64,
    /// Receive stream plus one `decode()` under the library-default
    /// `Auto` replay schedule: flush plus solution unpack.
    batched_ms_per_decode: f64,
    batched_payload_mib_s: f64,
    /// Full batched decode with the replay schedule forced row-wise.
    rowwise_batched_ms: f64,
    /// Full batched decode with the replay schedule forced blocked.
    blocked_batched_ms: f64,
    /// Raw `mul_add_slice` streaming throughput, MiB/s.
    raw_axpy_mib_s: f64,
}

/// Times `reps` decodes of one pre-generated packet stream under the
/// currently forced kernel and replay mode; returns ms/decode. The timed
/// region covers the receive stream and then as much of the batched tail
/// as `stage` asks for.
fn decode_once<F: SlabField>(
    k: usize,
    r: usize,
    packets: &[Packet<F>],
    truth: &[Vec<F>],
    reps: usize,
    stage: Stage,
) -> f64 {
    // Warm cache/tables outside the timer, and check the solution once.
    for _ in 0..2 {
        let mut warm = Decoder::<F>::new(k, r);
        for p in packets {
            if warm.is_complete() {
                break;
            }
            let _ = warm.try_receive(p).expect("shape-valid packet");
        }
        assert!(warm.is_complete(), "stream must complete the decoder");
        assert_eq!(warm.decode().expect("complete"), truth, "wrong decode");
    }
    // Best of three timed batches: decode batches are short enough that a
    // single scheduler preemption skews one batch badly; the minimum is
    // the standard robust estimator of the undisturbed cost.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut sink = Decoder::<F>::new(k, r);
            for p in packets {
                if sink.is_complete() {
                    break;
                }
                let _ = sink.try_receive(p).expect("shape-valid packet");
            }
            assert!(sink.is_complete(), "stream must complete the decoder");
            match stage {
                Stage::Stream => std::hint::black_box(sink.rank()),
                Stage::Settle => {
                    sink.settle();
                    std::hint::black_box(sink.rank())
                }
                Stage::Decode => {
                    std::hint::black_box(sink.decode().expect("complete"));
                    sink.rank()
                }
            };
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / reps as f64);
    }
    best
}

/// Raw axpy streaming rate under the forced kernel: `dst ^= c·src` over a
/// 1 MiB row, in MiB/s.
fn raw_axpy_mib_s<F: SlabField>(c: F, reps: usize) -> f64 {
    const LEN: usize = 1 << 20;
    let src = vec![0xA7u8; LEN];
    let mut dst = vec![0x31u8; LEN];
    F::mul_add_slice(c, &src, &mut dst); // warm
    let t0 = Instant::now();
    for _ in 0..reps {
        F::mul_add_slice(c, &src, &mut dst);
        std::hint::black_box(&dst);
    }
    let mib = (LEN * reps) as f64 / (1024.0 * 1024.0);
    mib / t0.elapsed().as_secs_f64()
}

/// Measures the whole ladder at one decode configuration.
fn ladder<F: SlabField>(k: usize, r: usize, c: F, reps: usize) -> Vec<RungMeasurement> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);
    let packets: Vec<Packet<F>> = (0..2 * k + 32)
        .map(|_| Recoder::new(&source).emit(&mut rng).expect("source emits"))
        .collect();
    let truth = generation.messages().to_vec();
    let payload_mib = (k * r * F::SYMBOL_BYTES) as f64 / (1024.0 * 1024.0);

    let mut out = Vec::new();
    for kernel in Kernel::LADDER {
        if !kernel.is_supported() {
            continue;
        }
        let installed = set_kernel(kernel);
        assert_eq!(installed, kernel, "kernel not installed");
        set_replay_mode(ReplayMode::Auto);
        let ms = decode_once::<F>(k, r, &packets, &truth, reps, Stage::Stream);
        let settle_ms = decode_once::<F>(k, r, &packets, &truth, reps, Stage::Settle);
        let batched_ms = decode_once::<F>(k, r, &packets, &truth, reps, Stage::Decode);
        set_replay_mode(ReplayMode::Rowwise);
        let rowwise_ms = decode_once::<F>(k, r, &packets, &truth, reps, Stage::Decode);
        set_replay_mode(ReplayMode::Blocked);
        let blocked_ms = decode_once::<F>(k, r, &packets, &truth, reps, Stage::Decode);
        set_replay_mode(ReplayMode::Auto);
        out.push(RungMeasurement {
            kernel: kernel.name(),
            ms_per_decode: ms,
            payload_mib_s: payload_mib / (ms / 1e3),
            settle_ms_per_decode: settle_ms,
            batched_ms_per_decode: batched_ms,
            batched_payload_mib_s: payload_mib / (batched_ms / 1e3),
            rowwise_batched_ms: rowwise_ms,
            blocked_batched_ms: blocked_ms,
            raw_axpy_mib_s: raw_axpy_mib_s::<F>(c, 128),
        });
    }
    set_kernel(Kernel::detect_best());
    out
}

/// Result of the allocation-counted completion run.
struct CompletionRun {
    n: usize,
    k: usize,
    payload_bytes: usize,
    rounds: u64,
    seconds: f64,
    /// Last round whose window saw any allocation. With the pre-warmed
    /// `RowPool` this is at most 1: the engine's one-time per-run setup
    /// (`RunStats` buffers, round scratch) allocates inside `run`, ahead
    /// of round 1's loop, and lands in round 1's window.
    warmup_rounds: u64,
    /// Rounds after warm-up: every one of them allocation-free.
    steady_rounds: u64,
    /// Number of rounds whose window saw any allocation at all.
    allocating_rounds: u64,
    /// Total allocator calls across every round window (setup included).
    allocs_during_run: u64,
    completed: bool,
    decode_ok: bool,
}

/// Runs uniform AG with payloads at scale and audits per-round allocations.
fn completion_run(n: usize) -> CompletionRun {
    let k = 32;
    let r = 1024; // 1 KiB payload per message over GF(2^8)
    let mut grng = StdRng::seed_from_u64(SEED ^ 0xE0);
    let graph = ag_graph::builders::random_regular(n, 3, &mut grng).expect("rr(3) graph");
    // The audit pins the *preallocated* arena: the chunked default grows
    // row storage as ranks rise, which is a deliberate (and separately
    // benchmarked) trade of steady-state allocation freedom for memory.
    let cfg = AgConfig::new(k)
        .with_payload_len(r)
        .with_placement(Placement::Spread)
        .with_arena_growth(ArenaGrowth::Preallocated);
    let mut proto = AlgebraicGossip::<Gf256>::new(&graph, &cfg, SEED).expect("protocol");

    // Per-round allocator snapshots; preallocated so the observer itself
    // never allocates inside the measured loop. The baseline snapshot
    // taken *before* the run makes round 1's window observable too — it
    // additionally covers the engine's per-run setup (`RunStats`, round
    // scratch), which allocates inside `run` ahead of the first round.
    let mut snapshots: Vec<(u64, u64)> = Vec::with_capacity(4096);
    snapshots.push((0, ALLOC_CALLS.load(Ordering::Relaxed)));
    let t0 = Instant::now();
    let stats = Engine::new(EngineConfig::synchronous(SEED ^ 0x1).with_max_rounds(4000))
        .run_observed(&mut proto, |round, _p| {
            snapshots.push((round, ALLOC_CALLS.load(Ordering::Relaxed)));
        });
    let seconds = t0.elapsed().as_secs_f64();

    // Delta per round window; warm-up ends at the last allocating round.
    let mut warmup_rounds = 0u64;
    let mut allocating_rounds = 0u64;
    let mut allocs_during_run = 0u64;
    for w in snapshots.windows(2) {
        let (round, after) = w[1];
        let delta = after - w[0].1;
        if delta > 0 {
            warmup_rounds = round;
            allocating_rounds += 1;
            allocs_during_run += delta;
        }
    }
    let steady_rounds = stats.rounds.saturating_sub(warmup_rounds);
    let decode_ok = stats.completed
        && (0..3.min(n))
            .all(|v| proto.decoded(v).as_deref() == Some(proto.generation().messages()));
    CompletionRun {
        n,
        k,
        payload_bytes: r,
        rounds: stats.rounds,
        seconds,
        warmup_rounds,
        steady_rounds,
        allocating_rounds,
        allocs_during_run,
        completed: stats.completed,
        decode_ok,
    }
}

fn main() {
    let reps: usize = std::env::var("AG_BENCH_RLNC_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(9);
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Full => 100_000,
        Scale::Quick => 10_000,
    };

    let gf256 = ladder::<Gf256>(128, 1024, Gf256::new(0x57), reps);
    let gf16 = ladder::<Gf16>(64, 1024, Gf16::new(0xB), reps);

    let reference = gf256
        .iter()
        .find(|m| m.kernel == "reference")
        .expect("reference rung always runs");
    // Best full decode (flush-inclusive): the payload-scale comparison the
    // 2x rung gate is about.
    let best = gf256
        .iter()
        .min_by(|a, b| a.batched_ms_per_decode.total_cmp(&b.batched_ms_per_decode))
        .expect("ladder is nonempty");
    let speedup = reference.batched_ms_per_decode / best.batched_ms_per_decode;
    // Best receive stream: the apples-to-apples successor of the committed
    // eager number, gated at >= 5x.
    let best_stream_mib_s = gf256.iter().map(|m| m.payload_mib_s).fold(0.0f64, f64::max);
    let stream_speedup = best_stream_mib_s / EAGER_BASELINE_MIB_S;
    // Best flush-inclusive decode under the forced blocked schedule: the
    // BLAS-3 replay gate against the committed PR 6 row-wise baseline.
    let gf256_payload_mib = (128 * 1024) as f64 / (1024.0 * 1024.0);
    let best_blocked_mib_s = gf256
        .iter()
        .map(|m| gf256_payload_mib / (m.blocked_batched_ms / 1e3))
        .fold(0.0f64, f64::max);
    let blocked_speedup = best_blocked_mib_s / PR6_BATCHED_BASELINE_MIB_S;

    let run = completion_run(n);

    let mut json = String::from("{\n  \"bench\": \"rlnc_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"field\": \"Gf256\", \"k\": 128, \"payload_symbols\": 1024, \
         \"best_kernel\": \"{}\", \"simd_level\": \"{}\", \"speedup_vs_reference\": {:.3}, \
         \"requirement\": \">= 2x\", \"met\": {}}},",
        best.kernel,
        ag_gf::simd::level_name(),
        speedup,
        speedup >= 2.0
    );
    let _ = writeln!(
        json,
        "  \"decode_gate\": {{\"metric\": \"receive_stream_payload_MiB_s\", \
         \"eager_baseline\": {:.2}, \"measured\": {:.2}, \"speedup\": {:.3}, \
         \"requirement\": \">= 5x ({:.1} MiB/s)\", \"met\": {}}},",
        EAGER_BASELINE_MIB_S,
        best_stream_mib_s,
        stream_speedup,
        EAGER_BASELINE_MIB_S * DECODE_GATE_FACTOR,
        stream_speedup >= DECODE_GATE_FACTOR
    );
    let _ = writeln!(
        json,
        "  \"blocked_gate\": {{\"metric\": \"forced_blocked_batched_MiB_s\", \
         \"pr6_rowwise_baseline\": {:.2}, \"measured\": {:.2}, \"speedup\": {:.3}, \
         \"requirement\": \">= {:.1}x ({:.1} MiB/s)\", \"met\": {}}},",
        PR6_BATCHED_BASELINE_MIB_S,
        best_blocked_mib_s,
        blocked_speedup,
        BLOCKED_GATE_FACTOR,
        PR6_BATCHED_BASELINE_MIB_S * BLOCKED_GATE_FACTOR,
        blocked_speedup >= BLOCKED_GATE_FACTOR
    );
    for (field, rungs) in [("Gf256", &gf256), ("Gf16", &gf16)] {
        let _ = writeln!(json, "  \"ladder_{}\": [", field.to_lowercase());
        for (i, m) in rungs.iter().enumerate() {
            // Recover the per-decode payload volume from the stream pair so
            // the stage and replay rates share one source of truth.
            let payload_mib = m.payload_mib_s * m.ms_per_decode / 1e3;
            // Min-of-batches timing means the stage differences can come
            // out marginally negative on noise; clamp to zero.
            let flush_ms = (m.settle_ms_per_decode - m.ms_per_decode).max(0.0);
            let solve_ms = (m.batched_ms_per_decode - m.settle_ms_per_decode).max(0.0);
            let _ = writeln!(
                json,
                "    {{\"kernel\": \"{}\", \"ms_per_decode\": {:.3}, \
                 \"decode_payload_MiB_s\": {:.2}, \
                 \"stages\": {{\"stream_ms\": {:.3}, \"flush_ms\": {:.3}, \
                 \"solve_ms\": {:.3}}}, \
                 \"batched\": {{\"ms_per_decode\": {:.3}, \"decode_payload_MiB_s\": {:.2}, \
                 \"replay\": {{\"auto_ms\": {:.3}, \"rowwise_ms\": {:.3}, \
                 \"blocked_ms\": {:.3}, \"rowwise_MiB_s\": {:.2}, \
                 \"blocked_MiB_s\": {:.2}}}}}, \"raw_axpy_MiB_s\": {:.1}}}{}",
                m.kernel,
                m.ms_per_decode,
                m.payload_mib_s,
                m.ms_per_decode,
                flush_ms,
                solve_ms,
                m.batched_ms_per_decode,
                m.batched_payload_mib_s,
                m.batched_ms_per_decode,
                m.rowwise_batched_ms,
                m.blocked_batched_ms,
                payload_mib / (m.rowwise_batched_ms / 1e3),
                payload_mib / (m.blocked_batched_ms / 1e3),
                m.raw_axpy_mib_s,
                if i + 1 < rungs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "  ],");
    }
    let _ = writeln!(
        json,
        "  \"completion_run\": {{\"n\": {}, \"k\": {}, \"payload_bytes\": {}, \
         \"graph\": \"random_regular(3)\", \"action\": \"exchange\", \"rounds\": {}, \
         \"seconds\": {:.1}, \"warmup_rounds\": {}, \"steady_rounds\": {}, \
         \"allocating_rounds\": {}, \"allocs_during_run\": {}, \
         \"completed\": {}, \"decode_ok\": {}}}",
        run.n,
        run.k,
        run.payload_bytes,
        run.rounds,
        run.seconds,
        run.warmup_rounds,
        run.steady_rounds,
        run.allocating_rounds,
        run.allocs_during_run,
        run.completed,
        run.decode_ok
    );
    json.push_str("}\n");

    std::fs::write("BENCH_rlnc_throughput.json", &json).expect("write BENCH_rlnc_throughput.json");
    print!("{json}");
    for m in &gf256 {
        eprintln!(
            "Gf256 k=128 r=1024 [{}]: stream {:.3} ms ({:.1} MiB/s), flush {:.3} ms, \
             solve {:.3} ms; batched auto {:.3} ms ({:.1} MiB/s), rowwise {:.3} ms, \
             blocked {:.3} ms; raw axpy {:.0} MiB/s",
            m.kernel,
            m.ms_per_decode,
            m.payload_mib_s,
            (m.settle_ms_per_decode - m.ms_per_decode).max(0.0),
            (m.batched_ms_per_decode - m.settle_ms_per_decode).max(0.0),
            m.batched_ms_per_decode,
            m.batched_payload_mib_s,
            m.rowwise_batched_ms,
            m.blocked_batched_ms,
            m.raw_axpy_mib_s
        );
    }
    eprintln!(
        "decode gate: receive stream {best_stream_mib_s:.1} MiB/s vs eager baseline \
         {EAGER_BASELINE_MIB_S:.1} MiB/s = {stream_speedup:.2}x (need >= {DECODE_GATE_FACTOR:.0}x)"
    );
    eprintln!(
        "blocked gate: forced-blocked batched {best_blocked_mib_s:.1} MiB/s vs PR 6 row-wise \
         baseline {PR6_BATCHED_BASELINE_MIB_S:.1} MiB/s = {blocked_speedup:.2}x \
         (need >= {BLOCKED_GATE_FACTOR:.1}x)"
    );
    eprintln!(
        "completion n={} k=32 r=1KiB: {} rounds in {:.1}s — {} allocating round(s) \
         ({} allocs, engine per-run setup), {} allocation-free steady rounds",
        run.n,
        run.rounds,
        run.seconds,
        run.allocating_rounds,
        run.allocs_during_run,
        run.steady_rounds
    );

    // The acceptance gates.
    assert!(
        speedup >= 2.0,
        "best kernel ({}) is only {speedup:.2}x the reference rung — below the required 2x",
        best.kernel
    );
    assert!(
        stream_speedup >= DECODE_GATE_FACTOR,
        "lazy receive stream is only {stream_speedup:.2}x the committed eager baseline \
         ({best_stream_mib_s:.1} vs {EAGER_BASELINE_MIB_S:.1} MiB/s) — below the required \
         {DECODE_GATE_FACTOR:.0}x"
    );
    assert!(
        blocked_speedup >= BLOCKED_GATE_FACTOR,
        "blocked replay schedule is only {blocked_speedup:.2}x the committed PR 6 row-wise \
         batched baseline ({best_blocked_mib_s:.1} vs {PR6_BATCHED_BASELINE_MIB_S:.1} MiB/s) — \
         below the required {BLOCKED_GATE_FACTOR:.1}x"
    );
    assert!(run.completed, "completion run hit the round budget");
    assert!(
        run.decode_ok,
        "completed nodes failed to decode — codec bug"
    );
    // Round 1's window is allowed to carry the engine's one-time per-run
    // setup allocations (`RunStats` buffers, round scratch); every other
    // round — and thus every per-message operation — must be
    // allocation-free.
    assert!(
        run.warmup_rounds <= 1 && run.allocating_rounds <= 1,
        "per-message allocations leaked into the round loop: last allocating \
         round {}, {} allocating rounds",
        run.warmup_rounds,
        run.allocating_rounds
    );
    assert!(
        run.steady_rounds >= 5,
        "too few allocation-free rounds ({}) to call the loop steady",
        run.steady_rounds
    );
}
