//! Micro-tuner for the GF(2⁸) kernel routing decisions.
//!
//! Two measurements, printed (not committed as a gate — this is the tool
//! the routing constants in `ag_gf::kernel` cite):
//!
//! 1. **Blocked panel vs gather replay** at the decode shape: applying an
//!    `n × n` transform panel to `n` payload rows via one
//!    `mul_add_block` GEMM, against the row-at-a-time `mul_add_multi`
//!    schedule it replaces. This is the kernel behind the blocked payload
//!    replay in `ag_linalg`.
//! 2. **SWAR vs reference crossover**: single-row axpy throughput of the
//!    `wide` and `reference` rungs across row lengths, bracketing where
//!    (or whether) the SWAR rung ever wins on GF(2⁸) — the measurement
//!    behind `GF256_SWAR_ROW_BYTES` routing.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_gf_block`.

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_gf::{reference, wide, Gf256, SlabField};

fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// One blocked GEMM `dsts += coefs · srcs` at (n × n) × (n × rb), MiB/s of
/// destination panel written per pass.
fn gemm_mib_s(n: usize, rb: usize, reps: usize) -> (f64, f64) {
    let coefs = fill(0xC0EF, n * n);
    let srcs = fill(0x51C5, n * rb);
    let mut dsts = fill(0xD575, n * rb);
    Gf256::mul_add_block(&coefs, &srcs, &mut dsts, rb); // warm
    let mut best_block = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            Gf256::mul_add_block(&coefs, &srcs, &mut dsts, rb);
            std::hint::black_box(&dsts);
        }
        best_block = best_block.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    let mut best_gather = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            for i in 0..n {
                let (before, rest) = dsts.split_at_mut(i * rb);
                let _ = before;
                Gf256::mul_add_multi(&coefs[i * n..(i + 1) * n], &srcs, &mut rest[..rb]);
            }
            std::hint::black_box(&dsts);
        }
        best_gather = best_gather.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    let mib = (n * rb) as f64 / (1024.0 * 1024.0);
    (mib / best_block, mib / best_gather)
}

/// Single-row axpy MiB/s for one rung entry point at one row length.
fn axpy_mib_s(f: fn(u8, &[u8], &mut [u8]), len: usize, reps: usize) -> f64 {
    let src = fill(0xA5, len);
    let mut dst = fill(0x5A, len);
    f(0x57, &src, &mut dst); // warm
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f(0x57, &src, &mut dst);
            std::hint::black_box(&dst);
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    len as f64 / (1024.0 * 1024.0) / best
}

/// Register-only GF2P8MULB throughput probes: no memory traffic, just
/// independent multiply-xor chains, to expose the port ceiling the blocked
/// kernel is chasing.
#[cfg(target_arch = "x86_64")]
mod peak {
    #![allow(unsafe_code)]
    use std::arch::x86_64::*;
    use std::time::Instant;

    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F and AVX-512BW support.
    // SAFETY: register-only intrinsics — no memory access.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn zmm_chains(iters: u64) -> __m512i {
        let c = _mm512_set1_epi8(0x3B);
        let d = _mm512_set1_epi8(0x11);
        // Each chain feeds its accumulator back into the multiply so the
        // body cannot be hoisted: one GF2P8MULB + one VPXORD per step, 16
        // independent chains to cover the multiply latency.
        let mut a = [_mm512_set1_epi8(1); 16];
        for _ in 0..iters {
            for q in 0..16 {
                a[q] = _mm512_xor_si512(_mm512_gf2p8mul_epi8(a[q], c), d);
            }
        }
        let mut acc = a[0];
        for v in &a[1..] {
            acc = _mm512_xor_si512(acc, *v);
        }
        acc
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI and AVX2 support.
    // SAFETY: register-only intrinsics — no memory access.
    #[target_feature(enable = "gfni,avx2")]
    unsafe fn ymm_chains(iters: u64) -> __m256i {
        let c = _mm256_set1_epi8(0x3B);
        let d = _mm256_set1_epi8(0x11);
        let mut a = [_mm256_set1_epi8(1); 16];
        for _ in 0..iters {
            for q in 0..16 {
                a[q] = _mm256_xor_si256(_mm256_gf2p8mul_epi8(a[q], c), d);
            }
        }
        let mut acc = a[0];
        for v in &a[1..] {
            acc = _mm256_xor_si256(acc, *v);
        }
        acc
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F and AVX-512BW support.
    // SAFETY: register-only intrinsics — no memory access.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn zmm_mul_only_chains(iters: u64) -> __m512i {
        let c = _mm512_set1_epi8(0x3B);
        let mut a = [_mm512_set1_epi8(1); 16];
        for _ in 0..iters {
            for q in 0..16 {
                a[q] = _mm512_gf2p8mul_epi8(a[q], c);
            }
        }
        let mut acc = a[0];
        for v in &a[1..] {
            acc = _mm512_xor_si512(acc, *v);
        }
        acc
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F and AVX-512BW support.
    // SAFETY: register-only intrinsics — no memory access.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn zmm_affine_chains(iters: u64) -> __m512i {
        let m = _mm512_set1_epi64(0x0102040810204080u64 as i64);
        let mut a = [_mm512_set1_epi8(1); 16];
        for _ in 0..iters {
            for q in 0..16 {
                a[q] = _mm512_gf2p8affine_epi64_epi8::<0>(a[q], m);
            }
        }
        let mut acc = a[0];
        for v in &a[1..] {
            acc = _mm512_xor_si512(acc, *v);
        }
        acc
    }

    /// # Safety
    ///
    /// Caller must have verified GFNI, AVX-512F and AVX-512BW support.
    // SAFETY: register-only intrinsics — no memory access.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn zmm_mixed_chains(iters: u64) -> __m512i {
        let c = _mm512_set1_epi8(0x3B);
        let m = _mm512_set1_epi64(0x0102040810204080u64 as i64);
        let mut a = [_mm512_set1_epi8(1); 16];
        for _ in 0..iters {
            for q in 0..8 {
                a[2 * q] = _mm512_gf2p8mul_epi8(a[2 * q], c);
                a[2 * q + 1] = _mm512_gf2p8affine_epi64_epi8::<0>(a[2 * q + 1], m);
            }
        }
        let mut acc = a[0];
        for v in &a[1..] {
            acc = _mm512_xor_si512(acc, *v);
        }
        acc
    }

    pub fn report() {
        if !(is_x86_feature_detected!("gfni")
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx2"))
        {
            return;
        }
        let iters = 4_000_000u64;
        let t0 = Instant::now();
        // SAFETY: features checked above.
        std::hint::black_box(unsafe { zmm_chains(iters) });
        let z = (iters * 16 * 64) as f64 / t0.elapsed().as_secs_f64() / 1e9;
        let t0 = Instant::now();
        // SAFETY: features checked above.
        std::hint::black_box(unsafe { ymm_chains(iters) });
        let y = (iters * 16 * 32) as f64 / t0.elapsed().as_secs_f64() / 1e9;
        let t0 = Instant::now();
        // SAFETY: features checked above.
        std::hint::black_box(unsafe { zmm_mul_only_chains(iters) });
        let m = (iters * 16 * 64) as f64 / t0.elapsed().as_secs_f64() / 1e9;
        let t0 = Instant::now();
        // SAFETY: features checked above.
        std::hint::black_box(unsafe { zmm_affine_chains(iters) });
        let af = (iters * 16 * 64) as f64 / t0.elapsed().as_secs_f64() / 1e9;
        let t0 = Instant::now();
        // SAFETY: features checked above.
        std::hint::black_box(unsafe { zmm_mixed_chains(iters) });
        let mx = (iters * 16 * 64) as f64 / t0.elapsed().as_secs_f64() / 1e9;
        println!("== register-only GF2P8MULB peak ==");
        println!("  zmm mul+xor: {z:.1} Gmul/s   zmm mul-only: {m:.1} Gmul/s   ymm mul+xor: {y:.1} Gmul/s");
        println!("  zmm affine-only: {af:.1} Gop/s   zmm mul/affine mixed: {mx:.1} Gop/s");
    }
}

fn main() {
    println!("simd level: {}", ag_gf::simd::level_name());
    #[cfg(target_arch = "x86_64")]
    peak::report();
    println!("\n== blocked panel vs gather replay (Gf256, n x n onto n rows) ==");
    for (n, rb) in [
        (32usize, 1024usize),
        (64, 1024),
        (128, 1024),
        (128, 1088),
        (128, 1152),
        (128, 128),
    ] {
        let reps = (256 * 1024 * 1024 / (n * n * rb)).clamp(4, 2000);
        let (block, gather) = gemm_mib_s(n, rb, reps);
        // Multiplies per second: n^2 * rb per pass.
        let gmul = (n * n * rb) as f64 / 1e9;
        println!(
            "  n={n:>3} rb={rb:>5}: blocked {block:>9.1} MiB/s ({:.1} Gmul/s)   gather {gather:>9.1} MiB/s ({:.1} Gmul/s)   ratio {:.2}x",
            gmul / ((n * rb) as f64 / (1024.0 * 1024.0) / block),
            gmul / ((n * rb) as f64 / (1024.0 * 1024.0) / gather),
            block / gather
        );
    }
    println!("\n== swar vs reference single-row axpy (Gf256) ==");
    for len in [
        64usize,
        128,
        256,
        512,
        1024,
        1152,
        2048,
        4096,
        16384,
        1 << 20,
    ] {
        let reps = (64 * 1024 * 1024 / len).clamp(8, 100_000);
        let s = axpy_mib_s(wide::gf256_mul_add_slice, len, reps);
        let r = axpy_mib_s(reference::gf256_mul_add_slice, len, reps);
        println!(
            "  len={len:>8}: swar {s:>8.1} MiB/s   reference {r:>8.1} MiB/s   swar/ref {:.2}",
            s / r
        );
    }
}
