//! Machine-readable perf baseline for the trial runner: times uniform AG
//! on a 256-node random graph under the serial reference executor vs the
//! rayon-backed parallel executor, checks the two produce bit-identical
//! results, and writes `BENCH_trial_runner.json` for future PRs to diff
//! against.
//!
//! Usage: `cargo run --release -p ag-bench --bin bench_trial_runner`
//! (optionally `AG_BENCH_TRIALS=n` to resize the batch).

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::EngineConfig;
use algebraic_gossip::{ProtocolKind, RunSpec, TrialPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 256;
const EDGE_PROB: f64 = 0.05;
const K: usize = 24;
const GRAPH_SEED: u64 = 0xBE4C;
const PLAN_SEED: u64 = 0x7214_AB10;

fn main() {
    let trials: u64 = std::env::var("AG_BENCH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(16);
    let mut rng = StdRng::seed_from_u64(GRAPH_SEED);
    let graph = builders::erdos_renyi_connected(N, EDGE_PROB, &mut rng).expect("connected G(n,p)");

    let mut base = RunSpec::new(ProtocolKind::UniformAg, K);
    base.engine = EngineConfig::synchronous(0).with_max_rounds(10_000_000);
    let plan = TrialPlan::new(trials, PLAN_SEED);

    // Warm-up: fault in code paths and allocator state outside the timers.
    let _ = TrialPlan::new(2, PLAN_SEED ^ 1)
        .run::<Gf256>(&graph, &base)
        .expect("warm-up runs");

    let t0 = Instant::now();
    let serial = plan
        .run_serial::<Gf256>(&graph, &base)
        .expect("serial runs");
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = plan.run::<Gf256>(&graph, &base).expect("parallel runs");
    let parallel_secs = t1.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "parallel results must be bit-identical");
    assert!(serial.all_ok(), "all trials must complete and verify");

    let threads = rayon::current_num_threads();
    let speedup = serial_secs / parallel_secs;
    let json = format!(
        "{{\n  \"bench\": \"trial_runner\",\n  \"graph\": {{\"family\": \"erdos_renyi_connected\", \"n\": {N}, \"p\": {EDGE_PROB}, \"seed\": {GRAPH_SEED}}},\n  \"protocol\": \"UniformAg\",\n  \"field\": \"Gf256\",\n  \"k\": {K},\n  \"trials\": {trials},\n  \"threads\": {threads},\n  \"median_rounds\": {:.1},\n  \"serial_secs\": {serial_secs:.4},\n  \"parallel_secs\": {parallel_secs:.4},\n  \"serial_trials_per_sec\": {:.3},\n  \"parallel_trials_per_sec\": {:.3},\n  \"speedup\": {speedup:.3},\n  \"deterministic_match\": true\n}}\n",
        serial.median_rounds(),
        trials as f64 / serial_secs,
        trials as f64 / parallel_secs,
    );
    std::fs::write("BENCH_trial_runner.json", &json).expect("write BENCH_trial_runner.json");
    print!("{json}");
    eprintln!(
        "trial throughput: serial {:.2}/s, parallel {:.2}/s on {threads} thread(s) — {speedup:.2}x",
        trials as f64 / serial_secs,
        trials as f64 / parallel_secs,
    );
}
