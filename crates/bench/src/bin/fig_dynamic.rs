//! Regenerates experiment [dynamic_fig] — the F9 dynamic-topology suite.
//! Usage: `cargo run --release -p ag-bench --bin fig_dynamic` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes; `AG_CHURN_RATES`,
//! `AG_CHURN_SEED` and `AG_CHURN_PERIOD` override the schedules). CI runs
//! this at quick scale as the suite's smoke test.

use ag_bench::{experiments, Scale};

fn main() {
    experiments::dynamic_fig::run(Scale::from_env()).print();
}
