//! Regenerates experiment [progress_fig] — see DESIGN.md §5.
//! Usage: `cargo run --release -p ag-bench --bin fig_progress` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes).

use ag_bench::{experiments, Scale};

fn main() {
    experiments::progress_fig::run(Scale::from_env()).print();
}
