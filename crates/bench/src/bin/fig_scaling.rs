//! Regenerates experiment [scaling_fig] — see DESIGN.md §5.
//! Usage: `cargo run --release -p ag-bench --bin fig_scaling` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes).

use ag_bench::{experiments, Scale};

fn main() {
    experiments::scaling_fig::run(Scale::from_env()).print();
}
