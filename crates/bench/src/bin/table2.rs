//! Regenerates experiment [table2] — see DESIGN.md §5.
//! Usage: `cargo run --release -p ag-bench --bin table2` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes).

use ag_bench::{experiments, Scale};

fn main() {
    experiments::table2::run(Scale::from_env()).print();
}
