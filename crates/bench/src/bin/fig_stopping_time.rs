//! Regenerates experiment [stopping_time] — the F8 scaling suite.
//! Usage: `cargo run --release -p ag-bench --bin fig_stopping_time` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes). CI runs this at
//! quick scale as the suite's smoke test.

use ag_bench::{experiments, Scale};

fn main() {
    experiments::stopping_time::run(Scale::from_env()).print();
}
