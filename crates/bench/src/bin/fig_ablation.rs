//! Regenerates experiment [ablation] — see DESIGN.md §5.
//! Usage: `cargo run --release -p ag-bench --bin fig_ablation` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes).

use ag_bench::{experiments, Scale};

fn main() {
    experiments::ablation::run(Scale::from_env()).print();
}
