//! Regenerates experiment [table1] — see DESIGN.md §5.
//! Usage: `cargo run --release -p ag-bench --bin table1` (set
//! `AG_BENCH_SCALE=full` for the EXPERIMENTS.md sizes).

use ag_bench::{experiments, Scale};

fn main() {
    experiments::table1::run(Scale::from_env()).print();
}
