//! F3/F4 — Theorem 5 (B_RR broadcast in O(n)) and Lemma 2 (degree sums).

use std::fmt::Write as _;

use ag_analysis::{Summary, TableBuilder};
use ag_graph::{builders, metrics, Graph};
use ag_sim::EngineConfig;
use algebraic_gossip::{measure_tree_protocol, BroadcastTree, CommModel, TrialPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{ExperimentReport, Scale};

fn broadcast_rounds(g: &Graph, comm: CommModel, sync: bool, seed: u64) -> Option<u64> {
    let b = BroadcastTree::new(g, 0, comm, seed).ok()?;
    let cfg = if sync {
        EngineConfig::synchronous(seed)
    } else {
        EngineConfig::asynchronous(seed)
    }
    .with_max_rounds(200_000);
    let (stats, _) = measure_tree_protocol(b, cfg);
    stats.completed.then_some(stats.rounds)
}

/// Runs the broadcast / Lemma 2 experiments.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let seeds: u64 = match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    };
    let mut text = String::new();
    let mut md = String::new();

    // ---- F3: BRR vs the 3n bound (sync, worst over seeds) and async. ---
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64],
        Scale::Full => vec![16, 32, 64, 128, 256],
    };
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "n".into(),
        "BRR sync worst".into(),
        "3n".into(),
        "BRR async median".into(),
        "uniform sync worst".into(),
    ]);
    for &n in &ns {
        for (name, g) in [
            ("barbell", builders::barbell(n).unwrap()),
            ("star", builders::star(n).unwrap()),
            ("lollipop", builders::lollipop(n / 2, n / 2).unwrap()),
        ] {
            // Tree protocols run standalone (no RunSpec), so each series
            // goes through a TrialPlan's map(): central seeds, parallel
            // trials, deterministic order.
            let sync_worst = TrialPlan::new(seeds, 0xF3_01)
                .map(|s| broadcast_rounds(&g, CommModel::RoundRobin, true, s.protocol).unwrap())
                .into_iter()
                .max()
                .unwrap();
            let asyncs = TrialPlan::new(seeds, 0xF3_02)
                .map(|s| broadcast_rounds(&g, CommModel::RoundRobin, false, s.protocol).unwrap());
            let async_median = Summary::of_u64(&asyncs).median();
            let uni_worst = TrialPlan::new(seeds, 0xF3_03)
                .map(|s| broadcast_rounds(&g, CommModel::Uniform, true, s.protocol).unwrap())
                .into_iter()
                .max()
                .unwrap();
            assert!(
                sync_worst <= 3 * g.n() as u64,
                "Theorem 5 violated on {name} n={n}"
            );
            t.row(vec![
                name.into(),
                g.n().to_string(),
                sync_worst.to_string(),
                (3 * g.n()).to_string(),
                format!("{async_median:.0}"),
                uni_worst.to_string(),
            ]);
        }
    }
    let _ = writeln!(
        text,
        "F3  Theorem 5: B_RR broadcast within 3n sync rounds (worst over {seeds} seeds):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F3 Theorem 5: `B_RR` broadcast is `O(n)` (worst over {seeds} seeds)\n\n{}",
        t.render_markdown()
    );

    // ---- F4: Lemma 2 degree sums <= 3n, fixed + random families. -------
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "n".into(),
        "max Σdeg on shortest path".into(),
        "3n".into(),
        "slack".into(),
    ]);
    let mut rng = StdRng::seed_from_u64(0xF4);
    let mut families: Vec<(String, Graph)> = vec![
        ("path".into(), builders::path(40).unwrap()),
        ("barbell".into(), builders::barbell(40).unwrap()),
        ("star".into(), builders::star(40).unwrap()),
        ("complete".into(), builders::complete(30).unwrap()),
        ("binary tree".into(), builders::binary_tree(31).unwrap()),
        ("hypercube".into(), builders::hypercube(5).unwrap()),
        ("lollipop".into(), builders::lollipop(20, 20).unwrap()),
    ];
    for i in 0..3 {
        families.push((
            format!("G(30, 0.2) #{i}"),
            builders::erdos_renyi_connected(30, 0.2, &mut rng).unwrap(),
        ));
        families.push((
            format!("4-regular #{i}"),
            builders::random_regular(30, 4, &mut rng).unwrap(),
        ));
    }
    for (name, g) in &families {
        let m = metrics::max_shortest_path_degree_sum(g);
        assert!(m <= 3 * g.n(), "Lemma 2 violated on {name}");
        t.row(vec![
            name.clone(),
            g.n().to_string(),
            m.to_string(),
            (3 * g.n()).to_string(),
            format!("{:.2}", m as f64 / (3 * g.n()) as f64),
        ]);
    }
    let _ = writeln!(
        text,
        "F4  Lemma 2: max degree sum along shortest paths ≤ 3n everywhere:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F4 Lemma 2: `Σ deg ≤ 3n` along every shortest path\n\n{}",
        t.render_markdown()
    );

    ExperimentReport {
        id: "F3/F4",
        title: "Theorem 5 (B_RR) & Lemma 2 (degree sums)",
        text,
        markdown: md,
    }
}
