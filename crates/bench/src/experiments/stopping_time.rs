//! F8 — the stopping-time scaling suite: median rounds vs `n` at fixed
//! `k`, per graph family, under both time models, with fitted log-log
//! slopes next to the paper's bounds.
//!
//! This is the experiment that *measures the theorems at scale*: EXCHANGE
//! algebraic gossip stops in O(Δn) rounds on any graph (Theorem 1/3), and
//! the related analyses (Haeupler's tighter worst-case bounds; the
//! Borokhovich–Avin–Lotker graph-family bounds) predict where that bound
//! is tight versus wildly loose. At fixed `k` the tight prediction is
//! `O((k + log n + D)·Δ)`, so the rounds-vs-n exponent should approach:
//!
//! | family          | Δ      | tight exponent | Δn-bound exponent |
//! |-----------------|--------|----------------|-------------------|
//! | complete        | n − 1  | ~0 (log n)     | 2                 |
//! | ring            | 2      | 1              | 1                 |
//! | grid (√n × √n)  | 4      | 0.5            | 1                 |
//! | random 3-regular| 3      | ~0 (log n)     | 1                 |
//! | barbell         | ~n/2   | 2              | 2                 |
//!
//! The ring sits exactly on the Δn bound, the barbell shows the bound is
//! attained with Δ = Θ(n) (the Ω(n²) bridge bottleneck), and the expander
//! shows how loose Δn can be — the separations only emerge as n grows,
//! which is why `bench_engine_scale` re-runs these sweeps at up to 10⁵
//! nodes on the reworked engine loop (rank-only packets, `payload_len =
//! 0`, so the decoder cost stays flat while the loop scales).

use std::fmt::Write as _;

use ag_analysis::{loglog_slope, LinearFit, TableBuilder};
use ag_gf::Gf256;
use ag_graph::{builders, Graph};
use ag_sim::TimeModel;
use algebraic_gossip::ProtocolKind;

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

/// The generation size most sweeps run at: fixed and small, so the
/// rounds-vs-n exponent isolates the topology term `D·Δ` of the bound.
/// The barbell is the exception — its Ω(n²) bottleneck is a statement
/// about all-to-all dissemination, so it sweeps at `k = n` (see
/// [`SweepFamily::k_for`]).
pub const SWEEP_K: usize = 4;

/// One graph family of the stopping-time sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFamily {
    /// `K_n` — Δ = n − 1, D = 1.
    Complete,
    /// The cycle `C_n` — Δ = 2, D = ⌊n/2⌋.
    Ring,
    /// The √n × √n grid — Δ = 4, D = Θ(√n).
    Grid,
    /// A random 3-regular graph — an expander w.h.p.
    RandomRegular,
    /// The barbell — the paper's Ω(n²) worst case for uniform AG.
    Barbell,
}

impl SweepFamily {
    /// Every family, sweep order.
    pub const ALL: [SweepFamily; 5] = [
        SweepFamily::Complete,
        SweepFamily::Ring,
        SweepFamily::Grid,
        SweepFamily::RandomRegular,
        SweepFamily::Barbell,
    ];

    /// Human label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SweepFamily::Complete => "complete",
            SweepFamily::Ring => "ring",
            SweepFamily::Grid => "grid",
            SweepFamily::RandomRegular => "random 3-regular",
            SweepFamily::Barbell => "barbell",
        }
    }

    /// Builds the family instance closest to `n` nodes (the grid rounds
    /// to a square, random-regular to even `n`); `seed` only matters for
    /// the random family.
    ///
    /// # Panics
    ///
    /// Panics if `n` is below the family's minimum size (the sweep
    /// ladders are all comfortably above it).
    #[must_use]
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            SweepFamily::Complete => builders::complete(n).expect("complete"),
            SweepFamily::Ring => builders::cycle(n).expect("cycle"),
            SweepFamily::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                builders::grid(side, side).expect("grid")
            }
            SweepFamily::RandomRegular => {
                let n = if n.is_multiple_of(2) { n } else { n + 1 };
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                builders::random_regular(n, 3, &mut rng).expect("random regular")
            }
            SweepFamily::Barbell => builders::barbell(n).expect("barbell"),
        }
    }

    /// The generation size this family sweeps at: `k = n` on the barbell
    /// (all-to-all — the regime of the paper's Ω(n²) lower bound and the
    /// "speedup ratio of n" claim), [`SWEEP_K`] everywhere else.
    #[must_use]
    pub fn k_for(self, n: usize) -> usize {
        match self {
            SweepFamily::Barbell => n,
            _ => SWEEP_K,
        }
    }

    /// The exponent predicted by the *tight* analysis at this family's
    /// sweep regime (fixed `k`: `O((k + log n + D)Δ)`; barbell at
    /// `k = n`: the Ω(n²) bridge bottleneck). 0 stands for
    /// "polylogarithmic".
    #[must_use]
    pub fn tight_exponent(self) -> f64 {
        match self {
            SweepFamily::Complete | SweepFamily::RandomRegular => 0.0,
            SweepFamily::Grid => 0.5,
            SweepFamily::Ring => 1.0,
            SweepFamily::Barbell => 2.0,
        }
    }

    /// The exponent of the paper's universal EXCHANGE bound O(Δn).
    #[must_use]
    pub fn delta_n_exponent(self) -> f64 {
        match self {
            SweepFamily::Complete | SweepFamily::Barbell => 2.0,
            SweepFamily::Ring | SweepFamily::Grid | SweepFamily::RandomRegular => 1.0,
        }
    }
}

/// One measured cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Nodes actually instantiated (the grid rounds to a square).
    pub n: usize,
    /// Median stopping time in rounds over the trials.
    pub median_rounds: f64,
}

/// Sweeps one family across `ns` under `time`, returning median stopping
/// times (rank-only uniform algebraic gossip, `k` per
/// [`SweepFamily::k_for`]).
///
/// # Panics
///
/// Panics if any trial fails to complete within the 20M-round budget —
/// the ladders are sized so completion is certain.
#[must_use]
pub fn sweep_family(
    family: SweepFamily,
    ns: &[usize],
    trials: u64,
    time: TimeModel,
    seed0: u64,
) -> Vec<SweepPoint> {
    ns.iter()
        .enumerate()
        .map(|(i, &n)| {
            let cell_seed = seed0
                .wrapping_mul(ag_graph::seedmix::GOLDEN_GAMMA)
                .wrapping_add(i as u64);
            let graph = family.build(n, cell_seed);
            let median_rounds = median_rounds_protocol::<Gf256>(
                &graph,
                ProtocolKind::UniformAg,
                family.k_for(graph.n()),
                time,
                trials,
                cell_seed,
            );
            SweepPoint {
                n: graph.n(),
                median_rounds,
            }
        })
        .collect()
}

/// The log-log fit of a sweep: `median_rounds ~ n^slope`.
///
/// # Panics
///
/// Panics on fewer than 2 points (a sweep always has 4+).
#[must_use]
pub fn fit_slope(points: &[SweepPoint]) -> LinearFit {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.n as f64, p.median_rounds.max(1.0)))
        .collect();
    loglog_slope(&pts)
}

/// The sweep ladder of a family at an experiment [`Scale`].
#[must_use]
pub fn ladder(family: SweepFamily, scale: Scale) -> Vec<usize> {
    match (family, scale) {
        (SweepFamily::Barbell, Scale::Quick) => vec![8, 12, 16, 24],
        (SweepFamily::Barbell, Scale::Full) => vec![16, 24, 32, 48],
        (SweepFamily::Grid, Scale::Quick) => vec![16, 36, 64, 144],
        (SweepFamily::Grid, Scale::Full) => vec![64, 144, 256, 576],
        (_, Scale::Quick) => vec![16, 32, 64, 128],
        (_, Scale::Full) => vec![64, 128, 256, 512],
    }
}

/// Runs the stopping-time scaling suite.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials();
    let mut text = String::new();
    let mut md = String::new();

    let mut summary = TableBuilder::new(vec![
        "family".into(),
        "sync slope".into(),
        "async slope".into(),
        "tight exp.".into(),
        "Δn-bound exp.".into(),
    ]);
    let _ = writeln!(
        text,
        "F8  median stopping time (rounds) vs n, uniform AG, rank-only\n         (k = {SWEEP_K} fixed; barbell all-to-all at k = n):\n"
    );
    let _ = writeln!(
        md,
        "Median stopping time vs n (rank-only packets), uniform algebraic\n\
         gossip with EXCHANGE, {trials} trials per cell, k = {SWEEP_K} fixed except the\n\
         barbell, which runs all-to-all (k = n — the regime of its Ω(n²)\n\
         lower bound). Fitted log-log slopes sit next to the exponents of\n\
         the tight prediction (`O((k + log n + D)Δ)` at fixed k) and the\n\
         paper's universal `O(Δn)` bound (the Table 2 regime:\n\
         constant-degree families are linear-ish, the barbell is the\n\
         quadratic worst case, expanders are polylog — \"0\").\n"
    );
    for family in SweepFamily::ALL {
        let ns = ladder(family, scale);
        let sync = sweep_family(family, &ns, trials, TimeModel::Synchronous, 801);
        let async_ = sweep_family(family, &ns, trials, TimeModel::Asynchronous, 802);
        let mut t = TableBuilder::new(vec![
            "n".into(),
            "sync rounds".into(),
            "async rounds".into(),
        ]);
        for (s, a) in sync.iter().zip(&async_) {
            t.row(vec![
                s.n.to_string(),
                format!("{:.0}", s.median_rounds),
                format!("{:.0}", a.median_rounds),
            ]);
        }
        let fit_s = fit_slope(&sync);
        let fit_a = fit_slope(&async_);
        let _ = writeln!(
            text,
            "{} (sync slope {:.2}, async slope {:.2}, tight {:.1}, Δn bound {:.1}):\n{}",
            family.label(),
            fit_s.slope,
            fit_a.slope,
            family.tight_exponent(),
            family.delta_n_exponent(),
            t.render()
        );
        let _ = writeln!(
            md,
            "### F8 {} — slopes: sync {:.2}, async {:.2} (tight {:.1}, Δn bound {:.1})\n\n{}",
            family.label(),
            fit_s.slope,
            fit_a.slope,
            family.tight_exponent(),
            family.delta_n_exponent(),
            t.render_markdown()
        );
        summary.row(vec![
            family.label().to_string(),
            format!("{:.2}", fit_s.slope),
            format!("{:.2}", fit_a.slope),
            format!("{:.1}", family.tight_exponent()),
            format!("{:.1}", family.delta_n_exponent()),
        ]);
    }
    let _ = writeln!(
        text,
        "summary — fitted exponents vs bounds:\n{}\
         The ring tracks its Δn bound (both linear); the barbell attains the\n\
         quadratic worst case; complete/random-regular show the Δn bound loose\n\
         by a factor ~n (measured slope ≈ 0). Scale these sweeps up with:\n\
         cargo run --release -p ag-bench --bin bench_engine_scale",
        summary.render()
    );
    let _ = writeln!(
        md,
        "### F8 summary\n\n{}\nLarger ladders (up to 10⁵ nodes) are measured by the\n\
         `bench_engine_scale` binary and recorded in `BENCH_engine_scale.json`.\n",
        summary.render_markdown()
    );

    ExperimentReport {
        id: "F8",
        title: "Stopping-time scaling suite: rounds vs n per family",
        text,
        markdown: md,
    }
}
