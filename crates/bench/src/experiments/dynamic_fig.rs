//! F9 — dynamic-topology gossip: stopping time under scheduled churn.
//!
//! The paper analyzes static graphs; Haeupler's "Analyzing network coding
//! gossip made easy" (the PAPERS.md T2 comparison) proves the projection
//! argument behind RLNC's convergence is oblivious to *adversarial*
//! topology dynamics: any `k` linearly independent equations decode, no
//! matter which graph delivered them. Three measurements probe that claim
//! with the [`ag_graph::ScheduledTopology`] scenario engine:
//!
//! * **F9a — churn-rate sweep.** Median stopping time vs random rewire
//!   rate per graph family, RLNC (`UniformAg`) vs the uncoded baseline.
//!   The ratio columns (`rounds@rate / rounds@static`) must stay bounded
//!   for RLNC — connectivity-preserving churn (Haeupler's model) does not
//!   hurt coded gossip; on sparse families random rewires even *help*,
//!   acting as shortcut edges. The uncoded baseline meanwhile pays its
//!   coupon-collector multiple at every rate (the `uncoded/RLNC` column).
//! * **F9b — adversarial partition.** The complete graph split in two by
//!   an alternating partition/heal schedule with ever-longer blackout
//!   windows. RLNC's ratio stays flat: the k/2 innovative crossings it
//!   needs fit into a single heal window (every crossing is innovative
//!   w.h.p. — the rank-projection argument needs no static graph). The
//!   uncoded baseline's stopping time remains a ~constant multiple set by
//!   its coupon tail — the degradation coding removes — at every
//!   severity.
//! * **F9c — bridge-cut adversary + crash-then-rewire.** The barbell
//!   bridge cycling up/cut under uniform AG vs TAG. With the bridge down
//!   most of the time *any* protocol is bridge-uptime-bound (k messages
//!   must cross a cut of capacity ≤ 2/round), so both degrade together
//!   and TAG's carefully engineered static-barbell advantage stops
//!   mattering: the adversary, not the protocol structure, sets the
//!   stopping time. Plus the recovery scenario: a star whose hub crashes
//!   after one round stalls forever statically, but completes under
//!   rewiring churn — crash tolerance composes with dynamics.
//!
//! Env knobs (all optional, documented in the README): `AG_CHURN_RATES`
//! (comma-separated rewire rates for F9a), `AG_CHURN_SEED` (base seed for
//! every F9 schedule), `AG_CHURN_PERIOD` (up-window length for the F9c
//! bridge adversary).

use std::fmt::Write as _;

use ag_analysis::{Summary, TableBuilder};
use ag_gf::Gf256;
use ag_graph::{builders, ChurnSchedule, Graph, ScheduledTopology};
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{
    seeding, AgConfig, AlgebraicGossip, BroadcastTree, CommModel, CrashPlan, Placement,
    RandomMessageGossip, Tag, WithCrashes,
};

use crate::common::{ExperimentReport, Scale};

/// Default base seed for every F9 schedule and trial plan.
const F9_SEED: u64 = 0x0F9_0F9;

/// Which protocol an F9 cell runs (the dynamic lanes construct protocols
/// directly — `TrialPlan` is graph-typed — but reuse the central seed
/// derivation so trials stay decorrelated exactly like every other
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DynProto {
    Rlnc,
    Uncoded,
}

/// Reads `AG_CHURN_SEED`, defaulting to the built-in base seed.
fn churn_seed() -> u64 {
    std::env::var("AG_CHURN_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(F9_SEED)
}

/// Reads `AG_CHURN_RATES` (comma-separated), defaulting to the sweep.
fn churn_rates() -> Vec<f64> {
    let parsed = std::env::var("AG_CHURN_RATES").ok().and_then(|s| {
        let rates: Option<Vec<f64>> = s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
            })
            .collect();
        rates.filter(|r| !r.is_empty())
    });
    parsed.unwrap_or_else(|| vec![0.0, 0.05, 0.1, 0.2])
}

/// Reads `AG_CHURN_PERIOD` (the F9c bridge up-window), default 2.
fn churn_period() -> u64 {
    std::env::var("AG_CHURN_PERIOD")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&p| p > 0)
        .unwrap_or(2)
}

/// Median stopping time of `proto` on `graph` under `schedule`, over
/// `trials` decorrelated trials (synchronous model). Panics if a trial
/// exhausts the budget — cells are sized to always complete.
fn median_dynamic_rounds(
    graph: &Graph,
    schedule: &ChurnSchedule,
    proto: DynProto,
    k: usize,
    trials: u64,
    seed0: u64,
) -> f64 {
    let rounds: Vec<u64> = (0..trials)
        .map(|t| {
            let pseed = seeding::trial_protocol_seed(seed0, t);
            let eseed = seeding::engine_seed_for(pseed);
            let ecfg = EngineConfig::synchronous(eseed).with_max_rounds(20_000_000);
            let cfg = AgConfig::new(k);
            let topo = ScheduledTopology::new(graph, schedule.clone());
            let stats = match proto {
                DynProto::Rlnc => {
                    let mut p =
                        AlgebraicGossip::<Gf256, _>::on_topology(topo, &cfg, pseed).expect("spec");
                    Engine::new(ecfg).run_batch(&mut p)
                }
                DynProto::Uncoded => {
                    let mut p = RandomMessageGossip::<Gf256, _>::on_topology(topo, &cfg, pseed)
                        .expect("spec");
                    Engine::new(ecfg).run_batch(&mut p)
                }
            };
            assert!(stats.completed, "F9 trial hit the round budget");
            stats.rounds
        })
        .collect();
    Summary::of_u64(&rounds).median()
}

/// One F9a family: label, graph, and the generation size it sweeps at.
fn f9a_families(scale: Scale) -> Vec<(&'static str, Graph, usize)> {
    let (ring_n, grid_side, rr_n) = match scale {
        Scale::Quick => (32, 6, 32),
        Scale::Full => (64, 8, 64),
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(churn_seed());
    vec![
        ("ring", builders::cycle(ring_n).expect("cycle"), 4),
        (
            "grid",
            builders::grid(grid_side, grid_side).expect("grid"),
            4,
        ),
        (
            "random 3-regular",
            builders::random_regular(rr_n, 3, &mut rng).expect("rr(3)"),
            4,
        ),
    ]
}

/// F9a: stopping time vs rewire rate, per family, RLNC vs uncoded.
fn churn_rate_sweep(scale: Scale, text: &mut String, md: &mut String) {
    let trials = scale.trials();
    let rates = churn_rates();
    let seed = churn_seed();
    let _ = writeln!(
        text,
        "F9a  median stopping time vs rewire churn rate (sync, EXCHANGE, k = 4):\n"
    );
    let _ = writeln!(
        md,
        "### F9a — churn-rate sweep (random rewires)\n\n\
         Median synchronous stopping time vs the fraction of edges rewired\n\
         per round, {trials} trials per cell, uniform RLNC gossip vs the uncoded\n\
         random-message baseline on the same seeds. Ratio columns divide by\n\
         the static (rate 0) stopping time of the same protocol: **bounded,\n\
         ≈flat RLNC ratios mean coded gossip is churn-oblivious** (the\n\
         Haeupler shape claim at the connectivity-preserving end of the\n\
         adversary spectrum). On sparse families rewires act as shortcuts,\n\
         so ratios may dip below 1 — churn *helping* is still churn not\n\
         hurting. The `uncoded/RLNC` column is the coding gain the churned\n\
         baseline keeps paying at every rate.\n"
    );
    for (label, graph, k) in f9a_families(scale) {
        let mut t = TableBuilder::new(vec![
            "rewire rate".into(),
            "RLNC rounds".into(),
            "RLNC ratio".into(),
            "uncoded rounds".into(),
            "uncoded ratio".into(),
            "uncoded/RLNC".into(),
        ]);
        // The ratio baseline is always the static (rate 0) run — even
        // when a user-supplied `AG_CHURN_RATES` list omits rate 0.
        let b_rlnc = median_dynamic_rounds(
            &graph,
            &ChurnSchedule::None,
            DynProto::Rlnc,
            k,
            trials,
            seed,
        );
        let b_unc = median_dynamic_rounds(
            &graph,
            &ChurnSchedule::None,
            DynProto::Uncoded,
            k,
            trials,
            seed,
        );
        for &rate in &rates {
            let (rlnc, unc) = if rate == 0.0 {
                (b_rlnc, b_unc) // the baseline cell itself
            } else {
                let schedule = ChurnSchedule::rewire(rate, seed);
                (
                    median_dynamic_rounds(&graph, &schedule, DynProto::Rlnc, k, trials, seed),
                    median_dynamic_rounds(&graph, &schedule, DynProto::Uncoded, k, trials, seed),
                )
            };
            t.row(vec![
                format!("{rate:.2}"),
                format!("{rlnc:.0}"),
                format!("{:.2}", rlnc / b_rlnc),
                format!("{unc:.0}"),
                format!("{:.2}", unc / b_unc),
                format!("{:.2}", unc / rlnc),
            ]);
        }
        let _ = writeln!(text, "{label} (n = {}):\n{}", graph.n(), t.render());
        let _ = writeln!(
            md,
            "#### F9a {label} (n = {})\n\n{}",
            graph.n(),
            t.render_markdown()
        );
    }
}

/// F9b: the partition/heal adversary on the complete graph.
fn partition_adversary(scale: Scale, text: &mut String, md: &mut String) {
    let trials = scale.trials();
    let seed = churn_seed() ^ 0xB;
    let n = match scale {
        Scale::Quick => 24,
        Scale::Full => 32,
    };
    let graph = builders::complete(n).expect("complete");
    let k = n; // all-to-all: the regime where the coupon tail bites
    let blackouts: &[u64] = &[0, 2, 4, 8];
    let mut t = TableBuilder::new(vec![
        "blackout len".into(),
        "RLNC rounds".into(),
        "RLNC ratio".into(),
        "uncoded rounds".into(),
        "uncoded ratio".into(),
        "uncoded/RLNC".into(),
    ]);
    let mut base: Option<(f64, f64)> = None;
    let mut ratios = Vec::new();
    for &cut in blackouts {
        let schedule = if cut == 0 {
            ChurnSchedule::None
        } else {
            // Healed 1 epoch, partitioned `cut` epochs, repeating.
            ChurnSchedule::partition_heal(n / 2, 1, cut)
        };
        let rlnc = median_dynamic_rounds(&graph, &schedule, DynProto::Rlnc, k, trials, seed);
        let unc = median_dynamic_rounds(&graph, &schedule, DynProto::Uncoded, k, trials, seed);
        let (b_rlnc, b_unc) = *base.get_or_insert((rlnc, unc));
        ratios.push((cut, rlnc / b_rlnc, unc / b_unc, unc / rlnc));
        t.row(vec![
            if cut == 0 {
                "static".into()
            } else {
                format!("{cut}/1")
            },
            format!("{rlnc:.0}"),
            format!("{:.2}", rlnc / b_rlnc),
            format!("{unc:.0}"),
            format!("{:.2}", unc / b_unc),
            format!("{:.2}", unc / rlnc),
        ]);
    }
    let _ = writeln!(
        text,
        "F9b  alternating partition/heal on K_{n} (k = n all-to-all; cut `c` epochs\n\
         per 1 healed):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F9b — adversarial partition/heal on K_{n} (k = n)\n\n\
         The complete graph is split into two halves for `blackout` epochs\n\
         out of every `blackout + 1`; cross-partition bandwidth shrinks to\n\
         the heal epochs. Every RLNC crossing is innovative w.h.p. (the\n\
         rank-projection argument never references a static graph), and\n\
         the ≈n/2 crossings of a single heal round already cover the k/2\n\
         ranks each side is missing — so **RLNC's ratio stays flat as the\n\
         blackouts lengthen**. The uncoded baseline remains the ~constant\n\
         `uncoded/RLNC` multiple behind at every severity: its\n\
         coupon-collector tail — the degradation that coding removes — is\n\
         what it keeps paying whether or not the adversary is active.\n\
         {trials} trials/cell.\n\n{}",
        t.render_markdown()
    );
}

/// F9c: bridge-cut adversary (uniform AG vs TAG) + crash-then-rewire.
fn bridge_and_recovery(scale: Scale, text: &mut String, md: &mut String) {
    let trials = scale.trials();
    let seed = churn_seed() ^ 0xC;
    let n = match scale {
        Scale::Quick => 16,
        Scale::Full => 24,
    };
    let up = churn_period();
    let graph = builders::barbell(n).expect("barbell");
    let bridge = (n / 2 - 1, n / 2);
    let k = n;
    // TAG is not covered by `median_dynamic_rounds` (extra tree protocol),
    // so both protocols get a local trial loop on the shared seeds.
    let run_cell = |schedule: &ChurnSchedule, tag: bool| -> f64 {
        let rounds: Vec<u64> = (0..trials)
            .map(|t| {
                let pseed = seeding::trial_protocol_seed(seed, t);
                let eseed = seeding::engine_seed_for(pseed);
                let ecfg = EngineConfig::synchronous(eseed).with_max_rounds(20_000_000);
                let cfg = AgConfig::new(k);
                let topo = ScheduledTopology::new(&graph, schedule.clone());
                let stats = if tag {
                    let tree =
                        BroadcastTree::on_topology(topo.clone(), 0, CommModel::RoundRobin, pseed)
                            .expect("tree");
                    let mut p =
                        Tag::<Gf256, _, _>::on_topology(topo, tree, &cfg, pseed).expect("tag");
                    Engine::new(ecfg).run_batch(&mut p)
                } else {
                    let mut p =
                        AlgebraicGossip::<Gf256, _>::on_topology(topo, &cfg, pseed).expect("ag");
                    Engine::new(ecfg).run_batch(&mut p)
                };
                assert!(stats.completed, "F9c trial hit the round budget");
                stats.rounds
            })
            .collect();
        Summary::of_u64(&rounds).median()
    };
    let cuts: &[u64] = &[0, 2 * up, 8 * up];
    let mut t = TableBuilder::new(vec![
        format!("bridge cut (per {up} up)"),
        "uniform AG rounds".into(),
        "AG ratio".into(),
        "TAG(B_RR) rounds".into(),
        "TAG ratio".into(),
        "TAG/AG".into(),
    ]);
    let mut base: Option<(f64, f64)> = None;
    for &cut in cuts {
        let schedule = if cut == 0 {
            ChurnSchedule::None
        } else {
            ChurnSchedule::bridge_cut(bridge, up, cut)
        };
        let ag = run_cell(&schedule, false);
        let tag = run_cell(&schedule, true);
        let (b_ag, b_tag) = *base.get_or_insert((ag, tag));
        t.row(vec![
            if cut == 0 {
                "static".into()
            } else {
                format!("{cut}")
            },
            format!("{ag:.0}"),
            format!("{:.2}", ag / b_ag),
            format!("{tag:.0}"),
            format!("{:.2}", tag / b_tag),
            format!("{:.2}", tag / ag),
        ]);
    }
    let _ = writeln!(
        text,
        "F9c  barbell({n}) bridge-cut adversary, k = n (bridge up {up} epochs, cut c):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F9c — barbell bridge-cut adversary: uniform AG vs TAG\n\n\
         The barbell bridge cycles `{up}` epochs up / `c` epochs cut; when\n\
         the bridge is down, TAG's Phase 2 skips the missing parent edge\n\
         (the tree routes over the bridge) and uniform AG has no cross\n\
         edge to draw. With k = n messages that must cross a cut of\n\
         capacity ≤ 2 per up-round, *any* protocol is bridge-uptime-bound,\n\
         so both ratios grow together with the downtime: the adversary,\n\
         not the protocol's tree engineering, sets the stopping time —\n\
         which is exactly the erosion claim: the static barbell is where\n\
         TAG's Θ(n) speedup lives, and a dynamic adversary takes that\n\
         regime away (TAG/AG drifts toward parity instead of the paper's\n\
         n-fold separation). {trials} trials/cell.\n\n{}",
        t.render_markdown()
    );

    // Crash-then-rewire recovery: stall statically, complete dynamically.
    let star = builders::star(match scale {
        Scale::Quick => 10,
        Scale::Full => 16,
    })
    .expect("star");
    let cfg = AgConfig::new(3).with_placement(Placement::SingleSource(0));
    let plan = CrashPlan::explicit(vec![(0, 2)]);
    let budget = 3_000;
    let pseed = seeding::trial_protocol_seed(seed ^ 0xD, 0);
    let eseed = seeding::engine_seed_for(pseed);
    let inner = AlgebraicGossip::<Gf256>::new(&star, &cfg, pseed).expect("static");
    let mut static_run = WithCrashes::new(inner, plan.clone());
    let s_static =
        Engine::new(EngineConfig::synchronous(eseed).with_max_rounds(budget)).run(&mut static_run);
    let topo = ScheduledTopology::new(&star, ChurnSchedule::rewire(0.2, seed ^ 0xE));
    let inner = AlgebraicGossip::<Gf256, _>::on_topology(topo, &cfg, pseed).expect("dynamic");
    let mut dynamic_run = WithCrashes::new(inner, plan);
    let s_dynamic =
        Engine::new(EngineConfig::synchronous(eseed).with_max_rounds(budget)).run(&mut dynamic_run);
    assert!(
        !s_static.completed && s_dynamic.completed,
        "crash-then-rewire recovery scenario regressed"
    );
    let mut t = TableBuilder::new(vec![
        "scenario".into(),
        "completed".into(),
        "rounds".into(),
        "surviving ranks".into(),
    ]);
    let rank_sum = |p: &WithCrashes<AlgebraicGossip<Gf256>>| -> String {
        format!(
            "{}/{}",
            p.survivors()
                .iter()
                .map(|&v| p.inner().rank(v))
                .sum::<usize>(),
            p.survivors().len() * 3
        )
    };
    let rank_sum_dyn = |p: &WithCrashes<AlgebraicGossip<Gf256, ScheduledTopology>>| -> String {
        format!(
            "{}/{}",
            p.survivors()
                .iter()
                .map(|&v| p.inner().rank(v))
                .sum::<usize>(),
            p.survivors().len() * 3
        )
    };
    t.row(vec![
        "static star, hub crash".into(),
        "no (stalled)".into(),
        format!("> {budget}"),
        rank_sum(&static_run),
    ]);
    t.row(vec![
        "rewire 0.2, hub crash".into(),
        "yes".into(),
        format!("{}", s_dynamic.rounds),
        rank_sum_dyn(&dynamic_run),
    ]);
    let _ = writeln!(
        text,
        "F9c' crash-then-rewire recovery (star, hub = single source dies after\n\
         one answered round):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F9c′ — crash-then-rewire recovery\n\n\
         The star hub is the single source; it answers exactly one round\n\
         (every leaf ends at rank 1 of k = 3) and dies. Statically the\n\
         leaves are pairwise unreachable and the run stalls at the budget;\n\
         under rewiring churn the topology heals around the corpse and the\n\
         survivors aggregate their collectively-full-rank combos. Crash\n\
         tolerance composes with dynamics — no protocol change needed.\n\n{}",
        t.render_markdown()
    );
}

/// Runs the F9 dynamic-topology suite.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut text = String::new();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "Scheduled-churn scenarios over the `Topology` abstraction\n\
         (`ScheduledTopology` advancing one epoch per round; round 1 always\n\
         runs the initial graph). The Haeupler-style claim under test:\n\
         RLNC's stopping time stays flat (bounded ratio to its static run)\n\
         under churn — any k independent equations decode, whichever\n\
         graphs delivered them — while the uncoded baseline keeps paying\n\
         its coupon-collector multiple at every churn rate and adversary\n\
         severity. Knobs: `AG_CHURN_RATES`, `AG_CHURN_SEED`,\n\
         `AG_CHURN_PERIOD` (see README).\n"
    );
    churn_rate_sweep(scale, &mut text, &mut md);
    partition_adversary(scale, &mut text, &mut md);
    bridge_and_recovery(scale, &mut text, &mut md);
    ExperimentReport {
        id: "F9",
        title: "Dynamic topologies: churn sweeps, adversarial schedules, recovery",
        text,
        markdown: md,
    }
}
