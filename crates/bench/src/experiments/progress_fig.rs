//! F7 — rank-evolution traces: how total rank grows over rounds, per
//! protocol, on the barbell. Uniform AG plateaus when each clique has
//! saturated internally and the bridge throttles cross-traffic; TAG climbs
//! linearly once its tree is up. This is the time-domain view behind the
//! F6 separation.

use std::fmt::Write as _;

use ag_analysis::{downsample, sparkline};
use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{Engine, EngineConfig};
use algebraic_gossip::{AgConfig, AlgebraicGossip, BroadcastTree, CommModel, Tag};

use crate::common::{ExperimentReport, Scale};

/// Runs the rank-progress trace experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let n = match scale {
        Scale::Quick => 32,
        Scale::Full => 64,
    };
    let g = builders::barbell(n).unwrap();
    let k = n;
    let full_rank = (n * k) as f64;
    let width = 64;
    let mut text = String::new();
    let mut md = String::new();

    // Trace uniform AG.
    let cfg = AgConfig::new(k);
    let mut uniform = AlgebraicGossip::<Gf256>::new(&g, &cfg, 71).unwrap();
    let mut trace_u = Vec::new();
    let stats_u = Engine::new(EngineConfig::synchronous(71).with_max_rounds(5_000_000))
        .run_observed(&mut uniform, |_, p| {
            trace_u.push(p.total_rank() as f64 / full_rank);
        });

    // Trace TAG+BRR.
    let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 71).unwrap();
    let mut tag = Tag::<Gf256, _>::new(&g, brr, &cfg, 71).unwrap();
    let mut trace_t = Vec::new();
    let stats_t = Engine::new(EngineConfig::synchronous(71).with_max_rounds(5_000_000))
        .run_observed(&mut tag, |_, p| {
            let total: usize = (0..n).map(|v| p.rank(v)).sum();
            trace_t.push(total as f64 / full_rank);
        });

    let spark_u = sparkline(&downsample(&trace_u, width));
    let spark_t = sparkline(&downsample(&trace_t, width));
    let _ = writeln!(
        text,
        "F7  normalized total rank vs time, barbell n = {n}, k = {k} (sync):\n\n\
         uniform AG ({} rounds):\n  |{spark_u}|\n\n\
         TAG+B_RR  ({} rounds):\n  |{spark_t}|\n\n\
         Uniform AG's long middle plateau is the Ω(n²) bridge bottleneck; TAG\n\
         ramps straight to completion once Phase 1 ends.\n",
        stats_u.rounds, stats_t.rounds
    );
    let _ = writeln!(
        md,
        "### F7 Rank evolution on the barbell (n = {n}, k = {k})\n\n\
         ```text\nuniform AG ({} rounds): |{spark_u}|\nTAG+B_RR   ({} rounds): |{spark_t}|\n```\n\n\
         Each cell is the network-wide fraction of full rank in that time\n\
         bucket. The uniform-AG plateau is the bridge bottleneck; TAG's ramp\n\
         is the pipelined tree flow of Lemma 1.\n",
        stats_u.rounds, stats_t.rounds
    );

    ExperimentReport {
        id: "F7",
        title: "Rank-evolution traces on the barbell",
        text,
        markdown: md,
    }
}
