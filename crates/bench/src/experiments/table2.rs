//! T2 — Table 2 of the paper: our bound vs Haeupler's `O(k/γ + log²n/λ)`
//! on the line, grid and binary tree, plus measured uniform-AG times.

use std::fmt::Write as _;

use ag_analysis::{uniform_ag_bound, Table2Family, TableBuilder};
use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::TimeModel;
use algebraic_gossip::ProtocolKind;

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

fn instance(family: Table2Family, n: usize) -> ag_graph::Graph {
    match family {
        Table2Family::Line => builders::path(n).unwrap(),
        Table2Family::Grid => {
            let side = (n as f64).sqrt().round() as usize;
            builders::grid(side, side).unwrap()
        }
        Table2Family::BinaryTree => builders::binary_tree(n).unwrap(),
    }
}

/// Runs the Table 2 comparison.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let (n_measure, n_formula) = match scale {
        Scale::Quick => (36, 1 << 12),
        Scale::Full => (64, 1 << 16),
    };
    let trials = scale.trials();
    let mut text = String::new();
    let mut md = String::new();

    // Formula comparison at large n (the table as printed in the paper).
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "k".into(),
        "Haeupler [13]".into(),
        "this paper".into(),
        "improvement".into(),
        "paper predicts".into(),
    ]);
    let ln2 = (n_formula as f64).ln().powi(2);
    for family in Table2Family::all() {
        let k = match family {
            // Table 2's regimes: any k for line; k = O(sqrt n) for grid;
            // small k shows the tree's Ω(n log n / k) factor best.
            Table2Family::Line => 256,
            Table2Family::Grid => (n_formula as f64).sqrt() as usize,
            Table2Family::BinaryTree => 64,
        };
        let h = family.haeupler_column(k, n_formula);
        let ours = family.our_column(k, n_formula);
        let predicted = match family {
            Table2Family::Line => format!("log²n = {ln2:.0}"),
            Table2Family::Grid => format!("log²n = {ln2:.0}"),
            Table2Family::BinaryTree => {
                format!(
                    "Ω(n·ln n/k) = {:.0}",
                    n_formula as f64 * (n_formula as f64).ln() / k as f64
                )
            }
        };
        t.row(vec![
            family.name().into(),
            k.to_string(),
            format!("{h:.3e}"),
            format!("{ours:.3e}"),
            format!("{:.0}x", family.improvement_factor(k, n_formula)),
            predicted,
        ]);
    }
    let _ = writeln!(
        text,
        "T2(a)  bound formulas at n = {n_formula}:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T2(a) Bound formulas at n = {n_formula}\n\n{}",
        t.render_markdown()
    );

    // Measured uniform AG vs both bounds at simulation scale, with the
    // graph quantities computed exactly: γ via Stoer–Wagner min cut, λ via
    // the BFS-sweep conductance estimate.
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "n".into(),
        "k".into(),
        "γ (min cut)".into(),
        "λ (sweep est.)".into(),
        "measured sync".into(),
        "our bound".into(),
        "Haeupler bound".into(),
        "meas/ours".into(),
    ]);
    for family in Table2Family::all() {
        let g = instance(family, n_measure);
        let k = (g.n() / 2).max(2);
        let gamma = ag_graph::metrics::global_min_cut(&g);
        let lambda = ag_graph::metrics::conductance_upper_bound(&g);
        let measured = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Synchronous,
            trials,
            201,
        );
        let bound = uniform_ag_bound(k, g.n(), g.diameter(), g.max_degree());
        let haeupler = ag_analysis::haeupler_bound(k, g.n(), gamma as f64, lambda);
        t.row(vec![
            family.name().into(),
            g.n().to_string(),
            k.to_string(),
            gamma.to_string(),
            format!("{lambda:.4}"),
            format!("{measured:.0}"),
            format!("{bound:.0}"),
            format!("{haeupler:.0}"),
            format!("{:.2}", measured / bound),
        ]);
    }
    let _ = writeln!(
        text,
        "T2(b)  measured uniform AG vs both bounds, exact γ and sweep-estimated λ\n       (n ≈ {n_measure}):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T2(b) Measured uniform AG vs both bounds (n ≈ {n_measure})\n\nγ is the exact Stoer–Wagner min cut; λ the BFS-sweep conductance estimate.\n\n{}",
        t.render_markdown()
    );

    // Improvement factor growth across n for the line (should track
    // log² n): the shape of Table 2's "Improvement factor" column.
    let mut t = TableBuilder::new(vec![
        "n".into(),
        "improvement (line)".into(),
        "log²n".into(),
        "ratio".into(),
    ]);
    for exp in [8u32, 10, 12, 14, 16] {
        let n = 1usize << exp;
        let imp = Table2Family::Line.improvement_factor(n / 4, n);
        let l2 = (n as f64).ln().powi(2);
        t.row(vec![
            n.to_string(),
            format!("{imp:.0}"),
            format!("{l2:.0}"),
            format!("{:.2}", imp / l2),
        ]);
    }
    let _ = writeln!(
        text,
        "T2(c)  line improvement factor tracks log²n (k = n/4):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T2(c) Improvement factor growth (line, k = n/4)\n\n{}",
        t.render_markdown()
    );

    ExperimentReport {
        id: "T2",
        title: "Table 2 — comparison with Haeupler's bound",
        text,
        markdown: md,
    }
}
