//! F6 — the barbell separation: uniform AG is ~quadratic while TAG+B_RR is
//! linear, the paper's "speedup ratio of n" (Sections 1.1 and 5).

use std::fmt::Write as _;

use ag_analysis::{loglog_slope, TableBuilder};
use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::TimeModel;
use algebraic_gossip::ProtocolKind;

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

/// Runs the barbell separation experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials();
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32, 64],
        Scale::Full => vec![8, 16, 32, 64, 96, 128],
    };
    let mut text = String::new();
    let mut md = String::new();

    let mut t = TableBuilder::new(vec![
        "n".into(),
        "uniform AG".into(),
        "TAG+BRR".into(),
        "speedup".into(),
        "uniform/n²".into(),
        "TAG/n".into(),
    ]);
    let mut u_pts = Vec::new();
    let mut g_pts = Vec::new();
    for &n in &ns {
        let g = builders::barbell(n).unwrap();
        let u = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            n,
            TimeModel::Synchronous,
            trials,
            601,
        );
        let ta = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::TagBrr(0),
            n,
            TimeModel::Synchronous,
            trials,
            602,
        );
        u_pts.push((n as f64, u));
        g_pts.push((n as f64, ta));
        t.row(vec![
            n.to_string(),
            format!("{u:.0}"),
            format!("{ta:.0}"),
            format!("{:.1}x", u / ta),
            format!("{:.3}", u / (n * n) as f64),
            format!("{:.2}", ta / n as f64),
        ]);
    }
    let fu = loglog_slope(&u_pts);
    let ft = loglog_slope(&g_pts);
    let _ = writeln!(
        text,
        "F6  barbell all-to-all (k = n), median sync rounds over {trials} trials:\n{}\
         fitted exponents: uniform AG n^{:.2} (paper: Ω(n²)), TAG+BRR n^{:.2} (paper: Θ(n));\n\
         the speedup column grows ~linearly in n, the paper's 'speedup ratio of n'.\n",
        t.render(),
        fu.slope,
        ft.slope
    );
    let _ = writeln!(
        md,
        "### F6 Barbell separation (k = n, synchronous)\n\n{}\nFitted exponents: uniform AG `n^{:.2}` (paper: Ω(n²)), TAG+B_RR `n^{:.2}` (paper: Θ(n)).\n",
        t.render_markdown(),
        fu.slope,
        ft.slope
    );

    ExperimentReport {
        id: "F6",
        title: "Barbell: uniform AG Ω(n²) vs TAG Θ(n)",
        text,
        markdown: md,
    }
}
