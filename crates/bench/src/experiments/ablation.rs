//! A1–A3 — ablations beyond the paper's defaults: field size q,
//! loss/dedup, and the communication-model / action choices.

use std::fmt::Write as _;

use ag_analysis::{Summary, TableBuilder};
use ag_gf::{Gf16, Gf2, Gf256, Gf65536, SlabField, F257};
use ag_graph::builders;
use ag_sim::{EngineConfig, TimeModel};
use algebraic_gossip::{Action, ProtocolKind, RunSpec, TrialPlan};

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

fn median_with<F: SlabField>(
    g: &ag_graph::Graph,
    k: usize,
    trials: u64,
    seed0: u64,
    tweak: impl Fn(&mut RunSpec),
) -> f64 {
    let mut base = RunSpec::new(ProtocolKind::UniformAg, k);
    base.engine = EngineConfig::synchronous(0).with_max_rounds(5_000_000);
    tweak(&mut base);
    TrialPlan::new(trials, seed0)
        .run::<F>(g, &base)
        .expect("valid spec")
        .expect_all_ok(&format!("ablation on n={} k={k}", g.n()))
        .median_rounds()
}

/// Runs the ablation suite.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials();
    let n = match scale {
        Scale::Quick => 16,
        Scale::Full => 32,
    };
    let k = n;
    let mut text = String::new();
    let mut md = String::new();

    // ---- A1: field size q. The helpfulness probability is ≥ 1 − 1/q, so
    // GF(2) pays the largest redundancy penalty; the gain saturates fast.
    let g = builders::cycle(n).unwrap();
    let mut t = TableBuilder::new(vec![
        "field".into(),
        "q".into(),
        "median rounds".into(),
        "vs GF(2)".into(),
    ]);
    let q2 = median_with::<Gf2>(&g, k, trials, 1100, |_| {});
    for (name, q, rounds) in [
        ("GF(2)", 2u64, q2),
        (
            "GF(16)",
            16,
            median_with::<Gf16>(&g, k, trials, 1100, |_| {}),
        ),
        (
            "GF(256)",
            256,
            median_with::<Gf256>(&g, k, trials, 1100, |_| {}),
        ),
        (
            "GF(65536)",
            65536,
            median_with::<Gf65536>(&g, k, trials, 1100, |_| {}),
        ),
        (
            "F_257",
            257,
            median_with::<F257>(&g, k, trials, 1100, |_| {}),
        ),
    ] {
        t.row(vec![
            name.into(),
            q.to_string(),
            format!("{rounds:.0}"),
            format!("{:.2}x", rounds / q2),
        ]);
    }
    let _ = writeln!(
        text,
        "A1  field size (uniform AG, cycle n = {n}, k = {k}): helpfulness prob ≥ 1−1/q:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A1 Field-size ablation (cycle, n = {n}, k = {k})\n\n{}",
        t.render_markdown()
    );

    // ---- A2: loss and dedup. --------------------------------------------
    let g = builders::grid(4, n / 4).unwrap();
    let mut t = TableBuilder::new(vec![
        "configuration".into(),
        "median rounds".into(),
        "vs baseline".into(),
    ]);
    let base = median_with::<Gf256>(&g, k, trials, 1200, |_| {});
    for (name, loss, dedup) in [
        ("baseline (lossless, dedup on)", 0.0, true),
        ("dedup off", 0.0, false),
        ("loss 10%", 0.1, true),
        ("loss 30%", 0.3, true),
        ("loss 50%", 0.5, true),
    ] {
        let rounds = median_with::<Gf256>(&g, k, trials, 1200, |spec| {
            spec.engine = spec.engine.with_loss(loss).with_dedup(dedup);
        });
        t.row(vec![
            name.into(),
            format!("{rounds:.0}"),
            format!("{:.2}x", rounds / base),
        ]);
    }
    let _ = writeln!(
        text,
        "A2  loss / dedup (uniform AG, grid, n = {n}, k = {k}): RLNC degrades\n    gracefully — loss p stretches time by ≈ 1/(1−p):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A2 Loss / dedup ablation (grid, n = {n}, k = {k})\n\n{}",
        t.render_markdown()
    );

    // ---- A3: communication model and action. ----------------------------
    let g = builders::barbell(n).unwrap();
    let mut t = TableBuilder::new(vec!["variant".into(), "median rounds (barbell)".into()]);
    let uni = median_rounds_protocol::<Gf256>(
        &g,
        ProtocolKind::UniformAg,
        k,
        TimeModel::Synchronous,
        trials,
        1301,
    );
    let rr = median_rounds_protocol::<Gf256>(
        &g,
        ProtocolKind::RoundRobinAg,
        k,
        TimeModel::Synchronous,
        trials,
        1302,
    );
    t.row(vec!["uniform EXCHANGE".into(), format!("{uni:.0}")]);
    t.row(vec![
        "round-robin EXCHANGE (quasirandom)".into(),
        format!("{rr:.0}"),
    ]);
    for action in [Action::Push, Action::Pull] {
        let rounds = median_with::<Gf256>(&g, k, trials, 1303, |spec| {
            spec.ag = spec.ag.clone().with_action(action);
        });
        t.row(vec![format!("uniform {action:?}"), format!("{rounds:.0}")]);
    }
    let _ = writeln!(
        text,
        "A3  communication model / action (uniform AG, barbell n = {n}, k = {k}):\n    RR crosses the bridge deterministically every Δ rounds, beating uniform;\n    PUSH/PULL move one message per contact vs EXCHANGE's two:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A3 Communication model / action (barbell, n = {n}, k = {k})\n\n{}",
        t.render_markdown()
    );

    // ---- A4: the coding gain — RLNC vs the uncoded store-and-forward
    // baseline (random message selection). The baseline pays a
    // coupon-collector log k factor that widens with k.
    let mut t = TableBuilder::new(vec![
        "k (complete graph, n=k)".into(),
        "uncoded baseline".into(),
        "RLNC (uniform AG)".into(),
        "coding gain".into(),
    ]);
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32],
        Scale::Full => vec![8, 16, 32, 64, 128],
    };
    for &kk in &ks {
        let g = builders::complete(kk).unwrap();
        let rlnc = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            kk,
            TimeModel::Synchronous,
            trials,
            1401,
        );
        let base = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UncodedRandom,
            kk,
            TimeModel::Synchronous,
            trials,
            1402,
        );
        t.row(vec![
            kk.to_string(),
            format!("{base:.0}"),
            format!("{rlnc:.0}"),
            format!("{:.2}x", base / rlnc),
        ]);
    }
    let _ = writeln!(
        text,
        "A4  coding gain vs the uncoded baseline (all-to-all on K_n):\n    the baseline's coupon-collector tail widens the gap as k grows:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A4 Coding gain: RLNC vs uncoded random-message gossip (K_n, k = n)\n\n{}",
        t.render_markdown()
    );

    // ---- A5: sparse recoding density. -----------------------------------
    let g = builders::complete(n).unwrap();
    let mut t = TableBuilder::new(vec![
        "coding density".into(),
        "median rounds".into(),
        "vs dense".into(),
    ]);
    let dense = median_with::<Gf256>(&g, k, trials, 1500, |_| {});
    for density in [1.0, 0.5, 0.25, 0.1] {
        let rounds = median_with::<Gf256>(&g, k, trials, 1500, |spec| {
            spec.ag = spec.ag.clone().with_coding_density(density);
        });
        t.row(vec![
            format!("{density:.2}"),
            format!("{rounds:.0}"),
            format!("{:.2}x", rounds / dense),
        ]);
    }
    let _ = writeln!(
        text,
        "A5  sparse recoding (uniform AG, K_{n}, k = {k}): lower density cuts\n    combination cost but raises the redundancy probability:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A5 Sparse-recoding density (K_{n}, k = {k})\n\n{}",
        t.render_markdown()
    );

    // ---- A6: crash robustness. ------------------------------------------
    let g = builders::complete(n).unwrap();
    let mut t = TableBuilder::new(vec![
        "crash fraction @ round 3".into(),
        "completed runs".into(),
        "median rounds (completed)".into(),
    ]);
    for frac in [0.0, 0.1, 0.25, 0.4] {
        // Crash injection wraps the protocol, so it cannot be expressed
        // as a RunSpec — route the custom trial body through the plan's
        // map() escape hatch instead (central seeds, parallel execution).
        let outcomes = scale.plan(1600).map(|s| {
            let inner = algebraic_gossip::AlgebraicGossip::<Gf256>::new(
                &g,
                &algebraic_gossip::AgConfig::new(k),
                s.protocol,
            )
            .expect("valid");
            let plan = algebraic_gossip::CrashPlan::random_fraction(n, frac, 3, s.protocol);
            let mut proto = algebraic_gossip::WithCrashes::new(inner, plan);
            let stats =
                ag_sim::Engine::new(EngineConfig::synchronous(s.engine).with_max_rounds(100_000))
                    .run(&mut proto);
            stats.completed.then_some(stats.rounds)
        });
        let rounds: Vec<u64> = outcomes.iter().copied().flatten().collect();
        let completed = rounds.len() as u64;
        let median = if rounds.is_empty() {
            "—".to_string()
        } else {
            format!("{:.0}", Summary::of_u64(&rounds).median())
        };
        t.row(vec![
            format!("{frac:.2}"),
            format!("{completed}/{trials}"),
            median,
        ]);
    }
    let _ = writeln!(
        text,
        "A6  crash-stop robustness (uniform AG, K_{n}, k = {k}, crashes at round 3):\n    RLNC survives as long as every message's span reached a survivor:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### A6 Crash-stop robustness (K_{n}, k = {k})\n\n{}",
        t.render_markdown()
    );

    ExperimentReport {
        id: "A1-A6",
        title: "Ablations: field, loss, comm model, coding gain, density, crashes",
        text,
        markdown: md,
    }
}
