//! T1 — Table 1 of the paper: the main stopping-time results, measured.
//!
//! | protocol | graph | claim |
//! |---|---|---|
//! | Uniform AG | any | `O((k + log n + D)Δ)` (sync + async) |
//! | Uniform AG | constant Δ | `Θ(k + D)` sync, `O(k + D)` async |
//! | TAG | any | `O(k + log n + d(S) + t(S))` |
//! | TAG + B_RR | any, k = Ω(n) | `Θ(n)` |
//! | TAG + IS | large weak conductance, k = Ω(polylog) | `Θ(k)` sync |

use std::fmt::Write as _;

use ag_analysis::{linear_fit, tag_bound, uniform_ag_bound, TableBuilder};
use ag_gf::Gf256;
use ag_graph::{builders, Graph};
use ag_sim::{EngineConfig, TimeModel};
use algebraic_gossip::{measure_tree_protocol, BroadcastTree, CommModel, ProtocolKind};

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

fn families(n: usize) -> Vec<(&'static str, Graph)> {
    vec![
        ("path", builders::path(n).unwrap()),
        ("grid", builders::grid(4, n / 4).unwrap()),
        ("binary tree", builders::binary_tree(n).unwrap()),
        ("barbell", builders::barbell(n).unwrap()),
        ("complete", builders::complete(n).unwrap()),
    ]
}

/// Runs the full Table 1 validation.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let n = match scale {
        Scale::Quick => 16,
        Scale::Full => 32,
    };
    let trials = scale.trials();
    let mut text = String::new();
    let mut md = String::new();

    // ---- Row 1: uniform AG on any graph, both time models. -------------
    let k = n / 2;
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "D".into(),
        "Δ".into(),
        "sync rounds".into(),
        "async rounds".into(),
        "bound".into(),
        "sync/bound".into(),
    ]);
    for (name, g) in families(n) {
        let sync = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Synchronous,
            trials,
            101,
        );
        let asyn = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Asynchronous,
            trials,
            102,
        );
        let bound = uniform_ag_bound(k, g.n(), g.diameter(), g.max_degree());
        t.row(vec![
            name.into(),
            g.diameter().to_string(),
            g.max_degree().to_string(),
            format!("{sync:.0}"),
            format!("{asyn:.0}"),
            format!("{bound:.0}"),
            format!("{:.2}", sync / bound),
        ]);
    }
    let _ = writeln!(
        text,
        "T1.1  uniform AG vs O((k + ln n + D)·Δ), k = {k}, n = {n}:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T1.1 Uniform AG: `O((k + log n + D)Δ)` (k = {k}, n = {n})\n\n{}",
        t.render_markdown()
    );

    // ---- Row 2: Θ(k + D) on constant-max-degree graphs. ----------------
    // Sweep k on the path and fit rounds = a + b·(k + D): order-optimality
    // shows up as a good linear fit with a moderate slope.
    let g = builders::path(n).unwrap();
    let d = f64::from(g.diameter());
    // Sweep k well past D so the k-term dominates the fit.
    let ks: Vec<usize> = vec![2, n / 2, n, 2 * n, 4 * n];
    let mut pts = Vec::new();
    let mut t = TableBuilder::new(vec!["k".into(), "k+D".into(), "sync rounds".into()]);
    for &kk in &ks {
        let r = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            kk,
            TimeModel::Synchronous,
            trials,
            103,
        );
        pts.push((kk as f64 + d, r));
        t.row(vec![
            kk.to_string(),
            format!("{:.0}", kk as f64 + d),
            format!("{r:.0}"),
        ]);
    }
    let fit = linear_fit(&pts);
    let _ = writeln!(
        text,
        "T1.2  Θ(k+D) on the path (Δ = 2): rounds ≈ {:.2}·(k+D) + {:.1},  R² = {:.3}\n{}",
        fit.slope,
        fit.intercept,
        fit.r_squared,
        t.render()
    );
    let _ = writeln!(
        md,
        "### T1.2 Constant max degree: `Θ(k + D)` (path, n = {n})\n\nFit: rounds ≈ {:.2}·(k+D) + {:.1}, R² = {:.3}\n\n{}",
        fit.slope,
        fit.intercept,
        fit.r_squared,
        t.render_markdown()
    );

    // ---- Row 3: TAG bound O(k + log n + d(S) + t(S)). ------------------
    let mut t = TableBuilder::new(vec![
        "graph".into(),
        "t(S) BRR".into(),
        "d(S)".into(),
        "TAG rounds".into(),
        "bound".into(),
        "ratio".into(),
    ]);
    for (name, g) in families(n) {
        let brr = BroadcastTree::new(&g, 0, CommModel::RoundRobin, 11).unwrap();
        let (tstats, tree) =
            measure_tree_protocol(brr, EngineConfig::synchronous(11).with_max_rounds(100_000));
        let tree = tree.expect("BRR completes");
        let rounds = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::TagBrr(0),
            k,
            TimeModel::Synchronous,
            trials,
            104,
        );
        // TAG runs Phase 1 on alternate wakeups: charge 2·t(S).
        let bound = tag_bound(k, g.n(), tree.tree_diameter(), 2.0 * tstats.rounds as f64);
        t.row(vec![
            name.into(),
            tstats.rounds.to_string(),
            tree.tree_diameter().to_string(),
            format!("{rounds:.0}"),
            format!("{bound:.0}"),
            format!("{:.2}", rounds / bound),
        ]);
    }
    let _ = writeln!(
        text,
        "T1.3  TAG vs O(k + ln n + d(S) + 2·t(S)), S = B_RR, k = {k}:\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T1.3 TAG: `O(k + log n + d(S) + t(S))` (k = {k}, n = {n})\n\n{}",
        t.render_markdown()
    );

    // ---- Row 4: k = Ω(n) ⇒ TAG+BRR = Θ(n) on any graph. ----------------
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![12, 24, 48],
        Scale::Full => vec![16, 32, 64, 128],
    };
    let mut t = TableBuilder::new(vec![
        "n".into(),
        "path t/n".into(),
        "barbell t/n".into(),
        "complete t/n".into(),
    ]);
    for &nn in &ns {
        let mut row = vec![nn.to_string()];
        for g in [
            builders::path(nn).unwrap(),
            builders::barbell(nn).unwrap(),
            builders::complete(nn).unwrap(),
        ] {
            let r = median_rounds_protocol::<Gf256>(
                &g,
                ProtocolKind::TagBrr(0),
                nn, // k = n
                TimeModel::Synchronous,
                trials,
                105,
            );
            row.push(format!("{:.2}", r / nn as f64));
        }
        t.row(row);
    }
    let _ = writeln!(
        text,
        "T1.4  TAG+B_RR with k = n: rounds/n must stay flat (Θ(n)):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T1.4 `k = Ω(n)` ⇒ TAG+B_RR finishes in `Θ(n)` on any graph\n\n{}",
        t.render_markdown()
    );

    // ---- Row 5: large weak conductance, k = Ω(polylog) ⇒ Θ(k). ---------
    let mut t = TableBuilder::new(vec![
        "n".into(),
        "k=⌈log²n⌉".into(),
        "oracle t(IS)".into(),
        "TAG+oracle t/k".into(),
        "TAG+IS t/k (facsimile)".into(),
    ]);
    for &nn in &ns {
        let g = builders::barbell(nn).unwrap();
        let lg = (nn as f64).log2();
        let kk = (lg * lg).ceil() as usize;
        let t_is = lg.ceil() as u64; // [5]: O(c(log n/Φ_c + c)), c=2, Φ_2=Θ(1)
        let oracle = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::TagOracle(0, t_is),
            kk,
            TimeModel::Synchronous,
            trials,
            106,
        );
        let is = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::TagIs(0),
            kk,
            TimeModel::Synchronous,
            trials,
            107,
        );
        t.row(vec![
            nn.to_string(),
            kk.to_string(),
            t_is.to_string(),
            format!("{:.2}", oracle / kk as f64),
            format!("{:.2}", is / kk as f64),
        ]);
    }
    let _ = writeln!(
        text,
        "T1.5  barbell, k = ⌈log²n⌉: TAG+oracle t/k flat ⇒ Θ(k); the honest IS\n      facsimile is Θ(n) on the barbell (documented substitution):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### T1.5 Weak conductance: `Θ(k)` with the IS bound (barbell)\n\nThe oracle charges Phase 1 the `O(c(log n/Φ_c + c))` rounds of [5]; the\nconcrete facsimile (no polylog machinery) is honestly Θ(n) — see DESIGN.md §4.\n\n{}",
        t.render_markdown()
    );

    ExperimentReport {
        id: "T1",
        title: "Table 1 — main stopping-time results",
        text,
        markdown: md,
    }
}
