//! The experiment suite, one module per table/figure of the paper.

pub mod ablation;
pub mod barbell_fig;
pub mod brr_fig;
pub mod dynamic_fig;
pub mod progress_fig;
pub mod queue_fig;
pub mod scaling_fig;
pub mod stopping_time;
pub mod table1;
pub mod table2;
