//! F5 — stopping-time scaling curves: t vs n at fixed k, t vs k at fixed
//! n, per topology and time model (the "figures" implied by every Θ claim).

use std::fmt::Write as _;

use ag_analysis::{loglog_slope, TableBuilder};
use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::TimeModel;
use algebraic_gossip::ProtocolKind;

use crate::common::{median_rounds_protocol, ExperimentReport, Scale};

/// Runs the scaling-curve experiments.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let trials = scale.trials();
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32, 64],
        Scale::Full => vec![8, 16, 32, 64, 128],
    };
    let mut text = String::new();
    let mut md = String::new();

    // ---- t vs n at fixed k, per family (uniform AG, sync). -------------
    let k_fixed = 4;
    let mut t = TableBuilder::new(vec![
        "n".into(),
        "path".into(),
        "cycle".into(),
        "grid 4×(n/4)".into(),
        "binary tree".into(),
        "complete".into(),
    ]);
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 5];
    for &n in &ns {
        let graphs = [
            builders::path(n).unwrap(),
            builders::cycle(n).unwrap(),
            builders::grid(4, n / 4).unwrap(),
            builders::binary_tree(n).unwrap(),
            builders::complete(n).unwrap(),
        ];
        let mut row = vec![n.to_string()];
        for (i, g) in graphs.iter().enumerate() {
            let r = median_rounds_protocol::<Gf256>(
                g,
                ProtocolKind::UniformAg,
                k_fixed,
                TimeModel::Synchronous,
                trials,
                501,
            );
            series[i].push((n as f64, r));
            row.push(format!("{r:.0}"));
        }
        t.row(row);
    }
    let slopes: Vec<f64> = series.iter().map(|s| loglog_slope(s).slope).collect();
    let _ = writeln!(
        text,
        "F5(a)  uniform AG, t vs n at k = {k_fixed} (sync), median rounds:\n{}\
         fitted n-exponents: path {:.2}, cycle {:.2}, grid {:.2}, tree {:.2}, complete {:.2}\n\
         (paper: D dominates ⇒ ≈1, 1, 0.5 — grid row uses fixed width 4 so D=Θ(n) ⇒ ≈1 —, ≈0 (log), ≈0)\n",
        t.render(),
        slopes[0], slopes[1], slopes[2], slopes[3], slopes[4]
    );
    let _ = writeln!(
        md,
        "### F5(a) Uniform AG: t vs n at k = {k_fixed} (synchronous)\n\n{}\nFitted exponents: path {:.2}, cycle {:.2}, grid {:.2}, tree {:.2}, complete {:.2}.\n",
        t.render_markdown(),
        slopes[0], slopes[1], slopes[2], slopes[3], slopes[4]
    );

    // ---- t vs k at fixed n, per family. ---------------------------------
    let n_fixed = match scale {
        Scale::Quick => 32,
        Scale::Full => 64,
    };
    let ks: Vec<usize> = vec![2, 4, 8, 16, 32];
    let mut t = TableBuilder::new(vec![
        "k".into(),
        "path (sync)".into(),
        "path (async)".into(),
        "complete (sync)".into(),
        "complete (async)".into(),
    ]);
    let mut sync_pts = Vec::new();
    for &k in &ks {
        let path = builders::path(n_fixed).unwrap();
        let comp = builders::complete(n_fixed).unwrap();
        let ps = median_rounds_protocol::<Gf256>(
            &path,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Synchronous,
            trials,
            502,
        );
        let pa = median_rounds_protocol::<Gf256>(
            &path,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Asynchronous,
            trials,
            503,
        );
        let cs = median_rounds_protocol::<Gf256>(
            &comp,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Synchronous,
            trials,
            504,
        );
        let ca = median_rounds_protocol::<Gf256>(
            &comp,
            ProtocolKind::UniformAg,
            k,
            TimeModel::Asynchronous,
            trials,
            505,
        );
        sync_pts.push((k as f64, ps));
        t.row(vec![
            k.to_string(),
            format!("{ps:.0}"),
            format!("{pa:.0}"),
            format!("{cs:.0}"),
            format!("{ca:.0}"),
        ]);
    }
    let _ = writeln!(
        text,
        "F5(b)  uniform AG, t vs k at n = {n_fixed}: rounds grow additively in k\n       (path stopping time ≈ a·k + D for k ≫ D):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F5(b) Uniform AG: t vs k at n = {n_fixed}\n\n{}",
        t.render_markdown()
    );

    // ---- TAG vs uniform across n on the path (both linear here). -------
    let mut t = TableBuilder::new(vec![
        "n".into(),
        "uniform AG (k=n)".into(),
        "TAG+BRR (k=n)".into(),
    ]);
    let mut u_pts = Vec::new();
    let mut g_pts = Vec::new();
    for &n in &ns {
        let g = builders::path(n).unwrap();
        let u = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::UniformAg,
            n,
            TimeModel::Synchronous,
            trials,
            506,
        );
        let ta = median_rounds_protocol::<Gf256>(
            &g,
            ProtocolKind::TagBrr(0),
            n,
            TimeModel::Synchronous,
            trials,
            507,
        );
        u_pts.push((n as f64, u));
        g_pts.push((n as f64, ta));
        t.row(vec![n.to_string(), format!("{u:.0}"), format!("{ta:.0}")]);
    }
    let su = loglog_slope(&u_pts).slope;
    let st = loglog_slope(&g_pts).slope;
    let _ = writeln!(
        text,
        "F5(c)  all-to-all (k = n) on the path: both protocols are Θ(n)\n       (exponents: uniform {su:.2}, TAG {st:.2}):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F5(c) All-to-all on the path — exponents: uniform {su:.2}, TAG {st:.2}\n\n{}",
        t.render_markdown()
    );

    ExperimentReport {
        id: "F5",
        title: "Scaling curves: t vs n and t vs k",
        text,
        markdown: md,
    }
}
