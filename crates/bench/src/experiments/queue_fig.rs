//! F1/F2 — Figure 1 and Theorem 2: the queueing reduction chain.

use std::fmt::Write as _;

use ag_analysis::{linear_fit, Summary, TableBuilder};
use ag_graph::builders;
use ag_queueing::{
    dominance_violation, ks_critical_5pct, level_line_of, JacksonLine, LineSystem, TreeSystem,
};
use algebraic_gossip::TrialPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{ExperimentReport, Scale};

/// Runs the queueing-reduction experiments.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let trials: u64 = match scale {
        Scale::Quick => 600,
        Scale::Full => 3000,
    };
    // Queueing drains are plain sampling functions (no RunSpec), so every
    // series runs through a TrialPlan's map(): one fresh, centrally
    // derived rng per trial, executed in parallel, collected in order.
    let sample = |seed0: u64, n: u64, f: &(dyn Fn(&mut StdRng) -> f64 + Sync)| -> Vec<f64> {
        TrialPlan::new(n, seed0).map(|s| f(&mut StdRng::seed_from_u64(s.protocol)))
    };
    let mut text = String::new();
    let mut md = String::new();

    // ---- F1: the dominance chain of Figure 1. --------------------------
    let g = builders::binary_tree(15).unwrap();
    let tree = g.bfs_tree(0).into_spanning_tree();
    let mut placement = vec![0usize; 15];
    for i in 0..12 {
        placement[3 + (i % 12)] += 1;
    }
    let lmax = tree.depth() as usize + 1;
    let k: usize = placement.iter().sum();

    let line_sys = level_line_of(&tree, &placement, 1.0);
    let tree_sys = TreeSystem::new(&tree, placement, 1.0).unwrap();
    let tail_sys = LineSystem::all_at_tail(lmax, k, 1.0);
    let jackson = JacksonLine::new(lmax, k, 1.0);

    let x_tree = sample(0xF1_01, trials, &|rng| tree_sys.drain_time(rng));
    let x_line = sample(0xF1_02, trials, &|rng| line_sys.drain_time(rng));
    let x_tail = sample(0xF1_03, trials, &|rng| tail_sys.drain_time(rng));
    let x_jack = sample(0xF1_04, trials, &|rng| jackson.stopping_time(rng));

    let crit = ks_critical_5pct(trials as usize, trials as usize);
    let mut t = TableBuilder::new(vec![
        "dominance link (X ⪯ Y)".into(),
        "mean X".into(),
        "mean Y".into(),
        "KS violation".into(),
        "5% critical".into(),
        "holds".into(),
    ]);
    for (name, x, y) in [
        ("Q^tree ⪯ Q^line", &x_tree, &x_line),
        ("Q^line ⪯ Q̂^line", &x_line, &x_tail),
        ("Q̂^line ⪯ Jackson(λ=μ/2)", &x_tail, &x_jack),
    ] {
        let v = dominance_violation(x, y);
        t.row(vec![
            name.into(),
            format!("{:.1}", Summary::of(x).mean()),
            format!("{:.1}", Summary::of(y).mean()),
            format!("{v:.4}"),
            format!("{crit:.4}"),
            (v < crit).to_string(),
        ]);
    }
    let _ = writeln!(
        text,
        "F1  Figure 1 chain on a binary-tree system (k = {k}, l_max = {lmax}, {trials} trials):\n{}",
        t.render()
    );
    let _ = writeln!(
        md,
        "### F1 Figure 1: stochastic-dominance chain (k = {k}, l_max = {lmax}, {trials} trials)\n\n{}",
        t.render_markdown()
    );

    // ---- F2: Theorem 2 scaling: drain time linear in k and in l_max. ---
    let mut t = TableBuilder::new(vec!["k".into(), "mean drain (l=6)".into()]);
    let mut pts_k = Vec::new();
    for k in [5usize, 10, 20, 40] {
        let sys = LineSystem::all_at_tail(6, k, 1.0);
        let draws = sample(0xF2_A000 + k as u64, trials.min(800), &|rng| {
            sys.drain_time(rng)
        });
        let m = Summary::of(&draws).mean();
        pts_k.push((k as f64, m));
        t.row(vec![k.to_string(), format!("{m:.1}")]);
    }
    let fit_k = linear_fit(&pts_k);
    let _ = writeln!(
        text,
        "F2(a)  Theorem 2, k-scaling (fit slope {:.2}, R² {:.3}):\n{}",
        fit_k.slope,
        fit_k.r_squared,
        t.render()
    );
    let _ = writeln!(
        md,
        "### F2(a) Theorem 2 k-scaling — slope {:.2}, R² {:.3}\n\n{}",
        fit_k.slope,
        fit_k.r_squared,
        t.render_markdown()
    );

    let mut t = TableBuilder::new(vec!["l_max".into(), "mean drain (k=10)".into()]);
    let mut pts_l = Vec::new();
    for l in [2usize, 4, 8, 16, 32] {
        let sys = LineSystem::all_at_tail(l, 10, 1.0);
        let draws = sample(0xF2_B000 + l as u64, trials.min(800), &|rng| {
            sys.drain_time(rng)
        });
        let m = Summary::of(&draws).mean();
        pts_l.push((l as f64, m));
        t.row(vec![l.to_string(), format!("{m:.1}")]);
    }
    let fit_l = linear_fit(&pts_l);
    let _ = writeln!(
        text,
        "F2(b)  Theorem 2, l_max-scaling (fit slope {:.2}, R² {:.3}):\n{}",
        fit_l.slope,
        fit_l.r_squared,
        t.render()
    );
    let _ = writeln!(
        md,
        "### F2(b) Theorem 2 l_max-scaling — slope {:.2}, R² {:.3}\n\n{}",
        fit_l.slope,
        fit_l.r_squared,
        t.render_markdown()
    );

    // ---- F2(c): the gossip rate μ = 1/(2nΔ) bound-violation check. -----
    let g = builders::grid(4, 4).unwrap();
    let (n, delta) = (g.n(), g.max_degree());
    let mu = 1.0 / (2.0 * n as f64 * delta as f64);
    let tree = g.bfs_tree(0).into_spanning_tree();
    let k = 12;
    let mut placement = vec![0usize; n];
    for i in 0..k {
        placement[1 + (i % (n - 1))] += 1;
    }
    let sys = TreeSystem::new(&tree, placement, mu).unwrap();
    let bound = (4.0 * k as f64 + 4.0 * f64::from(tree.depth()) + 16.0 * (n as f64).ln()) / mu;
    let times = sample(0xF2_C000, trials.min(800), &|rng| sys.drain_time(rng));
    let violations = times.iter().filter(|&&t| t > bound).count();
    let _ = writeln!(
        text,
        "F2(c)  Theorem 2 with the gossip service rate μ = 1/(2nΔ) on the 4x4 grid:\n       bound = (4k + 4·l_max + 16·ln n)/μ = {bound:.0} timeslots;\n       violations: {violations}/{} (Theorem 2 allows ≈ 2/n² ≈ {:.1}%)\n",
        times.len(),
        200.0 / (n * n) as f64
    );
    let _ = writeln!(
        md,
        "### F2(c) Theorem 2 at the gossip rate μ = 1/(2nΔ)\n\nBound {bound:.0} timeslots; violations {violations}/{} (allowed ≈ 2/n²).\n",
        times.len()
    );

    ExperimentReport {
        id: "F1/F2",
        title: "Figure 1 & Theorem 2 — queueing reduction",
        text,
        markdown: md,
    }
}
