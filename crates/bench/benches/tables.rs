//! `cargo bench` entry point that regenerates every table and figure at
//! quick scale (harness = false: this is a driver, not a Criterion bench).
//!
//! The full-scale versions are produced by
//! `AG_BENCH_SCALE=full cargo run --release -p ag-bench --bin all_experiments`.

// Timing harness: wall-clock reads are this binary's job; the
// workspace-wide ban exists for simulation code.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_bench::{all_reports, Scale};

fn main() {
    // Respect `cargo bench -- --test` style filters minimally: any CLI
    // argument switches to a dry listing (Criterion passes --bench).
    let list_only = std::env::args().any(|a| a == "--list");
    if list_only {
        println!("tables: regenerates all paper tables/figures (quick scale)");
        return;
    }
    let started = Instant::now();
    for report in all_reports(Scale::Quick) {
        report.print();
    }
    println!(
        "regenerated all tables/figures at quick scale in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
