//! Criterion micro-benchmarks: RLNC decoder throughput.
//!
//! Measures full-generation decode cost — `k` innovative packet insertions
//! of `k + r` symbols each — for the generation sizes the simulations use.

use ag_gf::SlabField;
use ag_gf::{Gf2, Gf256};
use ag_rlnc::{Decoder, Generation, Recoder};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_decode<F: SlabField>(c: &mut Criterion, name: &str, k: usize, r: usize) {
    let mut rng = StdRng::seed_from_u64(2);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);
    // Pre-generate a surplus of coded packets so the iteration only
    // measures decoding.
    let packets: Vec<_> = (0..3 * k + 32)
        .map(|_| Recoder::new(&source).emit(&mut rng).expect("source emits"))
        .collect();
    c.bench_function(&format!("{name}/decode_k{k}_r{r}"), |b| {
        b.iter_batched(
            || (Decoder::<F>::new(k, r), packets.clone()),
            |(mut sink, packets)| {
                for p in packets {
                    if sink.is_complete() {
                        break;
                    }
                    sink.receive(p);
                }
                assert!(sink.is_complete());
                sink.decode().expect("complete")
            },
            BatchSize::SmallInput,
        )
    });
}

fn decoder_benches(c: &mut Criterion) {
    bench_decode::<Gf256>(c, "gf256", 16, 16);
    bench_decode::<Gf256>(c, "gf256", 64, 16);
    bench_decode::<Gf256>(c, "gf256", 128, 16);
    bench_decode::<Gf2>(c, "gf2", 64, 16);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = decoder_benches
}
criterion_main!(benches);
