//! Criterion micro-benchmarks: finite-field arithmetic throughput.
//!
//! The decoder hot path is `axpy` over rows of field elements, so `mul`
//! and `inv` throughput bound the whole simulator.

use ag_gf::{Field, Gf16, Gf2, Gf256, Gf65536, F257};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_field<F: Field>(c: &mut Criterion, name: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<F> = (0..1024).map(|_| F::random(&mut rng)).collect();
    let ys: Vec<F> = (0..1024).map(|_| F::random(&mut rng)).collect();
    c.bench_function(&format!("{name}/mul_1024"), |b| {
        b.iter(|| {
            let mut acc = F::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc += black_box(x) * black_box(y);
            }
            acc
        })
    });
    let nz: Vec<F> = xs.iter().copied().filter(|x| !x.is_zero()).collect();
    c.bench_function(&format!("{name}/inv_{}", nz.len()), |b| {
        b.iter(|| {
            let mut acc = F::ZERO;
            for &x in &nz {
                acc += black_box(x).inv().expect("nonzero");
            }
            acc
        })
    });
}

fn field_benches(c: &mut Criterion) {
    bench_field::<Gf2>(c, "gf2");
    bench_field::<Gf16>(c, "gf16");
    bench_field::<Gf256>(c, "gf256");
    bench_field::<Gf65536>(c, "gf65536");
    bench_field::<F257>(c, "f257");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = field_benches
}
criterion_main!(benches);
