//! Criterion macro-benchmarks: whole-protocol simulation throughput.
//!
//! One iteration = one complete dissemination run (engine + protocol +
//! decoding), the unit of work every experiment repeats.

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::EngineConfig;
use algebraic_gossip::{run_protocol, ProtocolKind, RunSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_once(g: &ag_graph::Graph, kind: ProtocolKind, k: usize, seed: u64, sync: bool) -> u64 {
    let mut spec = RunSpec::new(kind, k).with_seed(seed);
    spec.engine = if sync {
        EngineConfig::synchronous(seed)
    } else {
        EngineConfig::asynchronous(seed)
    }
    .with_max_rounds(10_000_000);
    let (stats, ok) = run_protocol::<Gf256>(g, &spec).expect("valid");
    assert!(stats.completed && ok);
    stats.rounds
}

fn sim_benches(c: &mut Criterion) {
    let grid = builders::grid(6, 6).unwrap();
    c.bench_function("sim/uniform_ag_grid36_k18_sync", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&grid, ProtocolKind::UniformAg, 18, seed, true)
        })
    });
    c.bench_function("sim/uniform_ag_grid36_k18_async", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&grid, ProtocolKind::UniformAg, 18, seed, false)
        })
    });
    let barbell = builders::barbell(32).unwrap();
    c.bench_function("sim/tag_brr_barbell32_k32_sync", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&barbell, ProtocolKind::TagBrr(0), 32, seed, true)
        })
    });
    let complete = builders::complete(64).unwrap();
    c.bench_function("sim/uniform_ag_complete64_k16_sync", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_once(&complete, ProtocolKind::UniformAg, 16, seed, true)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = sim_benches
}
criterion_main!(benches);
