//! Byte-block framing: disseminating real data with RLNC.
//!
//! The paper's motivation is bandwidth-limited dissemination of `k` bounded
//! messages. This module maps an arbitrary byte blob onto a [`Generation`]:
//! the blob is split into `k` equal chunks (zero-padded), each chunk becomes
//! one source message over the field, and after gossip completes every node
//! reassembles the blob from its decoded generation. Used by the
//! `file_dissemination` example and the end-to-end integrity tests.

use ag_gf::symbols::{bytes_to_symbols, symbol_len, symbols_to_bytes};
use ag_gf::Field;

use crate::generation::Generation;

/// Splits a byte blob into a `k`-message [`Generation`] over `F`.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::{BlockDecoder, BlockEncoder};
///
/// let blob = b"the quick brown fox jumps over the lazy dog";
/// let enc = BlockEncoder::<Gf256>::new(blob, 5);
/// let gen = enc.generation();
/// assert_eq!(gen.k(), 5);
/// let back = BlockDecoder::new(blob.len(), 5).reassemble(gen.messages());
/// assert_eq!(back, blob);
/// ```
#[derive(Debug, Clone)]
pub struct BlockEncoder<F> {
    generation: Generation<F>,
    byte_len: usize,
}

impl<F: Field> BlockEncoder<F> {
    /// Splits `data` into `k` chunks and encodes each as field symbols.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(data: &[u8], k: usize) -> Self {
        assert!(k > 0, "block count must be positive");
        let chunk_bytes = data.len().div_ceil(k).max(1);
        let mut messages = Vec::with_capacity(k);
        for i in 0..k {
            let start = (i * chunk_bytes).min(data.len());
            let end = ((i + 1) * chunk_bytes).min(data.len());
            let mut chunk = data[start..end].to_vec();
            chunk.resize(chunk_bytes, 0); // zero-pad the tail chunk
            messages.push(bytes_to_symbols::<F>(&chunk));
        }
        let generation =
            Generation::from_messages(messages).expect("chunks are equal length by construction");
        BlockEncoder {
            generation,
            byte_len: data.len(),
        }
    }

    /// The generation ready for dissemination.
    #[must_use]
    pub fn generation(&self) -> &Generation<F> {
        &self.generation
    }

    /// Original blob length in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }

    /// Per-message chunk size in bytes (including padding).
    #[must_use]
    pub fn chunk_bytes(&self) -> usize {
        self.byte_len.div_ceil(self.generation.k()).max(1)
    }
}

/// Reassembles the original byte blob from decoded messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDecoder {
    byte_len: usize,
    k: usize,
}

impl BlockDecoder {
    /// A reassembler for a blob of `byte_len` bytes split into `k` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(byte_len: usize, k: usize) -> Self {
        assert!(k > 0, "block count must be positive");
        BlockDecoder { byte_len, k }
    }

    /// Stitches decoded messages back into the original bytes.
    ///
    /// # Panics
    ///
    /// Panics if `messages.len() != k` or a message is too short for its
    /// chunk.
    #[must_use]
    pub fn reassemble<F: Field>(&self, messages: &[Vec<F>]) -> Vec<u8> {
        assert_eq!(messages.len(), self.k, "wrong number of decoded messages");
        let chunk_bytes = self.byte_len.div_ceil(self.k).max(1);
        let expected_syms = symbol_len::<F>(chunk_bytes);
        let mut out = Vec::with_capacity(self.byte_len);
        for (i, msg) in messages.iter().enumerate() {
            assert!(
                msg.len() >= expected_syms,
                "decoded message {i} too short: {} symbols, expected {expected_syms}",
                msg.len()
            );
            let remaining = self.byte_len.saturating_sub(i * chunk_bytes);
            let take = remaining.min(chunk_bytes);
            if take == 0 {
                break;
            }
            out.extend(symbols_to_bytes::<F>(msg, chunk_bytes)[..take].iter());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Gf2, Gf256, Gf65536};

    fn round_trip<F: Field>(data: &[u8], k: usize) {
        let enc = BlockEncoder::<F>::new(data, k);
        let back = BlockDecoder::new(data.len(), k).reassemble(enc.generation().messages());
        assert_eq!(back, data, "q = {}, k = {k}", F::SIZE);
    }

    #[test]
    fn round_trip_various_fields_and_k() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for k in [1, 2, 3, 7, 16, 100] {
            round_trip::<Gf256>(&data, k);
            round_trip::<Gf2>(&data, k);
            round_trip::<Gf65536>(&data, k);
        }
    }

    #[test]
    fn round_trip_short_data_many_chunks() {
        // More chunks than bytes: padding-only tail chunks.
        round_trip::<Gf256>(b"ab", 5);
        round_trip::<Gf256>(b"", 3);
    }

    #[test]
    fn chunk_geometry() {
        let enc = BlockEncoder::<Gf256>::new(&[0u8; 10], 3);
        assert_eq!(enc.chunk_bytes(), 4); // ceil(10/3)
        assert_eq!(enc.generation().k(), 3);
        assert_eq!(enc.generation().message_len(), 4);
        assert_eq!(enc.byte_len(), 10);
    }

    #[test]
    #[should_panic(expected = "wrong number of decoded messages")]
    fn reassemble_validates_count() {
        let _ = BlockDecoder::new(10, 3).reassemble::<Gf256>(&[vec![]]);
    }
}
