//! Recoding: emitting fresh random combinations of stored equations.

use ag_gf::SlabField;
use rand::Rng;

use crate::decoder::Decoder;
use crate::packet::Packet;

/// Builds outgoing packets as random linear combinations of everything a
/// node currently stores.
///
/// This is the core RLNC operation from the paper: "A message is built as a
/// random linear combination of all messages stored by the node and the
/// coefficients are drawn uniformly at random from `F_q`." Note that the
/// combination is over the node's *stored equations*, so the emitted
/// packet's coefficient vector (over the original messages) is the same
/// random combination applied to the stored coefficient rows.
///
/// `Recoder` borrows the decoder immutably, so a node can compose its
/// outgoing message from pre-round state while its own inbox fills up —
/// exactly the synchronous-round semantics the simulator needs.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::{Decoder, Generation, Recoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = Generation::<Gf256>::random(4, 2, &mut rng);
/// let source = Decoder::with_all_messages(&g);
/// let pkt = Recoder::new(&source).emit(&mut rng).unwrap();
/// assert_eq!(pkt.generation_size(), 4);
/// assert_eq!(pkt.payload_len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Recoder<'a, F> {
    decoder: &'a Decoder<F>,
}

impl<'a, F: SlabField> Recoder<'a, F> {
    /// Wraps a decoder for recoding.
    #[must_use]
    pub fn new(decoder: &'a Decoder<F>) -> Self {
        Recoder { decoder }
    }

    /// Emits one coded packet, or `None` when the node stores nothing yet
    /// (rank 0 — it has nothing to say).
    ///
    /// The combination runs as fused multi-row gathers over the decoder's
    /// coefficient and payload slabs (one memory pass each).
    #[must_use]
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Packet<F>> {
        self.emit_packed_row(rng)
            .map(|acc| Packet::from_packed_row(&acc, self.decoder.k()))
    }

    /// Like [`Recoder::emit`] but returning the packed augmented row
    /// directly — the wire format of the simulation hot path. Skipping the
    /// unpack-to-[`Packet`]/repack round trip (and its allocations) is
    /// what lets a rank-only contact cost one allocation end to end; feed
    /// the row to [`Decoder::receive_packed_row`]. Draws the same
    /// coefficients as [`Recoder::emit`] under the same RNG state.
    #[must_use]
    pub fn emit_packed_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<u8>> {
        let mut acc = Vec::new();
        self.emit_packed_row_into(rng, &mut acc).then_some(acc)
    }

    /// Like [`Recoder::emit_packed_row`] but writing into a caller-provided
    /// reusable buffer (cleared and sized to the row width), so the
    /// steady-state emit path performs no heap allocation once `out` has
    /// warmed up to capacity. Returns `false` — leaving `out` empty — when
    /// the node stores nothing yet. Draws the same coefficients as
    /// [`Recoder::emit`] under the same RNG state.
    ///
    /// The drawn factors are packed into the decoder's reusable buffer and
    /// the combination runs as two fused multi-row gathers (coefficient
    /// slab, then payload slab) via
    /// [`ag_linalg::EchelonBasis::accumulate_rows_into`] — which also
    /// settles any payload elimination the basis had deferred.
    // ag-lint: hot-path
    pub fn emit_packed_row_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u8>) -> bool {
        let basis = self.decoder.basis();
        out.clear();
        if basis.rank() == 0 {
            return false;
        }
        out.resize(basis.row_bytes(), 0);
        let mut factors = self.decoder.emit_factors().borrow_mut();
        factors.clear();
        factors.resize(basis.rank() * F::SYMBOL_BYTES, 0);
        // One uniform draw per stored row, in insertion order — the exact
        // sequence the eager per-row axpy loop drew (zeros included).
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            F::random(rng).write_symbol(slot);
        }
        basis.accumulate_rows_into(&factors, out);
        true
    }

    /// Emits a *sparse* coded packet: each stored row participates with
    /// probability `density` (with a uniform nonzero coefficient). Sparse
    /// recoding cuts the combination cost from `rank` to `density·rank`
    /// row-axpys per packet at the price of a higher redundancy
    /// probability — the classic sparse-RLNC trade-off, quantified by the
    /// density ablation experiment.
    ///
    /// With `density = 1.0` every row gets a uniform *nonzero*
    /// coefficient (slightly denser than [`Recoder::emit`], which allows
    /// zeros). If the sampled combination is empty, one uniformly chosen
    /// row is sent verbatim so the packet is never informationless.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn emit_sparse<R: Rng + ?Sized>(&self, density: f64, rng: &mut R) -> Option<Packet<F>> {
        self.emit_sparse_packed_row(density, rng)
            .map(|acc| Packet::from_packed_row(&acc, self.decoder.k()))
    }

    /// Packed-row counterpart of [`Recoder::emit_sparse`] (see
    /// [`Recoder::emit_packed_row`] for why the hot path wants rows).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn emit_sparse_packed_row<R: Rng + ?Sized>(
        &self,
        density: f64,
        rng: &mut R,
    ) -> Option<Vec<u8>> {
        let mut acc = Vec::new();
        self.emit_sparse_packed_row_into(density, rng, &mut acc)
            .then_some(acc)
    }

    /// Caller-buffer variant of [`Recoder::emit_sparse_packed_row`] (see
    /// [`Recoder::emit_packed_row_into`] for the buffer contract).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    // ag-lint: hot-path
    pub fn emit_sparse_packed_row_into<R: Rng + ?Sized>(
        &self,
        density: f64,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        assert!(
            density > 0.0 && density <= 1.0,
            "coding density must be in (0, 1]"
        );
        let basis = self.decoder.basis();
        out.clear();
        if basis.rank() == 0 {
            return false;
        }
        let mut factors = self.decoder.emit_factors().borrow_mut();
        factors.clear();
        factors.resize(basis.rank() * F::SYMBOL_BYTES, 0);
        let mut picked_any = false;
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            if !rng.gen_bool(density) {
                continue;
            }
            picked_any = true;
            F::random_nonzero(rng).write_symbol(slot);
        }
        if picked_any {
            out.resize(basis.row_bytes(), 0);
            basis.accumulate_rows_into(&factors, out);
        } else {
            // Degenerate draw: forward one stored row unmodified.
            basis.copy_packed_row_into(rng.gen_range(0..basis.rank()), out);
        }
        true
    }

    /// Emits a packet guaranteed to be *helpful to `target`* whenever the
    /// node is a helpful node for the target (used by tests and by the
    /// oracle ablation; real protocols use [`Recoder::emit`], paying the
    /// `1 − 1/q` helpfulness probability the analysis accounts for).
    ///
    /// Returns `None` if no helpful packet exists (i.e. this node's
    /// subspace is contained in the target's).
    #[must_use]
    pub fn emit_helpful<R: Rng + ?Sized>(
        &self,
        target: &Decoder<F>,
        rng: &mut R,
    ) -> Option<Packet<F>> {
        // Retry random combinations a few times (succeeds w.p. >= 1 - 1/q
        // per draw when helpful), then fall back to scanning basis rows.
        for _ in 0..8 {
            if let Some(p) = self.emit(rng) {
                if target.would_help(&p) {
                    return Some(p);
                }
            }
        }
        let basis = self.decoder.basis();
        let mut buf = Vec::new();
        (0..basis.rank()).find_map(|i| {
            basis.copy_packed_row_into(i, &mut buf);
            let p = Packet::from_packed_row(&buf, self.decoder.k());
            target.would_help(&p).then_some(p)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::Generation;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_node_emits_nothing() {
        let d = Decoder::<Gf256>::new(3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Recoder::new(&d).emit(&mut rng).is_none());
    }

    #[test]
    fn emitted_packet_is_in_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Generation::<Gf256>::random(4, 3, &mut rng);
        let mut d = Decoder::new(4, 3);
        d.seed_message(&g, 1);
        d.seed_message(&g, 2);
        for _ in 0..20 {
            let p = Recoder::new(&d).emit(&mut rng).unwrap();
            // Packet must be a combination of messages 1 and 2 only.
            assert!(p.coefficients()[0].is_zero());
            assert!(p.coefficients()[3].is_zero());
            // And it must never help the emitting node itself.
            assert!(!d.would_help(&p));
        }
    }

    #[test]
    fn payload_is_consistent_with_coefficients() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Generation::<Gf256>::random(3, 5, &mut rng);
        let source = Decoder::with_all_messages(&g);
        for _ in 0..20 {
            let p = Recoder::new(&source).emit(&mut rng).unwrap();
            // Recompute payload from ground truth and compare.
            for j in 0..5 {
                let mut acc = Gf256::ZERO;
                for (i, m) in g.messages().iter().enumerate() {
                    acc += p.coefficients()[i] * m[j];
                }
                assert_eq!(acc, p.payload()[j], "payload symbol {j} inconsistent");
            }
        }
    }

    #[test]
    fn helpfulness_probability_is_at_least_1_minus_1_over_q() {
        // Over GF(2) the bound is 1/2; empirically check a margin.
        let mut rng = StdRng::seed_from_u64(4);
        let g = Generation::<Gf2>::random(8, 0, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let mut sink = Decoder::<Gf2>::new(8, 0);
        let mut helpful = 0u32;
        let mut total = 0u32;
        while !sink.is_complete() {
            let p = Recoder::new(&source).emit(&mut rng).unwrap();
            total += 1;
            if sink.receive(p).is_innovative() {
                helpful += 1;
            }
        }
        // E[total] ~ k + 1.6; a catastrophically bad codec would blow this.
        assert!(total < 100, "took {total} packets to fill rank 8");
        assert!(helpful == 8);
    }

    #[test]
    fn emit_helpful_always_helps_when_possible() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Generation::<Gf2>::random(6, 2, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let mut sink = Decoder::<Gf2>::new(6, 2);
        while !sink.is_complete() {
            let p = Recoder::new(&source)
                .emit_helpful(&sink, &mut rng)
                .expect("source is helpful until sink completes");
            assert!(sink.receive(p).is_innovative());
        }
        assert_eq!(sink.decode().unwrap(), g.messages());
    }

    #[test]
    fn sparse_emit_is_in_span_and_never_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Generation::<Gf256>::random(6, 2, &mut rng);
        let mut d = Decoder::new(6, 2);
        d.seed_message(&g, 1);
        d.seed_message(&g, 4);
        for density in [0.05, 0.3, 1.0] {
            for _ in 0..30 {
                let p = Recoder::new(&d).emit_sparse(density, &mut rng).unwrap();
                assert!(!p.is_zero(), "density {density} produced a zero packet");
                assert!(p.coefficients()[0].is_zero());
                assert!(!d.would_help(&p), "packet left the node's span");
            }
        }
    }

    #[test]
    fn sparse_source_still_fills_sink() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = Generation::<Gf256>::random(8, 1, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let mut sink = Decoder::new(8, 1);
        let mut sent = 0;
        while !sink.is_complete() {
            let p = Recoder::new(&source).emit_sparse(0.25, &mut rng).unwrap();
            sink.receive(p);
            sent += 1;
            assert!(sent < 500, "sparse coding failed to converge");
        }
        assert_eq!(sink.decode().unwrap(), g.messages());
    }

    #[test]
    fn empty_node_emits_nothing_sparse() {
        let d = Decoder::<Gf256>::new(3, 0);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(Recoder::new(&d).emit_sparse(0.5, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "density")]
    fn zero_density_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = Generation::<Gf256>::random(2, 0, &mut rng);
        let d = Decoder::with_all_messages(&g);
        let _ = Recoder::new(&d).emit_sparse(0.0, &mut rng);
    }

    #[test]
    fn emit_helpful_none_when_subspace_contained() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Generation::<Gf256>::random(3, 0, &mut rng);
        let mut a = Decoder::new(3, 0);
        a.seed_message(&g, 0);
        let b = Decoder::with_all_messages(&g);
        // `a` cannot help `b`.
        assert!(Recoder::new(&a).emit_helpful(&b, &mut rng).is_none());
    }
}
