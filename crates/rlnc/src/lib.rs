//! Random linear network coding (RLNC) for algebraic gossip.
//!
//! This crate implements the message layer of the paper (Section 2,
//! "Random Linear Network Coding"): there are `k ≤ n` initial messages
//! `x_1, …, x_k`, each a vector in `F_q^r`. Every transmitted [`Packet`]
//! carries the coefficients of a random linear combination together with the
//! combined payload, i.e. one linear equation over the unknowns. A node
//! accumulates equations in a [`Decoder`]; a received packet is *helpful*
//! (innovative) iff it raises the decoder's rank, and once the rank reaches
//! `k` the node solves the system and recovers every message.
//!
//! [`Recoder`] produces outgoing packets as fresh random combinations of
//! *everything the node currently stores* — the defining feature of RLNC
//! gossip (as opposed to store-and-forward rumor spreading).
//!
//! For simulations, [`DecoderArena`] holds all `n` nodes' decoders in one
//! preallocated slab and [`RowPool`] recycles the packed-row message
//! buffers, together making the steady-state gossip round loop free of
//! per-message heap allocation (see `bench_rlnc_throughput`).
//!
//! # Examples
//!
//! ```
//! use ag_gf::Gf256;
//! use ag_rlnc::{Decoder, Generation, Recoder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Three source messages of four symbols each.
//! let generation = Generation::from_messages(vec![
//!     vec![Gf256::new(1); 4],
//!     vec![Gf256::new(2); 4],
//!     vec![Gf256::new(3); 4],
//! ]).unwrap();
//!
//! // The source holds everything; a sink starts empty.
//! let source = Decoder::with_all_messages(&generation);
//! let mut sink = Decoder::new(3, 4);
//! while !sink.is_complete() {
//!     let pkt = Recoder::new(&source).emit(&mut rng).expect("source has data");
//!     sink.receive(pkt);
//! }
//! assert_eq!(sink.decode().unwrap(), generation.messages());
//! ```

mod arena;
mod block;
mod decoder;
mod generation;
mod packet;
mod pool;
mod recoder;

pub use ag_linalg::{ArenaError, ArenaGrowth};
pub use arena::{DecoderArena, DecoderShard};
pub use block::{BlockDecoder, BlockEncoder};
pub use decoder::{CodingError, Decoder, Reception};
pub use generation::{Generation, GenerationError};
pub use packet::Packet;
pub use pool::RowPool;
pub use recoder::Recoder;
