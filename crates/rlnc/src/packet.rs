//! The coded packet: one linear equation over the source messages.

use ag_gf::{Field, SlabField};

/// A coded packet: `k` combination coefficients plus the combined payload.
///
/// This mirrors the paper's message format exactly: "a message contains the
/// coefficients of the variables and the result of the equation; therefore
/// the length of each message is `r·log₂q + k·log₂q` bits". A packet with a
/// zero coefficient vector carries no information (a node with rank 0 sends
/// nothing in our protocols, but such packets are still representable and
/// are simply redundant on receipt).
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::Packet;
///
/// let p = Packet::new(vec![Gf256::new(1), Gf256::new(0)], vec![Gf256::new(9)]);
/// assert_eq!(p.generation_size(), 2);
/// assert_eq!(p.payload_len(), 1);
/// assert!(!p.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet<F> {
    coefficients: Vec<F>,
    payload: Vec<F>,
}

impl<F: Field> Packet<F> {
    /// Creates a packet from a coefficient vector and combined payload.
    #[must_use]
    pub fn new(coefficients: Vec<F>, payload: Vec<F>) -> Self {
        Packet {
            coefficients,
            payload,
        }
    }

    /// The generation size `k` this packet was coded over.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.coefficients.len()
    }

    /// The payload length `r` in field symbols.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The combination coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &[F] {
        &self.coefficients
    }

    /// The combined payload symbols.
    #[must_use]
    pub fn payload(&self) -> &[F] {
        &self.payload
    }

    /// True when every coefficient is zero (the packet is informationless).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coefficients.iter().all(|c| c.is_zero())
    }

    /// The packet as one augmented equation row `[coefficients | payload]`.
    #[must_use]
    pub fn into_row(self) -> Vec<F> {
        let mut row = self.coefficients;
        row.extend(self.payload);
        row
    }

    /// Rebuilds a packet from an augmented row produced by [`Packet::into_row`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len() < k`.
    #[must_use]
    pub fn from_row(row: Vec<F>, k: usize) -> Self {
        assert!(row.len() >= k, "row shorter than generation size");
        let mut coefficients = row;
        let payload = coefficients.split_off(k);
        Packet {
            coefficients,
            payload,
        }
    }

    /// Size of the packet on the wire in bits: `(k + r)·log₂ q`.
    ///
    /// This is the quantity the paper's "bounded message size" premise
    /// constrains; it is reported by the simulator's traffic metrics.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        let log_q = 64 - (F::SIZE - 1).leading_zeros() as u64;
        (self.coefficients.len() as u64 + self.payload.len() as u64) * log_q
    }
}

impl<F: SlabField> Packet<F> {
    /// The packet as one packed augmented row `[coefficients | payload]`,
    /// in the slab layout `ag_linalg::EchelonBasis` stores and consumes.
    #[must_use]
    pub fn to_packed_row(&self) -> Vec<u8> {
        let mut row =
            Vec::with_capacity((self.coefficients.len() + self.payload.len()) * F::SYMBOL_BYTES);
        F::pack_into(&self.coefficients, &mut row);
        F::pack_into(&self.payload, &mut row);
        row
    }

    /// Packs the augmented row into a caller-owned buffer (cleared first)
    /// — the allocation-free sibling of [`Packet::to_packed_row`] for hot
    /// receive loops that deliver many packets through one scratch row.
    pub fn write_packed_row_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve((self.coefficients.len() + self.payload.len()) * F::SYMBOL_BYTES);
        F::pack_into(&self.coefficients, out);
        F::pack_into(&self.payload, out);
    }

    /// Rebuilds a packet from a packed augmented row (the inverse of
    /// [`Packet::to_packed_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` holds fewer than `k` symbols or is not a multiple of
    /// the symbol size.
    #[must_use]
    pub fn from_packed_row(row: &[u8], k: usize) -> Self {
        assert!(
            row.len() >= k * F::SYMBOL_BYTES,
            "row shorter than generation size"
        );
        let split = k * F::SYMBOL_BYTES;
        Packet {
            coefficients: F::unpack(&row[..split]),
            payload: F::unpack(&row[split..]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Field, Gf2, Gf256};

    #[test]
    fn round_trip_through_row() {
        let p = Packet::new(
            vec![Gf256::new(3), Gf256::new(7)],
            vec![Gf256::new(1), Gf256::new(2), Gf256::new(9)],
        );
        let row = p.clone().into_row();
        assert_eq!(row.len(), 5);
        assert_eq!(Packet::from_row(row, 2), p);
    }

    #[test]
    fn zero_detection() {
        let z = Packet::new(vec![Gf256::ZERO; 3], vec![Gf256::new(5)]);
        assert!(z.is_zero());
        let nz = Packet::new(vec![Gf256::ZERO, Gf256::ONE], vec![]);
        assert!(!nz.is_zero());
    }

    #[test]
    fn wire_bits_matches_paper_formula() {
        // GF(256): log q = 8 bits; k = 4, r = 16 -> (4+16)*8 = 160.
        let p = Packet::new(vec![Gf256::ZERO; 4], vec![Gf256::ZERO; 16]);
        assert_eq!(p.wire_bits(), 160);
        // GF(2): log q = 1 bit.
        let b = Packet::new(vec![Gf2::ZERO; 4], vec![Gf2::ZERO; 16]);
        assert_eq!(b.wire_bits(), 20);
    }

    #[test]
    #[should_panic(expected = "row shorter")]
    fn from_row_validates_length() {
        let _ = Packet::<Gf256>::from_row(vec![Gf256::ONE], 2);
    }
}
