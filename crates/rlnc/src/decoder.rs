//! The progressive Gauss–Jordan decoder: a node's stored equations.
//!
//! The decoder is a thin counting shell around [`EchelonBasis`], which
//! since PR 6 keeps coefficient vectors and payloads split: receptions and
//! helpfulness queries ([`Decoder::would_help`],
//! [`Decoder::is_helpful_node`]) read and reduce only the `k`-symbol
//! coefficient headers — allocation-free through reusable scratch — while
//! payload elimination is logged and replayed in fused batches when
//! [`Decoder::decode`], a recoder emit, or an explicit [`Decoder::settle`]
//! actually observes payload bytes. Deep pending batches settle as one
//! blocked (BLAS-3) panel multiply, shallow ones row by row — the
//! schedule is `ag_linalg::ReplayMode` (`AG_LINALG_REPLAY`, default
//! `Auto`). Verdicts and decoded bytes are bit-identical to eager
//! elimination on either schedule (the differential suites pin this
//! against the scalar oracle); only the *when* and the *grouping* of the
//! payload arithmetic change.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;

use ag_gf::SlabField;
use ag_linalg::{EchelonBasis, Insertion};

use crate::generation::Generation;
use crate::packet::Packet;

/// Outcome of delivering a packet to a [`Decoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reception {
    /// The packet raised the node's rank — a *helpful message* in the
    /// paper's Definition 3.
    Innovative,
    /// The packet was already in the node's span and was ignored, matching
    /// the protocol: "a received message will be appended to the node's
    /// stored messages only if it is independent … and otherwise ignored."
    Redundant,
}

impl Reception {
    /// True for [`Reception::Innovative`].
    #[must_use]
    pub fn is_innovative(self) -> bool {
        matches!(self, Reception::Innovative)
    }
}

impl From<Insertion> for Reception {
    fn from(i: Insertion) -> Self {
        match i {
            Insertion::Innovative => Reception::Innovative,
            Insertion::Redundant => Reception::Redundant,
        }
    }
}

/// A packet whose shape does not match the decoder it was delivered to.
///
/// Returned by [`Decoder::try_receive`] *before* any elimination runs, so a
/// malformed packet can never corrupt (or panic out of) a half-updated
/// basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodingError {
    /// The packet was coded over a different generation size than the
    /// decoder's `k`.
    GenerationSizeMismatch {
        /// The decoder's generation size.
        expected: usize,
        /// The packet's coefficient count.
        got: usize,
    },
    /// The packet's payload length differs from the decoder's `r`.
    PayloadLengthMismatch {
        /// The decoder's payload length in symbols.
        expected: usize,
        /// The packet's payload length in symbols.
        got: usize,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodingError::GenerationSizeMismatch { expected, got } => write!(
                f,
                "packet generation size mismatch: coded over {got} messages, \
                 decoder expects {expected}"
            ),
            CodingError::PayloadLengthMismatch { expected, got } => write!(
                f,
                "packet payload length mismatch: {got} symbols, decoder \
                 expects {expected}"
            ),
        }
    }
}

impl Error for CodingError {}

/// A node's RLNC state: the matrix of stored linear equations.
///
/// The decoder accepts [`Packet`]s, tracks its rank, answers the paper's
/// helpfulness queries, and solves for the source messages once the rank
/// reaches `k`. Internally the equations live in a packed
/// [`EchelonBasis`], so every elimination runs on the [`SlabField`] bulk
/// kernels.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::{Decoder, Packet, Reception};
///
/// let mut d = Decoder::new(2, 1);
/// let p1 = Packet::new(vec![Gf256::new(1), Gf256::new(1)], vec![Gf256::new(7)]);
/// assert_eq!(d.receive(p1.clone()), Reception::Innovative);
/// assert_eq!(d.receive(p1), Reception::Redundant);
/// assert_eq!(d.rank(), 1);
/// assert!(!d.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<F> {
    k: usize,
    payload_len: usize,
    basis: EchelonBasis<F>,
    innovative_count: u64,
    redundant_count: u64,
    /// Reusable packed recoding-factor buffer for the [`crate::Recoder`]
    /// emit paths (interior-mutable: recoders borrow the decoder shared).
    emit_factors: RefCell<Vec<u8>>,
    /// Reusable packed-row buffer for [`Decoder::try_receive`]: packets
    /// are packed here and reduced in place, so a reception performs no
    /// heap allocation.
    recv_row: Vec<u8>,
}

impl<F: SlabField> Decoder<F> {
    /// An empty decoder for a generation of `k` messages of `payload_len`
    /// symbols.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, payload_len: usize) -> Self {
        assert!(k > 0, "generation size must be positive");
        Decoder {
            k,
            payload_len,
            basis: EchelonBasis::new(k),
            innovative_count: 0,
            redundant_count: 0,
            // Full-rank capacity up front: emits must not allocate even as
            // the rank grows mid-run (the steady-state allocation audits
            // cover recode emits).
            emit_factors: RefCell::new(Vec::with_capacity(k * F::SYMBOL_BYTES)),
            recv_row: Vec::with_capacity((k + payload_len) * F::SYMBOL_BYTES),
        }
    }

    /// A decoder pre-seeded with *all* messages of the generation (a source
    /// that holds everything, e.g. for single-source broadcast workloads).
    #[must_use]
    pub fn with_all_messages(generation: &Generation<F>) -> Self {
        let mut d = Decoder::new(generation.k(), generation.message_len());
        for i in 0..generation.k() {
            d.seed_message(generation, i);
        }
        d
    }

    /// Seeds the decoder with source message `index` of the generation:
    /// inserts the unit equation `e_index · x = x_index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= k` or the generation shape differs from the
    /// decoder's.
    pub fn seed_message(&mut self, generation: &Generation<F>, index: usize) {
        assert_eq!(generation.k(), self.k, "generation size mismatch");
        assert_eq!(
            generation.message_len(),
            self.payload_len,
            "payload length mismatch"
        );
        let mut row = vec![F::ZERO; self.k];
        row[index] = F::ONE;
        row.extend_from_slice(generation.message(index));
        // Seeding counts as neither innovative nor redundant traffic.
        let _ = self.basis.insert(row);
    }

    /// The generation size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload length `r` in symbols.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Current rank (the "dimension of the node" in the paper).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.basis.rank()
    }

    /// True once the node can decode every message (rank = k).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.basis.is_full()
    }

    /// Number of innovative receptions so far (excluding seeds).
    #[must_use]
    pub fn innovative_count(&self) -> u64 {
        self.innovative_count
    }

    /// Number of redundant receptions so far.
    #[must_use]
    pub fn redundant_count(&self) -> u64 {
        self.redundant_count
    }

    /// Delivers a packet; reports whether it was helpful.
    ///
    /// # Panics
    ///
    /// Panics if the packet shape does not match the decoder's `(k, r)`;
    /// use [`Decoder::try_receive`] for a typed error instead.
    // ag-lint: hot-path
    pub fn receive(&mut self, packet: Packet<F>) -> Reception {
        match self.try_receive(&packet) {
            Ok(outcome) => outcome,
            Err(CodingError::GenerationSizeMismatch { .. }) => {
                // ag-lint: allow(panic-policy) — documented receive()
                // panic contract; try_receive is the typed-error twin.
                panic!("packet generation size mismatch")
            }
            Err(CodingError::PayloadLengthMismatch { .. }) => {
                // ag-lint: allow(panic-policy) — documented receive()
                // panic contract; try_receive is the typed-error twin.
                panic!("packet payload length mismatch")
            }
        }
    }

    /// Delivers a packet, rejecting shape mismatches with a typed error —
    /// the decoder's state (basis, rank, counters) is untouched on `Err`.
    ///
    /// # Errors
    ///
    /// [`CodingError::GenerationSizeMismatch`] or
    /// [`CodingError::PayloadLengthMismatch`] when the packet was coded for
    /// a different `(k, r)` than this decoder's.
    // ag-lint: hot-path
    pub fn try_receive(&mut self, packet: &Packet<F>) -> Result<Reception, CodingError> {
        if packet.generation_size() != self.k {
            return Err(CodingError::GenerationSizeMismatch {
                expected: self.k,
                got: packet.generation_size(),
            });
        }
        if packet.payload_len() != self.payload_len {
            return Err(CodingError::PayloadLengthMismatch {
                expected: self.payload_len,
                got: packet.payload_len(),
            });
        }
        let mut row = std::mem::take(&mut self.recv_row);
        packet.write_packed_row_into(&mut row);
        let outcome: Reception = self
            .basis
            .try_insert_packed_mut(&mut row)
            .expect("shape-checked row is valid for the basis")
            .into();
        self.recv_row = row;
        match outcome {
            Reception::Innovative => self.innovative_count += 1,
            Reception::Redundant => self.redundant_count += 1,
        }
        Ok(outcome)
    }

    /// Delivers an already-packed augmented row (the output of
    /// [`crate::Recoder::emit_packed_row`]) with zero format conversion —
    /// the simulation hot path. Elimination, rank growth and the
    /// innovative/redundant counters behave exactly as
    /// [`Decoder::receive`] on the equivalent [`Packet`].
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length does not match this decoder's
    /// `(k + r) · SYMBOL_BYTES` shape.
    // ag-lint: hot-path
    pub fn receive_packed_row(&mut self, row: Vec<u8>) -> Reception {
        self.receive_packed_slice(&row)
    }

    /// Borrowing variant of [`Decoder::receive_packed_row`]: the row is
    /// reduced in the basis's internal reusable scratch buffer, so a
    /// *redundant* reception costs zero heap allocations — an innovative
    /// one only grows the basis storage itself, which happens at most `k`
    /// times per decoder. This is what the engine's delivery path calls,
    /// letting it keep ownership of (and recycle) its message buffers.
    ///
    /// Same elimination, counters and verdicts as
    /// [`Decoder::receive_packed_row`] on equal bytes.
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length does not match this decoder's
    /// `(k + r) · SYMBOL_BYTES` shape.
    // ag-lint: hot-path
    pub fn receive_packed_slice(&mut self, row: &[u8]) -> Reception {
        let expected = (self.k + self.payload_len) * F::SYMBOL_BYTES;
        assert_eq!(
            row.len(),
            expected,
            "packed row length mismatch: got {}, decoder expects {expected}",
            row.len()
        );
        let outcome: Reception = self
            .basis
            .try_insert_packed_slice(row)
            .expect("shape-checked row is valid for the basis")
            .into();
        match outcome {
            Reception::Innovative => self.innovative_count += 1,
            Reception::Redundant => self.redundant_count += 1,
        }
        outcome
    }

    /// Would this packet be helpful, without consuming it?
    #[must_use]
    pub fn would_help(&self, packet: &Packet<F>) -> bool {
        self.basis.would_be_innovative(packet.coefficients())
    }

    /// The paper's Definition 3: is node `other` a *helpful node* for
    /// `self`? True iff `other`'s subspace is not contained in `self`'s,
    /// i.e. a random combination from `other` **can** be innovative here.
    #[must_use]
    pub fn is_helpful_node(&self, other: &Decoder<F>) -> bool {
        self.basis.is_helped_by(&other.basis)
    }

    /// The underlying packed basis, exposed for recoding.
    pub(crate) fn basis(&self) -> &EchelonBasis<F> {
        &self.basis
    }

    /// The reusable recoding-factor buffer, exposed for recoding.
    pub(crate) fn emit_factors(&self) -> &RefCell<Vec<u8>> {
        &self.emit_factors
    }

    /// Forces the deferred payload elimination to settle now instead of at
    /// the next read (recode emit, [`Decoder::decode`]). Lets a caller
    /// schedule the batched replay — one blocked panel application under
    /// [`ag_linalg::ReplayMode::Blocked`]/`Auto` — during idle time off the
    /// receive path. Idempotent and invisible to results.
    pub fn settle(&self) {
        self.basis.settle();
    }

    /// Solves the system once complete; `None` before rank `k`.
    ///
    /// Row `i` of the output is source message `x_i`.
    #[must_use]
    pub fn decode(&self) -> Option<Vec<Vec<F>>> {
        self.basis.solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkt(coeffs: &[u8], payload: &[u8]) -> Packet<Gf256> {
        Packet::new(
            coeffs.iter().map(|&c| Gf256::new(c)).collect(),
            payload.iter().map(|&p| Gf256::new(p)).collect(),
        )
    }

    #[test]
    fn seeded_source_is_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Generation::<Gf256>::random(4, 2, &mut rng);
        let d = Decoder::with_all_messages(&g);
        assert!(d.is_complete());
        assert_eq!(d.decode().unwrap(), g.messages());
        assert_eq!(d.innovative_count(), 0, "seeding is not traffic");
    }

    #[test]
    fn partial_seed_partial_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Generation::<Gf256>::random(5, 1, &mut rng);
        let mut d = Decoder::new(5, 1);
        d.seed_message(&g, 0);
        d.seed_message(&g, 3);
        assert_eq!(d.rank(), 2);
        assert!(!d.is_complete());
        assert!(d.decode().is_none());
    }

    #[test]
    fn reception_counters() {
        let mut d = Decoder::new(2, 1);
        assert!(d.receive(pkt(&[1, 0], &[9])).is_innovative());
        assert!(!d.receive(pkt(&[2, 0], &[18])).is_innovative()); // dependent
        assert!(d.receive(pkt(&[0, 1], &[5])).is_innovative());
        assert_eq!(d.innovative_count(), 2);
        assert_eq!(d.redundant_count(), 1);
        assert!(d.is_complete());
    }

    #[test]
    fn decode_recovers_exact_messages() {
        // x0 = [7], x1 = [5]; equations x0+x1=[2] and x1=[5] (GF(256): XOR).
        let mut d = Decoder::new(2, 1);
        d.receive(pkt(&[1, 1], &[2]));
        d.receive(pkt(&[0, 1], &[5]));
        let decoded = d.decode().unwrap();
        assert_eq!(decoded, vec![vec![Gf256::new(7)], vec![Gf256::new(5)]]);
    }

    #[test]
    fn helpful_node_definition() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Generation::<Gf256>::random(3, 0, &mut rng);
        let full = Decoder::with_all_messages(&g);
        let mut partial = Decoder::new(3, 0);
        partial.seed_message(&g, 0);
        // Full node helps partial; partial does not help full.
        assert!(partial.is_helpful_node(&full));
        assert!(!full.is_helpful_node(&partial));
        // Equal ranks with identical subspaces: unhelpful both ways.
        let mut p2 = Decoder::new(3, 0);
        p2.seed_message(&g, 0);
        assert!(!partial.is_helpful_node(&p2));
        assert!(!p2.is_helpful_node(&partial));
    }

    #[test]
    fn would_help_is_consistent_with_receive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Decoder::<Gf2>::new(6, 0);
        for _ in 0..40 {
            let coeffs: Vec<Gf2> = (0..6).map(|_| Gf2::random(&mut rng)).collect();
            let p = Packet::new(coeffs, vec![]);
            let predicted = d.would_help(&p);
            let got = d.receive(p).is_innovative();
            assert_eq!(predicted, got);
        }
    }

    #[test]
    fn zero_packet_is_redundant() {
        let mut d = Decoder::<Gf256>::new(3, 0);
        let z = Packet::new(vec![Gf256::ZERO; 3], vec![]);
        assert_eq!(d.receive(z), Reception::Redundant);
    }

    /// Regression test for the borrowing receive path: a redundant packed
    /// row delivered through [`Decoder::receive_packed_slice`] must leave
    /// the basis bit-identical (only the redundancy counter moves), and
    /// the slice and owned entry points must agree verdict for verdict.
    #[test]
    fn receive_packed_slice_redundant_row_leaves_basis_untouched() {
        let mut d = Decoder::<Gf256>::new(3, 2);
        let p1 = pkt(&[1, 2, 3], &[7, 9]);
        let p2 = pkt(&[0, 1, 1], &[4, 5]);
        assert_eq!(
            d.receive_packed_slice(&p1.to_packed_row()),
            Reception::Innovative
        );
        assert_eq!(
            d.receive_packed_slice(&p2.to_packed_row()),
            Reception::Innovative
        );
        let before_rows: Vec<Vec<Gf256>> = (0..d.rank()).map(|i| d.basis().row(i)).collect();

        // The sum of the two inserted equations: redundant by construction.
        let dep = pkt(&[1, 3, 2], &[3, 12]);
        assert_eq!(
            d.receive_packed_slice(&dep.to_packed_row()),
            Reception::Redundant
        );
        assert_eq!(d.rank(), 2);
        assert_eq!(d.redundant_count(), 1);
        let after_rows: Vec<Vec<Gf256>> = (0..d.rank()).map(|i| d.basis().row(i)).collect();
        assert_eq!(after_rows, before_rows, "redundant row mutated the basis");

        // The slice path tracks the owned path exactly on a twin decoder.
        let mut owned = Decoder::<Gf256>::new(3, 2);
        for p in [&p1, &p2, &dep] {
            let _ = owned.receive_packed_row(p.to_packed_row());
        }
        assert_eq!(owned.rank(), d.rank());
        assert_eq!(owned.innovative_count(), d.innovative_count());
        assert_eq!(owned.redundant_count(), d.redundant_count());
        assert_eq!(owned.decode(), d.decode());
    }

    #[test]
    #[should_panic(expected = "generation size mismatch")]
    fn shape_mismatch_panics() {
        let mut d = Decoder::<Gf256>::new(3, 0);
        d.receive(Packet::new(vec![Gf256::ONE; 2], vec![]));
    }

    /// Regression test for the typed-error path: a payload-length-mismatched
    /// packet must be rejected with [`CodingError::PayloadLengthMismatch`]
    /// before elimination, leaving the decoder bit-identical — previously
    /// this was only an assert that aborted the whole simulation.
    #[test]
    fn try_receive_rejects_mismatches_without_corrupting_state() {
        let mut d = Decoder::<Gf256>::new(2, 1);
        d.receive(pkt(&[1, 1], &[2]));
        let before_rank = d.rank();
        let before = d.clone();

        let wrong_payload = pkt(&[0, 1], &[5, 6]); // r = 2, decoder expects 1
        assert_eq!(
            d.try_receive(&wrong_payload),
            Err(CodingError::PayloadLengthMismatch {
                expected: 1,
                got: 2
            })
        );
        let wrong_k = pkt(&[0, 1, 1], &[5]); // k = 3, decoder expects 2
        assert_eq!(
            d.try_receive(&wrong_k),
            Err(CodingError::GenerationSizeMismatch {
                expected: 2,
                got: 3
            })
        );
        assert_eq!(d.rank(), before_rank);
        assert_eq!(d.innovative_count(), before.innovative_count());
        assert_eq!(d.redundant_count(), before.redundant_count());

        // The decoder still works normally afterwards.
        assert_eq!(
            d.try_receive(&pkt(&[0, 1], &[5])),
            Ok(Reception::Innovative)
        );
        assert_eq!(
            d.decode().unwrap(),
            vec![vec![Gf256::new(7)], vec![Gf256::new(5)]]
        );
        assert!(CodingError::PayloadLengthMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("payload length mismatch"));
    }
}
