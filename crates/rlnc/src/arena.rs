//! All of a simulation's decoders in one arena: allocation-free RLNC.
//!
//! [`DecoderArena`] is the n-node counterpart of [`Decoder`]: per-node
//! rank/receive/decode semantics identical to a `Vec<Decoder<F>>` (the
//! differential suite in `tests/differential_decoder.rs` pins this packet
//! for packet), but every node's equations live in one
//! [`ag_linalg::BasisArena`] slab preallocated at construction. Combined
//! with the [`crate::RowPool`] message buffers and the borrowing
//! receive/emit entry points, a simulation's steady-state round loop
//! performs zero per-message heap allocation.
//!
//! Recoding lives here too ([`DecoderArena::emit_packed_row_into`] and
//! friends) rather than on a borrowed [`crate::Recoder`], because the
//! recoder would need a per-node `Decoder` to borrow; the draw sequence and
//! combination arithmetic are the recoder's exactly, which the differential
//! tests verify under shared RNG streams.

use std::cell::RefCell;

use ag_gf::SlabField;
use ag_linalg::{BasisArena, Insertion};
use rand::Rng;

use crate::decoder::Reception;
use crate::generation::Generation;
use crate::packet::Packet;

/// `n` decoders for one generation, backed by a single contiguous arena.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::{DecoderArena, Generation, Reception};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = Generation::<Gf256>::random(4, 2, &mut rng);
/// let mut arena = DecoderArena::new(2, 4, 2);
/// arena.seed_all_messages(0, &g); // node 0 is the source
/// let mut buf = Vec::new();
/// while !arena.is_complete(1) {
///     assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
///     arena.receive_packed_slice(1, &buf);
/// }
/// assert_eq!(arena.decode(1).unwrap(), g.messages());
/// ```
#[derive(Debug, Clone)]
pub struct DecoderArena<F> {
    k: usize,
    payload_len: usize,
    basis: BasisArena<F>,
    innovative: Vec<u64>,
    redundant: Vec<u64>,
    /// Reusable row buffer for seeding and the slice-receive path.
    scratch: Vec<u8>,
    /// Reusable packed recoding-factor buffer for the emit paths
    /// (interior-mutable: emits take `&self`).
    emit_factors: RefCell<Vec<u8>>,
}

impl<F: SlabField> DecoderArena<F> {
    /// An arena of `nodes` empty decoders for a generation of `k` messages
    /// of `payload_len` symbols. Allocates all row storage up front
    /// (zeroed; the OS commits pages lazily as ranks grow).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(nodes: usize, k: usize, payload_len: usize) -> Self {
        assert!(k > 0, "generation size must be positive");
        DecoderArena {
            k,
            payload_len,
            basis: BasisArena::new(nodes, k, k + payload_len),
            innovative: vec![0; nodes],
            redundant: vec![0; nodes],
            scratch: Vec::with_capacity((k + payload_len) * F::SYMBOL_BYTES),
            // Full-rank capacity up front: emits must not allocate even as
            // ranks grow mid-run (the completion-run allocation audit
            // snapshots every round).
            emit_factors: RefCell::new(Vec::with_capacity(k * F::SYMBOL_BYTES)),
        }
    }

    /// Number of decoders.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.basis.nodes()
    }

    /// The generation size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload length `r` in symbols.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Bytes per packed augmented row `(k + r) · SYMBOL_BYTES`.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.basis.row_bytes()
    }

    /// Node `node`'s current rank.
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.basis.rank(node)
    }

    /// True once node `node` can decode every message (rank = k).
    #[must_use]
    pub fn is_complete(&self, node: usize) -> bool {
        self.basis.is_full(node)
    }

    /// Node `node`'s innovative receptions so far (excluding seeds).
    #[must_use]
    pub fn innovative_count(&self, node: usize) -> u64 {
        self.innovative[node]
    }

    /// Node `node`'s redundant receptions so far.
    #[must_use]
    pub fn redundant_count(&self, node: usize) -> u64 {
        self.redundant[node]
    }

    /// Sum of all nodes' ranks — the global progress measure.
    #[must_use]
    pub fn total_rank(&self) -> usize {
        (0..self.nodes()).map(|v| self.basis.rank(v)).sum()
    }

    /// Total innovative receptions across all nodes.
    #[must_use]
    pub fn total_innovative(&self) -> u64 {
        self.innovative.iter().sum()
    }

    /// Total redundant receptions across all nodes.
    #[must_use]
    pub fn total_redundant(&self) -> u64 {
        self.redundant.iter().sum()
    }

    /// Seeds node `node` with source message `index`: inserts the unit
    /// equation `e_index · x = x_index`. Counts as neither innovative nor
    /// redundant traffic, exactly like [`Decoder::seed_message`].
    ///
    /// [`Decoder::seed_message`]: crate::Decoder::seed_message
    ///
    /// # Panics
    ///
    /// Panics if the generation's shape differs from the arena's or
    /// `index >= k`.
    pub fn seed_message(&mut self, node: usize, generation: &Generation<F>, index: usize) {
        assert_eq!(generation.k(), self.k, "generation size mismatch");
        assert_eq!(
            generation.message_len(),
            self.payload_len,
            "payload length mismatch"
        );
        let mut row = std::mem::take(&mut self.scratch);
        row.clear();
        row.resize(self.k * F::SYMBOL_BYTES, 0);
        F::ONE.write_symbol(&mut row[index * F::SYMBOL_BYTES..]);
        F::pack_into(generation.message(index), &mut row);
        let _ = self.basis.insert_packed_mut(node, &mut row);
        self.scratch = row;
    }

    /// Seeds node `node` with *all* messages (a full source).
    pub fn seed_all_messages(&mut self, node: usize, generation: &Generation<F>) {
        for i in 0..generation.k() {
            self.seed_message(node, generation, i);
        }
    }

    /// Delivers a packed augmented row to node `node`, reducing it in the
    /// arena's internal scratch — the borrowing receive of the engine hot
    /// path. Verdicts, rank growth and counters behave exactly as
    /// [`Decoder::receive_packed_slice`].
    ///
    /// [`Decoder::receive_packed_slice`]: crate::Decoder::receive_packed_slice
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length differs from
    /// [`DecoderArena::row_bytes`].
    pub fn receive_packed_slice(&mut self, node: usize, row: &[u8]) -> Reception {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(row);
        let outcome = self.receive_packed_mut(node, &mut scratch);
        self.scratch = scratch;
        outcome
    }

    /// Zero-copy receive: reduces the row **in place** in the caller's
    /// buffer (clobbering it) and stores it on an innovative verdict. The
    /// engine delivery path uses this with its pooled message buffers so a
    /// reception touches no scratch copy at all.
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length differs from
    /// [`DecoderArena::row_bytes`].
    pub fn receive_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Reception {
        assert_eq!(
            row.len(),
            self.row_bytes(),
            "packed row length mismatch: got {}, arena expects {}",
            row.len(),
            self.row_bytes()
        );
        match self.basis.insert_packed_mut(node, row) {
            Insertion::Innovative => {
                self.innovative[node] += 1;
                Reception::Innovative
            }
            Insertion::Redundant => {
                self.redundant[node] += 1;
                Reception::Redundant
            }
        }
    }

    /// Emits one coded packed row from node `node` into `out` (cleared and
    /// sized to the row width): a fresh random combination over everything
    /// the node stores, drawing coefficients exactly like
    /// [`Recoder::emit_packed_row`] under the same RNG state. Returns
    /// `false` — leaving `out` empty — when the node stores nothing yet.
    ///
    /// [`Recoder::emit_packed_row`]: crate::Recoder::emit_packed_row
    pub fn emit_packed_row_into<R: Rng + ?Sized>(
        &self,
        node: usize,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        out.resize(self.row_bytes(), 0);
        let mut factors = self.emit_factors.borrow_mut();
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        // One uniform draw per stored row, in insertion order — the exact
        // sequence `Recoder` draws under the same RNG state.
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            F::random(rng).write_symbol(slot);
        }
        self.basis.accumulate_rows_into(node, &factors, out);
        true
    }

    /// Sparse-recoding emit, drawing exactly like
    /// [`Recoder::emit_sparse_packed_row`] under the same RNG state.
    ///
    /// [`Recoder::emit_sparse_packed_row`]: crate::Recoder::emit_sparse_packed_row
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    pub fn emit_sparse_packed_row_into<R: Rng + ?Sized>(
        &self,
        node: usize,
        density: f64,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        assert!(
            density > 0.0 && density <= 1.0,
            "coding density must be in (0, 1]"
        );
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        let mut factors = self.emit_factors.borrow_mut();
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        let mut picked_any = false;
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            if !rng.gen_bool(density) {
                continue;
            }
            picked_any = true;
            F::random_nonzero(rng).write_symbol(slot);
        }
        if picked_any {
            out.resize(self.row_bytes(), 0);
            self.basis.accumulate_rows_into(node, &factors, out);
        } else {
            self.basis
                .copy_packed_row_into(node, rng.gen_range(0..rank), out);
        }
        true
    }

    /// [`Packet`]-shaped emit (allocating), for the preserved pre-rework
    /// message path — same draws as [`DecoderArena::emit_packed_row_into`].
    #[must_use]
    pub fn emit_packet<R: Rng + ?Sized>(&self, node: usize, rng: &mut R) -> Option<Packet<F>> {
        let mut row = Vec::new();
        self.emit_packed_row_into(node, rng, &mut row)
            .then(|| Packet::from_packed_row(&row, self.k))
    }

    /// [`Packet`]-shaped sparse emit (allocating).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn emit_sparse_packet<R: Rng + ?Sized>(
        &self,
        node: usize,
        density: f64,
        rng: &mut R,
    ) -> Option<Packet<F>> {
        let mut row = Vec::new();
        self.emit_sparse_packed_row_into(node, density, rng, &mut row)
            .then(|| Packet::from_packed_row(&row, self.k))
    }

    /// Solves node `node`'s system once complete; `None` before rank `k`.
    #[must_use]
    pub fn decode(&self, node: usize) -> Option<Vec<Vec<F>>> {
        self.basis.solution(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, Recoder};
    use ag_gf::{Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The arena must track a `Vec<Decoder>` bit for bit when both consume
    /// identical streams — including the RNG draw sequence of emits.
    #[test]
    fn arena_tracks_vec_of_decoders_under_shared_rng() {
        let mut setup_rng = StdRng::seed_from_u64(42);
        let k = 5;
        let r = 3;
        let nodes = 4;
        let g = Generation::<Gf256>::random(k, r, &mut setup_rng);

        let mut arena = DecoderArena::<Gf256>::new(nodes, k, r);
        let mut decoders: Vec<Decoder<Gf256>> = (0..nodes).map(|_| Decoder::new(k, r)).collect();
        for (msg, node) in [(0usize, 0usize), (1, 1), (2, 2), (3, 3), (4, 0)] {
            arena.seed_message(node, &g, msg);
            decoders[node].seed_message(&g, msg);
        }

        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        let mut traffic_rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let from = traffic_rng.gen_range(0..nodes);
            let to = (from + 1 + traffic_rng.gen_range(0..nodes - 1)) % nodes;
            let emitted_a = arena.emit_packed_row_into(from, &mut rng_a, &mut buf);
            let emitted_b = Recoder::new(&decoders[from]).emit_packed_row(&mut rng_b);
            assert_eq!(emitted_a, emitted_b.is_some(), "emit disagreement");
            let Some(row_b) = emitted_b else { continue };
            assert_eq!(buf, row_b, "emitted bytes diverged");
            let got = arena.receive_packed_slice(to, &buf);
            let want = decoders[to].receive_packed_slice(&row_b);
            assert_eq!(got, want, "verdict diverged");
            assert_eq!(arena.rank(to), decoders[to].rank());
            assert_eq!(arena.innovative_count(to), decoders[to].innovative_count());
            assert_eq!(arena.redundant_count(to), decoders[to].redundant_count());
        }
        for v in 0..nodes {
            assert_eq!(arena.is_complete(v), decoders[v].is_complete());
            assert_eq!(arena.decode(v), decoders[v].decode());
        }
    }

    #[test]
    fn sparse_emit_matches_recoder_draws() {
        let mut setup_rng = StdRng::seed_from_u64(3);
        let g = Generation::<Gf256>::random(6, 2, &mut setup_rng);
        let mut arena = DecoderArena::<Gf256>::new(1, 6, 2);
        let mut d = Decoder::new(6, 2);
        for i in 0..6 {
            arena.seed_message(0, &g, i);
            d.seed_message(&g, i);
        }
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut buf = Vec::new();
        for density in [0.05, 0.4, 1.0] {
            for _ in 0..20 {
                assert!(arena.emit_sparse_packed_row_into(0, density, &mut rng_a, &mut buf));
                let want = Recoder::new(&d)
                    .emit_sparse_packed_row(density, &mut rng_b)
                    .unwrap();
                assert_eq!(buf, want, "density {density}");
            }
        }
    }

    #[test]
    fn source_to_sink_completes_and_decodes() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Generation::<Gf2>::random(8, 4, &mut rng);
        let mut arena = DecoderArena::<Gf2>::new(2, 8, 4);
        arena.seed_all_messages(0, &g);
        assert!(arena.is_complete(0));
        assert_eq!(arena.innovative_count(0), 0, "seeding is not traffic");
        let mut buf = Vec::new();
        let mut sent = 0;
        while !arena.is_complete(1) {
            assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
            arena.receive_packed_slice(1, &buf);
            sent += 1;
            assert!(sent < 200, "GF(2) source-to-sink failed to converge");
        }
        assert_eq!(arena.decode(1).unwrap(), g.messages());
        assert_eq!(arena.innovative_count(1), 8);
    }

    #[test]
    fn empty_node_emits_nothing() {
        let arena = DecoderArena::<Gf256>::new(1, 3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![1, 2, 3];
        assert!(!arena.emit_packed_row_into(0, &mut rng, &mut buf));
        assert!(buf.is_empty(), "failed emit must leave the buffer cleared");
        assert!(arena.emit_packet(0, &mut rng).is_none());
    }

    #[test]
    fn receive_packed_mut_consumes_callers_buffer() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Generation::<Gf256>::random(2, 1, &mut rng);
        let mut arena = DecoderArena::<Gf256>::new(2, 2, 1);
        arena.seed_all_messages(0, &g);
        let mut buf = Vec::new();
        assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
        let before = buf.clone();
        let _ = arena.receive_packed_mut(1, &mut buf);
        assert_eq!(buf.len(), before.len(), "length preserved for reuse");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        let mut arena = DecoderArena::<Gf256>::new(1, 3, 1);
        let _ = arena.receive_packed_slice(0, &[1, 2]);
    }
}
