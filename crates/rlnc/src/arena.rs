//! All of a simulation's decoders in one arena: allocation-free RLNC.
//!
//! [`DecoderArena`] is the n-node counterpart of [`Decoder`]: per-node
//! rank/receive/decode semantics identical to a `Vec<Decoder<F>>` (the
//! differential suite in `tests/differential_decoder.rs` pins this packet
//! for packet), but every node's equations live in one
//! [`ag_linalg::BasisArena`] slab preallocated at construction. Combined
//! with the [`crate::RowPool`] message buffers and the borrowing
//! receive/emit entry points, a simulation's steady-state round loop
//! performs zero per-message heap allocation.
//!
//! Recoding lives here too ([`DecoderArena::emit_packed_row_into`] and
//! friends) rather than on a borrowed [`crate::Recoder`], because the
//! recoder would need a per-node `Decoder` to borrow; the draw sequence and
//! combination arithmetic are the recoder's exactly, which the differential
//! tests verify under shared RNG streams.

use std::cell::RefCell;

use ag_gf::SlabField;
use ag_linalg::{ArenaError, ArenaGrowth, BasisArena, BasisShard, Insertion};
use rand::Rng;

use crate::decoder::Reception;
use crate::generation::Generation;
use crate::packet::Packet;

/// `n` decoders for one generation, backed by a single contiguous arena.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::{DecoderArena, Generation, Reception};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = Generation::<Gf256>::random(4, 2, &mut rng);
/// let mut arena = DecoderArena::new(2, 4, 2);
/// arena.seed_all_messages(0, &g); // node 0 is the source
/// let mut buf = Vec::new();
/// while !arena.is_complete(1) {
///     assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
///     arena.receive_packed_slice(1, &buf);
/// }
/// assert_eq!(arena.decode(1).unwrap(), g.messages());
/// ```
#[derive(Debug, Clone)]
pub struct DecoderArena<F> {
    k: usize,
    payload_len: usize,
    basis: BasisArena<F>,
    innovative: Vec<u64>,
    redundant: Vec<u64>,
    /// Reusable row buffer for seeding and the slice-receive path.
    scratch: Vec<u8>,
    /// Reusable packed recoding-factor buffer for the emit paths
    /// (interior-mutable: emits take `&self`).
    emit_factors: RefCell<Vec<u8>>,
}

impl<F: SlabField> DecoderArena<F> {
    /// An arena of `nodes` empty decoders for a generation of `k` messages
    /// of `payload_len` symbols, with rank-bounded row storage
    /// ([`ArenaGrowth::Chunked`]): each node's slabs grow in geometric
    /// chunks as its rank grows, capped at the full-rank footprint.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or on [`ArenaError`].
    #[must_use]
    pub fn new(nodes: usize, k: usize, payload_len: usize) -> Self {
        Self::with_growth(nodes, k, payload_len, ArenaGrowth::default())
    }

    /// [`DecoderArena::new`] with an explicit [`ArenaGrowth`] policy.
    /// [`ArenaGrowth::Preallocated`] reserves full-rank capacity per node
    /// up front so receptions never allocate — the policy the counting-
    /// allocator audits run under.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or on [`ArenaError`].
    #[must_use]
    pub fn with_growth(nodes: usize, k: usize, payload_len: usize, growth: ArenaGrowth) -> Self {
        match Self::try_with_growth(nodes, k, payload_len, growth) {
            Ok(arena) => arena,
            // ag-lint: allow(panic-policy) — documented panicking wrapper;
            // try_with_growth is the typed-error twin.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: overflowing capacity math and refused
    /// reservations surface as a typed [`ArenaError`] (with the computed
    /// byte count) instead of a silent wrap or allocator abort.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (a shape bug, not a sizing condition).
    pub fn try_with_growth(
        nodes: usize,
        k: usize,
        payload_len: usize,
        growth: ArenaGrowth,
    ) -> Result<Self, ArenaError> {
        assert!(k > 0, "generation size must be positive");
        Ok(DecoderArena {
            k,
            payload_len,
            basis: BasisArena::try_with_growth(nodes, k, k + payload_len, growth)?,
            innovative: vec![0; nodes],
            redundant: vec![0; nodes],
            scratch: Vec::with_capacity((k + payload_len) * F::SYMBOL_BYTES),
            // Full-rank capacity up front: emits must not allocate even as
            // ranks grow mid-run (the completion-run allocation audit
            // snapshots every round).
            emit_factors: RefCell::new(Vec::with_capacity(k * F::SYMBOL_BYTES)),
        })
    }

    /// Heap bytes currently reserved by the per-node row storage — the
    /// memory-model number (`allocated_bytes() / nodes()` is the measured
    /// bytes/node the benches report).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.basis.allocated_bytes()
    }

    /// Number of decoders.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.basis.nodes()
    }

    /// The generation size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload length `r` in symbols.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Bytes per packed augmented row `(k + r) · SYMBOL_BYTES`.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.basis.row_bytes()
    }

    /// Node `node`'s current rank.
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.basis.rank(node)
    }

    /// True once node `node` can decode every message (rank = k).
    #[must_use]
    pub fn is_complete(&self, node: usize) -> bool {
        self.basis.is_full(node)
    }

    /// Node `node`'s innovative receptions so far (excluding seeds).
    #[must_use]
    pub fn innovative_count(&self, node: usize) -> u64 {
        self.innovative[node]
    }

    /// Node `node`'s redundant receptions so far.
    #[must_use]
    pub fn redundant_count(&self, node: usize) -> u64 {
        self.redundant[node]
    }

    /// Sum of all nodes' ranks — the global progress measure.
    #[must_use]
    pub fn total_rank(&self) -> usize {
        (0..self.nodes()).map(|v| self.basis.rank(v)).sum()
    }

    /// Total innovative receptions across all nodes.
    #[must_use]
    pub fn total_innovative(&self) -> u64 {
        self.innovative.iter().sum()
    }

    /// Total redundant receptions across all nodes.
    #[must_use]
    pub fn total_redundant(&self) -> u64 {
        self.redundant.iter().sum()
    }

    /// Seeds node `node` with source message `index`: inserts the unit
    /// equation `e_index · x = x_index`. Counts as neither innovative nor
    /// redundant traffic, exactly like [`Decoder::seed_message`].
    ///
    /// [`Decoder::seed_message`]: crate::Decoder::seed_message
    ///
    /// # Panics
    ///
    /// Panics if the generation's shape differs from the arena's or
    /// `index >= k`.
    pub fn seed_message(&mut self, node: usize, generation: &Generation<F>, index: usize) {
        assert_eq!(generation.k(), self.k, "generation size mismatch");
        assert_eq!(
            generation.message_len(),
            self.payload_len,
            "payload length mismatch"
        );
        let mut row = std::mem::take(&mut self.scratch);
        row.clear();
        row.resize(self.k * F::SYMBOL_BYTES, 0);
        F::ONE.write_symbol(&mut row[index * F::SYMBOL_BYTES..]);
        F::pack_into(generation.message(index), &mut row);
        let _ = self.basis.insert_packed_mut(node, &mut row);
        self.scratch = row;
    }

    /// Seeds node `node` with *all* messages (a full source).
    pub fn seed_all_messages(&mut self, node: usize, generation: &Generation<F>) {
        for i in 0..generation.k() {
            self.seed_message(node, generation, i);
        }
    }

    /// Delivers a packed augmented row to node `node`, reducing it in the
    /// arena's internal scratch — the borrowing receive of the engine hot
    /// path. Verdicts, rank growth and counters behave exactly as
    /// [`Decoder::receive_packed_slice`].
    ///
    /// [`Decoder::receive_packed_slice`]: crate::Decoder::receive_packed_slice
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length differs from
    /// [`DecoderArena::row_bytes`].
    // ag-lint: hot-path
    pub fn receive_packed_slice(&mut self, node: usize, row: &[u8]) -> Reception {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(row);
        let outcome = self.receive_packed_mut(node, &mut scratch);
        self.scratch = scratch;
        outcome
    }

    /// Zero-copy receive: reduces the row **in place** in the caller's
    /// buffer (clobbering it) and stores it on an innovative verdict. The
    /// engine delivery path uses this with its pooled message buffers so a
    /// reception touches no scratch copy at all.
    ///
    /// # Panics
    ///
    /// Panics if the row's byte length differs from
    /// [`DecoderArena::row_bytes`].
    // ag-lint: hot-path
    pub fn receive_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Reception {
        assert_eq!(
            row.len(),
            self.row_bytes(),
            "packed row length mismatch: got {}, arena expects {}",
            row.len(),
            self.row_bytes()
        );
        match self.basis.insert_packed_mut(node, row) {
            Insertion::Innovative => {
                self.innovative[node] += 1;
                Reception::Innovative
            }
            Insertion::Redundant => {
                self.redundant[node] += 1;
                Reception::Redundant
            }
        }
    }

    /// Emits one coded packed row from node `node` into `out` (cleared and
    /// sized to the row width): a fresh random combination over everything
    /// the node stores, drawing coefficients exactly like
    /// [`Recoder::emit_packed_row`] under the same RNG state. Returns
    /// `false` — leaving `out` empty — when the node stores nothing yet.
    ///
    /// [`Recoder::emit_packed_row`]: crate::Recoder::emit_packed_row
    // ag-lint: hot-path
    pub fn emit_packed_row_into<R: Rng + ?Sized>(
        &self,
        node: usize,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        out.resize(self.row_bytes(), 0);
        let mut factors = self.emit_factors.borrow_mut();
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        // One uniform draw per stored row, in insertion order — the exact
        // sequence `Recoder` draws under the same RNG state.
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            F::random(rng).write_symbol(slot);
        }
        self.basis.accumulate_rows_into(node, &factors, out);
        true
    }

    /// Sparse-recoding emit, drawing exactly like
    /// [`Recoder::emit_sparse_packed_row`] under the same RNG state.
    ///
    /// [`Recoder::emit_sparse_packed_row`]: crate::Recoder::emit_sparse_packed_row
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    // ag-lint: hot-path
    pub fn emit_sparse_packed_row_into<R: Rng + ?Sized>(
        &self,
        node: usize,
        density: f64,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        assert!(
            density > 0.0 && density <= 1.0,
            "coding density must be in (0, 1]"
        );
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        let mut factors = self.emit_factors.borrow_mut();
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        let mut picked_any = false;
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            if !rng.gen_bool(density) {
                continue;
            }
            picked_any = true;
            F::random_nonzero(rng).write_symbol(slot);
        }
        if picked_any {
            out.resize(self.row_bytes(), 0);
            self.basis.accumulate_rows_into(node, &factors, out);
        } else {
            self.basis
                .copy_packed_row_into(node, rng.gen_range(0..rank), out);
        }
        true
    }

    /// [`Packet`]-shaped emit (allocating), for the preserved pre-rework
    /// message path — same draws as [`DecoderArena::emit_packed_row_into`].
    #[must_use]
    pub fn emit_packet<R: Rng + ?Sized>(&self, node: usize, rng: &mut R) -> Option<Packet<F>> {
        let mut row = Vec::new();
        self.emit_packed_row_into(node, rng, &mut row)
            .then(|| Packet::from_packed_row(&row, self.k))
    }

    /// [`Packet`]-shaped sparse emit (allocating).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn emit_sparse_packet<R: Rng + ?Sized>(
        &self,
        node: usize,
        density: f64,
        rng: &mut R,
    ) -> Option<Packet<F>> {
        let mut row = Vec::new();
        self.emit_sparse_packed_row_into(node, density, rng, &mut row)
            .then(|| Packet::from_packed_row(&row, self.k))
    }

    /// Solves node `node`'s system once complete; `None` before rank `k`.
    #[must_use]
    pub fn decode(&self, node: usize) -> Option<Vec<Vec<F>>> {
        self.basis.solution(node)
    }

    /// Splits the arena into disjoint contiguous [`DecoderShard`]s for
    /// parallel round execution. `bounds` must partition `0..nodes()` in
    /// order (see [`BasisArena::shards_mut`]); each shard is `Send`,
    /// addresses its nodes by global id, and owns its own emit scratch, so
    /// shard receive/emit sequences are byte-identical to the serial
    /// arena's under the same RNG streams.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ordered contiguous partition.
    pub fn shards_mut(&mut self, bounds: &[(usize, usize)]) -> Vec<DecoderShard<'_, F>> {
        let row_bytes = self.row_bytes();
        let basis_shards = self.basis.shards_mut(bounds);
        let mut innovative = self.innovative.as_mut_slice();
        let mut redundant = self.redundant.as_mut_slice();
        let mut out = Vec::with_capacity(bounds.len());
        for basis in basis_shards {
            let len = basis.node_range().len();
            let (inno, irest) = innovative.split_at_mut(len);
            let (redu, rrest) = redundant.split_at_mut(len);
            innovative = irest;
            redundant = rrest;
            out.push(DecoderShard {
                start: basis.node_range().start,
                basis,
                innovative: inno,
                redundant: redu,
                row_bytes,
                emit_factors: Vec::new(),
            });
        }
        out
    }
}

/// A disjoint contiguous slice of a [`DecoderArena`]: the same
/// receive/emit entry points, addressed by global node ids, `Send` by
/// construction (see [`BasisShard`]). Emits draw coefficients in exactly
/// the serial order, so a shard fed the same per-message RNG streams
/// produces byte-identical traffic.
#[derive(Debug)]
pub struct DecoderShard<'a, F> {
    basis: BasisShard<'a, F>,
    /// Global id of the first node in this shard.
    start: usize,
    innovative: &'a mut [u64],
    redundant: &'a mut [u64],
    row_bytes: usize,
    /// Shard-local packed recoding-factor buffer.
    emit_factors: Vec<u8>,
}

impl<F: SlabField> DecoderShard<'_, F> {
    /// Global node ids covered by this shard.
    #[must_use]
    pub fn node_range(&self) -> std::ops::Range<usize> {
        self.basis.node_range()
    }

    /// Node `node`'s current rank (`node` is a global id in
    /// [`DecoderShard::node_range`]).
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.basis.rank(node)
    }

    /// Shard-local [`DecoderArena::receive_packed_mut`]: same verdicts,
    /// same counters.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the shard or the row length mismatches.
    // ag-lint: hot-path
    pub fn receive_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Reception {
        assert_eq!(
            row.len(),
            self.row_bytes,
            "packed row length mismatch: got {}, arena expects {}",
            row.len(),
            self.row_bytes
        );
        match self.basis.insert_packed_mut(node, row) {
            Insertion::Innovative => {
                self.innovative[node - self.start] += 1;
                Reception::Innovative
            }
            Insertion::Redundant => {
                self.redundant[node - self.start] += 1;
                Reception::Redundant
            }
        }
    }

    /// Shard-local [`DecoderArena::emit_packed_row_into`] — one uniform
    /// draw per stored row, in insertion order, exactly the serial
    /// sequence.
    // ag-lint: hot-path
    pub fn emit_packed_row_into<R: Rng + ?Sized>(
        &mut self,
        node: usize,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        out.resize(self.row_bytes, 0);
        let mut factors = std::mem::take(&mut self.emit_factors);
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            F::random(rng).write_symbol(slot);
        }
        self.basis.accumulate_rows_into(node, &factors, out);
        self.emit_factors = factors;
        true
    }

    /// Shard-local [`DecoderArena::emit_sparse_packed_row_into`] — same
    /// draw sequence as the serial sparse emit.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    // ag-lint: hot-path
    pub fn emit_sparse_packed_row_into<R: Rng + ?Sized>(
        &mut self,
        node: usize,
        density: f64,
        rng: &mut R,
        out: &mut Vec<u8>,
    ) -> bool {
        assert!(
            density > 0.0 && density <= 1.0,
            "coding density must be in (0, 1]"
        );
        out.clear();
        let rank = self.basis.rank(node);
        if rank == 0 {
            return false;
        }
        let mut factors = std::mem::take(&mut self.emit_factors);
        factors.clear();
        factors.resize(rank * F::SYMBOL_BYTES, 0);
        let mut picked_any = false;
        for slot in factors.chunks_exact_mut(F::SYMBOL_BYTES) {
            if !rng.gen_bool(density) {
                continue;
            }
            picked_any = true;
            F::random_nonzero(rng).write_symbol(slot);
        }
        if picked_any {
            out.resize(self.row_bytes, 0);
            self.basis.accumulate_rows_into(node, &factors, out);
        } else {
            self.basis
                .copy_packed_row_into(node, rng.gen_range(0..rank), out);
        }
        self.emit_factors = factors;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, Recoder};
    use ag_gf::{Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The arena must track a `Vec<Decoder>` bit for bit when both consume
    /// identical streams — including the RNG draw sequence of emits.
    #[test]
    fn arena_tracks_vec_of_decoders_under_shared_rng() {
        let mut setup_rng = StdRng::seed_from_u64(42);
        let k = 5;
        let r = 3;
        let nodes = 4;
        let g = Generation::<Gf256>::random(k, r, &mut setup_rng);

        let mut arena = DecoderArena::<Gf256>::new(nodes, k, r);
        let mut decoders: Vec<Decoder<Gf256>> = (0..nodes).map(|_| Decoder::new(k, r)).collect();
        for (msg, node) in [(0usize, 0usize), (1, 1), (2, 2), (3, 3), (4, 0)] {
            arena.seed_message(node, &g, msg);
            decoders[node].seed_message(&g, msg);
        }

        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        let mut traffic_rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let from = traffic_rng.gen_range(0..nodes);
            let to = (from + 1 + traffic_rng.gen_range(0..nodes - 1)) % nodes;
            let emitted_a = arena.emit_packed_row_into(from, &mut rng_a, &mut buf);
            let emitted_b = Recoder::new(&decoders[from]).emit_packed_row(&mut rng_b);
            assert_eq!(emitted_a, emitted_b.is_some(), "emit disagreement");
            let Some(row_b) = emitted_b else { continue };
            assert_eq!(buf, row_b, "emitted bytes diverged");
            let got = arena.receive_packed_slice(to, &buf);
            let want = decoders[to].receive_packed_slice(&row_b);
            assert_eq!(got, want, "verdict diverged");
            assert_eq!(arena.rank(to), decoders[to].rank());
            assert_eq!(arena.innovative_count(to), decoders[to].innovative_count());
            assert_eq!(arena.redundant_count(to), decoders[to].redundant_count());
        }
        for v in 0..nodes {
            assert_eq!(arena.is_complete(v), decoders[v].is_complete());
            assert_eq!(arena.decode(v), decoders[v].decode());
        }
    }

    #[test]
    fn sparse_emit_matches_recoder_draws() {
        let mut setup_rng = StdRng::seed_from_u64(3);
        let g = Generation::<Gf256>::random(6, 2, &mut setup_rng);
        let mut arena = DecoderArena::<Gf256>::new(1, 6, 2);
        let mut d = Decoder::new(6, 2);
        for i in 0..6 {
            arena.seed_message(0, &g, i);
            d.seed_message(&g, i);
        }
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut buf = Vec::new();
        for density in [0.05, 0.4, 1.0] {
            for _ in 0..20 {
                assert!(arena.emit_sparse_packed_row_into(0, density, &mut rng_a, &mut buf));
                let want = Recoder::new(&d)
                    .emit_sparse_packed_row(density, &mut rng_b)
                    .unwrap();
                assert_eq!(buf, want, "density {density}");
            }
        }
    }

    #[test]
    fn source_to_sink_completes_and_decodes() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Generation::<Gf2>::random(8, 4, &mut rng);
        let mut arena = DecoderArena::<Gf2>::new(2, 8, 4);
        arena.seed_all_messages(0, &g);
        assert!(arena.is_complete(0));
        assert_eq!(arena.innovative_count(0), 0, "seeding is not traffic");
        let mut buf = Vec::new();
        let mut sent = 0;
        while !arena.is_complete(1) {
            assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
            arena.receive_packed_slice(1, &buf);
            sent += 1;
            assert!(sent < 200, "GF(2) source-to-sink failed to converge");
        }
        assert_eq!(arena.decode(1).unwrap(), g.messages());
        assert_eq!(arena.innovative_count(1), 8);
    }

    #[test]
    fn empty_node_emits_nothing() {
        let arena = DecoderArena::<Gf256>::new(1, 3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![1, 2, 3];
        assert!(!arena.emit_packed_row_into(0, &mut rng, &mut buf));
        assert!(buf.is_empty(), "failed emit must leave the buffer cleared");
        assert!(arena.emit_packet(0, &mut rng).is_none());
    }

    #[test]
    fn receive_packed_mut_consumes_callers_buffer() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Generation::<Gf256>::random(2, 1, &mut rng);
        let mut arena = DecoderArena::<Gf256>::new(2, 2, 1);
        arena.seed_all_messages(0, &g);
        let mut buf = Vec::new();
        assert!(arena.emit_packed_row_into(0, &mut rng, &mut buf));
        let before = buf.clone();
        let _ = arena.receive_packed_mut(1, &mut buf);
        assert_eq!(buf.len(), before.len(), "length preserved for reuse");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        let mut arena = DecoderArena::<Gf256>::new(1, 3, 1);
        let _ = arena.receive_packed_slice(0, &[1, 2]);
    }

    /// Shard receive/emit must be byte-identical to the serial arena under
    /// the same RNG streams — the property the sharded engine rests on.
    #[test]
    fn shards_track_serial_arena_under_shared_rng() {
        let mut setup_rng = StdRng::seed_from_u64(21);
        let k = 6;
        let r = 3;
        let nodes = 5;
        let g = Generation::<Gf256>::random(k, r, &mut setup_rng);
        let mut serial = DecoderArena::<Gf256>::new(nodes, k, r);
        let mut sharded = DecoderArena::<Gf256>::new(nodes, k, r);
        for v in 0..nodes {
            serial.seed_message(v, &g, v % k);
            sharded.seed_message(v, &g, v % k);
        }
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut traffic = StdRng::seed_from_u64(5);
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        {
            let mut shards = sharded.shards_mut(&[(0, 2), (2, nodes)]);
            for _ in 0..300 {
                let from = traffic.gen_range(0..nodes);
                let to = (from + 1 + traffic.gen_range(0..nodes - 1)) % nodes;
                let density = if traffic.gen_bool(0.5) { 1.0 } else { 0.3 };
                let a = if density < 1.0 {
                    serial.emit_sparse_packed_row_into(from, density, &mut rng_a, &mut buf_a)
                } else {
                    serial.emit_packed_row_into(from, &mut rng_a, &mut buf_a)
                };
                let sf = shards
                    .iter_mut()
                    .position(|s| s.node_range().contains(&from))
                    .unwrap();
                let b = if density < 1.0 {
                    shards[sf].emit_sparse_packed_row_into(from, density, &mut rng_b, &mut buf_b)
                } else {
                    shards[sf].emit_packed_row_into(from, &mut rng_b, &mut buf_b)
                };
                assert_eq!(a, b, "emit disagreement");
                assert_eq!(buf_a, buf_b, "emitted bytes diverged");
                if !a {
                    continue;
                }
                let want = serial.receive_packed_mut(to, &mut buf_a);
                let st = shards
                    .iter_mut()
                    .position(|s| s.node_range().contains(&to))
                    .unwrap();
                let got = shards[st].receive_packed_mut(to, &mut buf_b);
                assert_eq!(got, want, "verdict diverged");
            }
        }
        for v in 0..nodes {
            assert_eq!(serial.rank(v), sharded.rank(v));
            assert_eq!(serial.innovative_count(v), sharded.innovative_count(v));
            assert_eq!(serial.redundant_count(v), sharded.redundant_count(v));
            assert_eq!(serial.decode(v), sharded.decode(v));
        }
    }

    /// Growth policy is invisible to decoder semantics; chunked stays
    /// within the preallocated footprint.
    #[test]
    fn growth_policies_decode_identically() {
        use ag_linalg::ArenaGrowth;
        let mut rng = StdRng::seed_from_u64(17);
        let g = Generation::<Gf256>::random(8, 4, &mut rng);
        let mut chunked = DecoderArena::<Gf256>::with_growth(2, 8, 4, ArenaGrowth::Chunked);
        let mut prealloc = DecoderArena::<Gf256>::with_growth(2, 8, 4, ArenaGrowth::Preallocated);
        chunked.seed_all_messages(0, &g);
        prealloc.seed_all_messages(0, &g);
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let mut buf = Vec::new();
        while !chunked.is_complete(1) {
            assert!(chunked.emit_packed_row_into(0, &mut rng_a, &mut buf));
            chunked.receive_packed_slice(1, &buf);
            assert!(prealloc.emit_packed_row_into(0, &mut rng_b, &mut buf));
            prealloc.receive_packed_slice(1, &buf);
        }
        assert_eq!(chunked.decode(1), prealloc.decode(1));
        assert_eq!(chunked.decode(1).unwrap(), g.messages());
        assert!(chunked.allocated_bytes() <= prealloc.allocated_bytes());
    }
}
