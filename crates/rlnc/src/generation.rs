//! A generation: the `k` source messages being disseminated.

use std::error::Error;
use std::fmt;

use ag_gf::Field;

/// Error constructing a [`Generation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerationError {
    /// The message list was empty.
    Empty,
    /// Messages had differing symbol lengths.
    RaggedMessages {
        /// Length of message 0.
        expected: usize,
        /// Index of the first offending message.
        index: usize,
        /// Its length.
        actual: usize,
    },
}

impl fmt::Display for GenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerationError::Empty => write!(f, "a generation needs at least one message"),
            GenerationError::RaggedMessages {
                expected,
                index,
                actual,
            } => write!(
                f,
                "message {index} has {actual} symbols but message 0 has {expected}"
            ),
        }
    }
}

impl Error for GenerationError {}

/// The `k` source messages `x_1, …, x_k`, each `r` symbols over `F`.
///
/// A `Generation` is the ground truth of one dissemination task: protocols
/// seed node decoders from it and integrity checks compare decoded output
/// against it.
///
/// # Examples
///
/// ```
/// use ag_gf::Gf256;
/// use ag_rlnc::Generation;
///
/// let g = Generation::from_messages(vec![
///     vec![Gf256::new(10), Gf256::new(11)],
///     vec![Gf256::new(20), Gf256::new(21)],
/// ]).unwrap();
/// assert_eq!(g.k(), 2);
/// assert_eq!(g.message_len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation<F> {
    messages: Vec<Vec<F>>,
    message_len: usize,
}

impl<F: Field> Generation<F> {
    /// Builds a generation from `k` equal-length messages.
    ///
    /// # Errors
    ///
    /// Returns [`GenerationError`] when the list is empty or ragged.
    pub fn from_messages(messages: Vec<Vec<F>>) -> Result<Self, GenerationError> {
        let Some(first) = messages.first() else {
            return Err(GenerationError::Empty);
        };
        let message_len = first.len();
        for (index, m) in messages.iter().enumerate() {
            if m.len() != message_len {
                return Err(GenerationError::RaggedMessages {
                    expected: message_len,
                    index,
                    actual: m.len(),
                });
            }
        }
        Ok(Generation {
            messages,
            message_len,
        })
    }

    /// A generation of `k` random messages of `r` symbols each — the
    /// standard synthetic workload for dissemination experiments.
    pub fn random<R: rand::Rng + ?Sized>(k: usize, r: usize, rng: &mut R) -> Self {
        assert!(k > 0, "generation size must be positive");
        let messages = (0..k)
            .map(|_| (0..r).map(|_| F::random(rng)).collect())
            .collect();
        Generation {
            messages,
            message_len: r,
        }
    }

    /// The number of messages `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.messages.len()
    }

    /// Symbols per message `r` (may be 0 for rank-dynamics-only runs).
    #[must_use]
    pub fn message_len(&self) -> usize {
        self.message_len
    }

    /// The source messages.
    #[must_use]
    pub fn messages(&self) -> &[Vec<F>] {
        &self.messages
    }

    /// Message `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[must_use]
    pub fn message(&self, i: usize) -> &[F] {
        &self.messages[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Generation::<Gf256>::from_messages(vec![]),
            Err(GenerationError::Empty)
        );
    }

    #[test]
    fn rejects_ragged() {
        let err = Generation::from_messages(vec![vec![Gf256::ONE], vec![]]).unwrap_err();
        assert!(matches!(
            err,
            GenerationError::RaggedMessages {
                expected: 1,
                index: 1,
                actual: 0
            }
        ));
        assert!(err.to_string().contains("message 1"));
    }

    #[test]
    fn zero_length_messages_allowed() {
        // r = 0: pure rank-dynamics simulation.
        let g = Generation::from_messages(vec![vec![], vec![]] as Vec<Vec<Gf256>>).unwrap();
        assert_eq!(g.k(), 2);
        assert_eq!(g.message_len(), 0);
    }

    #[test]
    fn random_generation_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Generation::<Gf256>::random(5, 7, &mut rng);
        assert_eq!(g.k(), 5);
        assert_eq!(g.message_len(), 7);
        assert!(g.messages().iter().all(|m| m.len() == 7));
    }
}
