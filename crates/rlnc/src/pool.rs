//! A recycling pool of packed-row message buffers.
//!
//! The simulation engine moves coded messages as packed byte rows
//! (`Vec<u8>`). Allocating a fresh `Vec` per message is the single
//! remaining steady-state allocation once decoders live in a
//! [`ag_linalg::BasisArena`] — at `n = 10⁵` nodes that is hundreds of
//! thousands of malloc/free pairs per round. [`RowPool`] removes it: a
//! protocol [`take`](RowPool::take)s a buffer in `compose`, the engine
//! carries it through its outbox as a plain `Vec<u8>`, and the protocol
//! [`put`](RowPool::put)s it back wherever the message ends its life —
//! in `deliver` after the row is consumed, or in the `Protocol::discard`
//! hook the engines invoke for messages they drop without delivering
//! (same-sender dedup, loss injection). Pre-warmed to the per-round
//! in-flight ceiling ([`RowPool::preallocated`]), the round loop performs
//! **zero** per-message heap allocation from the first round, which
//! `bench_rlnc_throughput` asserts with a counting global allocator.
//!
//! Messages stay plain `Vec<u8>`s on purpose: an earlier design wrapped
//! them in a self-returning smart pointer (drop = return to pool), but
//! threading a `Drop`-glued, refcount-carrying type through the engine's
//! outbox made the rank-only round loop ~4× slower — the buffer is 4
//! bytes there, so per-message bookkeeping *is* the workload. The
//! explicit take/put discipline keeps the engine's message plumbing
//! untouched and costs a few nanoseconds per cycle.
//!
//! The free list is an `Rc<RefCell<_>>`, so a pool (and any protocol
//! holding one) is single-threaded (`!Send`). The simulation engine is
//! single-threaded by design, and parallel trial runners construct one
//! protocol per task, so nothing in the workspace moves one across
//! threads.
//!
//! # Examples
//!
//! ```
//! use ag_rlnc::RowPool;
//!
//! let pool = RowPool::preallocated(2, 64);
//! let mut row = pool.take();
//! row.extend_from_slice(&[1, 2, 3]);
//! pool.put(row); // buffer (and its capacity) returns to the pool
//! assert_eq!(pool.idle(), 2);
//! assert!(pool.take().is_empty()); // cleared, but capacity recycled
//! ```

use std::cell::RefCell;
use std::rc::Rc;

/// A shared pool of reusable byte buffers for packed-row messages. See the
/// [module docs](self).
///
/// `Clone` is shallow: clones hand out buffers from the same free list.
#[derive(Debug, Clone, Default)]
pub struct RowPool {
    free: Rc<RefCell<Vec<Vec<u8>>>>,
}

impl RowPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        RowPool::default()
    }

    /// A pool pre-warmed with `count` buffers of `capacity_bytes` each.
    ///
    /// A synchronous gossip round has a known in-flight ceiling (one
    /// message per contact direction per node), so a protocol that
    /// preallocates to it makes its round loop allocation-free from the
    /// *first* round — otherwise the pool would grow lazily for as long
    /// as per-round traffic keeps setting new high-water marks.
    #[must_use]
    pub fn preallocated(count: usize, capacity_bytes: usize) -> Self {
        let pool = RowPool::default();
        {
            let mut free = pool.free.borrow_mut();
            free.reserve_exact(count);
            for _ in 0..count {
                free.push(Vec::with_capacity(capacity_bytes));
            }
        }
        pool
    }

    /// Takes a cleared buffer out of the pool, allocating a fresh (empty)
    /// one only when the pool is dry — start-up, or after the in-flight
    /// high-water mark outgrew the preallocation.
    #[must_use]
    pub fn take(&self) -> Vec<u8> {
        let mut buf = self.free.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a buffer to the pool. The contents are irrelevant (the next
    /// [`RowPool::take`] clears it); only the allocation is recycled.
    pub fn put(&self, buf: Vec<u8>) {
        self.free.borrow_mut().push(buf);
    }

    /// Buffers currently resting in the pool (diagnostics/tests).
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_cycle_through_the_pool() {
        let pool = RowPool::new();
        assert_eq!(pool.idle(), 0);
        let mut a = pool.take();
        a.resize(64, 7);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity must be recycled");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn steady_state_take_put_does_not_grow_the_pool() {
        let pool = RowPool::new();
        for _ in 0..100 {
            let mut r = pool.take();
            r.resize(32, 1);
            pool.put(r);
        }
        assert_eq!(pool.idle(), 1, "serial take/put reuses one buffer");
    }

    #[test]
    fn preallocated_pool_has_capacity_ready() {
        let pool = RowPool::preallocated(3, 16);
        assert_eq!(pool.idle(), 3);
        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.idle(), 1);
        assert!(a.capacity() >= 16 && b.capacity() >= 16);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.idle(), 3);
    }

    #[test]
    fn clones_share_the_free_list() {
        let pool = RowPool::new();
        let clone = pool.clone();
        pool.put(Vec::new());
        assert_eq!(clone.idle(), 1);
        let _ = clone.take();
        assert_eq!(pool.idle(), 0);
    }
}
