//! Differential test harness: the packed slab decoder vs the scalar
//! reference (and the simulation-wide decoder arena), locked step for step.
//!
//! The `reference` module wraps [`ag_linalg::reference::ScalarBasis`] — the
//! pre-slab element-at-a-time elimination, preserved verbatim — in a
//! decoder with the same receive/decode semantics as [`ag_rlnc::Decoder`].
//! Every property replays one random packet stream through all
//! implementations (including an [`ag_rlnc::DecoderArena`] slot, the
//! arena-backed storage the engine hot path uses) and asserts they agree on
//!
//! * the per-packet [`Reception`] verdict,
//! * the full rank trajectory (rank after every delivery),
//! * helpfulness queries, and
//! * the decoded messages once rank `k` is reached.
//!
//! Streams are exercised over `Gf2` (pure-XOR fast path), `Gf16` (nibble
//! table fast path) and `Gf256` (full-table fast path), with shape-mismatch
//! packets injected to pin the typed-error path too. Run with
//! `PROPTEST_CASES=256` in CI for the elevated-coverage pass.

use ag_gf::{Field, Gf16, Gf2, Gf256, SlabField};
use ag_rlnc::{ArenaGrowth, CodingError, Decoder, DecoderArena, Generation, Packet, Recoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod reference {
    //! The scalar decoder: `ag_rlnc::Decoder` semantics on `ScalarBasis`.

    use ag_gf::Field;
    use ag_linalg::reference::ScalarBasis;
    use ag_linalg::Insertion;
    use ag_rlnc::{Generation, Packet, Reception};

    pub struct ScalarDecoder<F> {
        k: usize,
        payload_len: usize,
        basis: ScalarBasis<F>,
    }

    impl<F: Field> ScalarDecoder<F> {
        pub fn new(k: usize, payload_len: usize) -> Self {
            ScalarDecoder {
                k,
                payload_len,
                basis: ScalarBasis::new(k),
            }
        }

        pub fn with_all_messages(generation: &Generation<F>) -> Self {
            let mut d = ScalarDecoder::new(generation.k(), generation.message_len());
            for i in 0..generation.k() {
                d.seed_message(generation, i);
            }
            d
        }

        pub fn seed_message(&mut self, generation: &Generation<F>, index: usize) {
            let mut row = vec![F::ZERO; self.k];
            row[index] = F::ONE;
            row.extend_from_slice(generation.message(index));
            let _ = self.basis.insert(row);
        }

        /// Scalar mirror of `Decoder::receive`; packets are assumed
        /// shape-valid (the differential driver checks shapes up front,
        /// exactly like `Decoder::try_receive`).
        pub fn receive(&mut self, packet: Packet<F>) -> Reception {
            assert_eq!(packet.generation_size(), self.k);
            assert_eq!(packet.payload_len(), self.payload_len);
            match self.basis.insert(packet.into_row()) {
                Insertion::Innovative => Reception::Innovative,
                Insertion::Redundant => Reception::Redundant,
            }
        }

        pub fn rank(&self) -> usize {
            self.basis.rank()
        }

        pub fn is_complete(&self) -> bool {
            self.basis.is_full()
        }

        pub fn would_help(&self, packet: &Packet<F>) -> bool {
            self.basis.would_be_innovative(packet.coefficients())
        }

        /// The stored (eagerly reduced) rows — the oracle the lazy lane's
        /// emit mirror recombines.
        pub fn rows(&self) -> &[Vec<F>] {
            self.basis.rows()
        }

        /// Scalar mirror of `Decoder::is_helpful_node`.
        pub fn is_helped_by(&self, other: &ScalarDecoder<F>) -> bool {
            other
                .rows()
                .iter()
                .any(|row| self.basis.would_be_innovative(&row[..self.k]))
        }

        pub fn decode(&self) -> Option<Vec<Vec<F>>> {
            self.basis.solution()
        }
    }
}

use reference::ScalarDecoder;

/// Replays `steps` random packets (mostly source recodings, some junk) into
/// a packed decoder and a scalar decoder and asserts identical behaviour.
fn differential_stream<F: SlabField>(
    seed: u64,
    k: usize,
    r: usize,
    steps: usize,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);

    let mut packed = Decoder::<F>::new(k, r);
    let mut scalar = ScalarDecoder::<F>::new(k, r);
    // Third lane: the same node as slot 0 of a DecoderArena — the
    // simulation-wide storage must not change a single verdict. The
    // default arena is rank-bounded (chunked growth)…
    let mut arena = DecoderArena::<F>::new(1, k, r);
    // …and the fourth lane pins the preallocated arena against it: the
    // growth policy must be invisible in every verdict, rank and byte.
    let mut prealloc = DecoderArena::<F>::with_growth(1, k, r, ArenaGrowth::Preallocated);

    for step in 0..steps {
        // Mix of streams: recodings of the full source, raw random rows
        // (not necessarily in any span), and occasional all-zero packets.
        let packet: Packet<F> = match step % 7 {
            0..=3 => Recoder::new(&source).emit(&mut rng).expect("source emits"),
            4 | 5 => {
                let coeffs: Vec<F> = (0..k).map(|_| F::random(&mut rng)).collect();
                let payload: Vec<F> = (0..r).map(|_| F::random(&mut rng)).collect();
                Packet::new(coeffs, payload)
            }
            _ => Packet::new(vec![F::ZERO; k], vec![F::ZERO; r]),
        };

        // Helpfulness prediction must agree before delivery...
        prop_assert_eq!(
            packed.would_help(&packet),
            scalar.would_help(&packet),
            "would_help diverged at step {}",
            step
        );
        // ...and so must the verdict and the rank trajectory after it.
        let verdict = packed
            .try_receive(&packet)
            .expect("shape-valid packet must be accepted");
        let arena_verdict = arena.receive_packed_slice(0, &packet.to_packed_row());
        let prealloc_verdict = prealloc.receive_packed_slice(0, &packet.to_packed_row());
        let want = scalar.receive(packet);
        prop_assert_eq!(verdict, want, "verdict diverged at step {}", step);
        prop_assert_eq!(
            arena_verdict,
            want,
            "arena verdict diverged at step {}",
            step
        );
        prop_assert_eq!(
            prealloc_verdict,
            want,
            "preallocated-arena verdict diverged at step {}",
            step
        );
        prop_assert_eq!(
            packed.rank(),
            scalar.rank(),
            "rank trajectory diverged at step {}",
            step
        );
        prop_assert_eq!(arena.rank(0), scalar.rank());
        prop_assert_eq!(prealloc.rank(0), scalar.rank());
        prop_assert_eq!(packed.is_complete(), scalar.is_complete());
        prop_assert_eq!(arena.is_complete(0), scalar.is_complete());
    }

    // Decoded output must be identical whenever available. (It need not
    // equal the generation here: the junk packets are *inconsistent*
    // equations by construction — `full_decode_agrees` covers ground-truth
    // correctness on consistent streams.)
    prop_assert_eq!(packed.decode(), scalar.decode());
    prop_assert_eq!(arena.decode(0), scalar.decode());
    prop_assert_eq!(prealloc.decode(0), arena.decode(0));
    // Chunked storage must never commit more heap than the preallocated
    // ceiling for the same stream.
    prop_assert!(arena.allocated_bytes() <= prealloc.allocated_bytes());
    Ok(())
}

/// Scalar mirror of `Recoder::emit`: one uniform draw per stored row in
/// insertion order (zeros included), accumulated in scalar arithmetic.
/// Under a shared RNG state this must reproduce the packed emit byte for
/// byte — including when the packed basis still has payload elimination
/// pending and the emit forces a mid-stream flush.
fn scalar_emit<F: SlabField>(
    rows: &[Vec<F>],
    k: usize,
    r: usize,
    rng: &mut StdRng,
) -> Option<Packet<F>> {
    if rows.is_empty() {
        return None;
    }
    let mut acc = vec![F::ZERO; k + r];
    for row in rows {
        let c = F::random(rng);
        if c.is_zero() {
            continue;
        }
        for (a, &x) in acc.iter_mut().zip(row.iter()) {
            *a += c * x;
        }
    }
    let payload = acc.split_off(k);
    Some(Packet::new(acc, payload))
}

/// The lazy-elimination lane: interleaves receptions, recode-emits from
/// *partially filled* bases, helpfulness probes and mid-stream decode
/// attempts. Every relay emit recombines a basis whose payload ledger has
/// pending elimination events (the emit itself forces the flush), so this
/// pins the deferred replay — verdicts, rank trajectories, emitted bytes
/// and decoded output — against the eager scalar oracle, across the
/// packed decoder AND the arena-backed decoder.
fn lazy_interleaved_stream<F: SlabField>(
    seed: u64,
    k: usize,
    r: usize,
    steps: usize,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);

    // Two relay nodes per lane: node 0 receives from the source, node 1
    // receives node 0's recodings (built from a partially-eliminated basis).
    let mut packed = [Decoder::<F>::new(k, r), Decoder::<F>::new(k, r)];
    let mut scalar = [ScalarDecoder::<F>::new(k, r), ScalarDecoder::<F>::new(k, r)];
    let mut arena = DecoderArena::<F>::new(2, k, r);

    // All three lanes draw their recoding coefficients from identically
    // seeded RNG streams, so equal draw *sequences* imply equal bytes.
    let mut emit_a = StdRng::seed_from_u64(seed ^ 0xE717);
    let mut emit_b = emit_a.clone();
    let mut emit_c = emit_a.clone();
    let mut buf = Vec::new();

    for step in 0..steps {
        match step % 5 {
            // Source recoding into node 0.
            0 | 1 => {
                let p = Recoder::new(&source).emit(&mut rng).expect("source emits");
                prop_assert_eq!(
                    packed[0].would_help(&p),
                    scalar[0].would_help(&p),
                    "would_help diverged at step {}",
                    step
                );
                let va = packed[0].try_receive(&p).expect("shape-valid packet");
                let vb = arena.receive_packed_slice(0, &p.to_packed_row());
                let vc = scalar[0].receive(p);
                prop_assert_eq!(va, vc, "verdict diverged at step {}", step);
                prop_assert_eq!(vb, vc, "arena verdict diverged at step {}", step);
            }
            // Relay: node 0 recodes from its partially filled basis into
            // node 1. The packed/arena emits flush node 0's pending payload
            // events; the bytes must still match the scalar recombination.
            2 | 3 => {
                let row_a = Recoder::new(&packed[0]).emit_packed_row(&mut emit_a);
                let emitted_b = arena.emit_packed_row_into(0, &mut emit_b, &mut buf);
                let pkt_c = scalar_emit::<F>(scalar[0].rows(), k, r, &mut emit_c);
                prop_assert_eq!(row_a.is_some(), emitted_b);
                prop_assert_eq!(row_a.is_some(), pkt_c.is_some());
                let (Some(row_a), Some(pkt_c)) = (row_a, pkt_c) else {
                    continue;
                };
                prop_assert_eq!(&row_a, &buf, "arena emit bytes diverged at step {}", step);
                prop_assert_eq!(
                    &row_a,
                    &pkt_c.to_packed_row(),
                    "recoded bytes diverged from scalar at step {} (flush bug)",
                    step
                );
                prop_assert_eq!(
                    packed[1].would_help(&pkt_c),
                    scalar[1].would_help(&pkt_c),
                    "relay would_help diverged at step {}",
                    step
                );
                let va = packed[1].receive_packed_slice(&row_a);
                let vb = arena.receive_packed_slice(1, &row_a);
                let vc = scalar[1].receive(pkt_c);
                prop_assert_eq!(va, vc, "relay verdict diverged at step {}", step);
                prop_assert_eq!(vb, vc, "relay arena verdict diverged at step {}", step);
            }
            // Mid-stream observation: decode attempts (forcing a payload
            // flush once complete) and cross-node helpfulness.
            _ => {
                for node in 0..2 {
                    prop_assert_eq!(
                        packed[node].decode(),
                        scalar[node].decode(),
                        "mid-stream decode diverged at step {}",
                        step
                    );
                    prop_assert_eq!(arena.decode(node), scalar[node].decode());
                }
                prop_assert_eq!(
                    packed[1].is_helpful_node(&packed[0]),
                    scalar[1].is_helped_by(&scalar[0]),
                    "helpful-node diverged at step {}",
                    step
                );
            }
        }
        for node in 0..2 {
            prop_assert_eq!(packed[node].rank(), scalar[node].rank());
            prop_assert_eq!(arena.rank(node), scalar[node].rank());
        }
    }

    // Every delivered packet was a consistent combination of the source
    // messages, so a completed node must decode the generation exactly.
    for node in 0..2 {
        prop_assert_eq!(packed[node].decode(), scalar[node].decode());
        prop_assert_eq!(arena.decode(node), scalar[node].decode());
        if packed[node].is_complete() {
            prop_assert_eq!(
                packed[node].decode().expect("complete"),
                generation.messages().to_vec()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gf2_packed_decoder_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..12,
        r in 0usize..6,
    ) {
        differential_stream::<Gf2>(seed, k, r, 6 * k + 8)?;
    }

    #[test]
    fn gf16_packed_decoder_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..10,
        r in 0usize..6,
    ) {
        differential_stream::<Gf16>(seed, k, r, 4 * k + 6)?;
    }

    #[test]
    fn gf256_packed_decoder_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..10,
        r in 0usize..8,
    ) {
        differential_stream::<Gf256>(seed, k, r, 4 * k + 6)?;
    }

    #[test]
    fn gf2_lazy_interleaved_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..10,
        r in 0usize..6,
    ) {
        lazy_interleaved_stream::<Gf2>(seed, k, r, 10 * k + 10)?;
    }

    #[test]
    fn gf16_lazy_interleaved_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..9,
        r in 0usize..6,
    ) {
        lazy_interleaved_stream::<Gf16>(seed, k, r, 8 * k + 10)?;
    }

    #[test]
    fn gf256_lazy_interleaved_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..9,
        r in 0usize..8,
    ) {
        lazy_interleaved_stream::<Gf256>(seed, k, r, 8 * k + 10)?;
    }

    /// A complete dissemination (source -> sink until full rank) decodes to
    /// the same messages on both paths.
    #[test]
    fn full_decode_agrees(seed in any::<u64>(), k in 1usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generation::<Gf256>::random(k, 3, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let scalar_source = ScalarDecoder::with_all_messages(&g);
        let mut sink = Decoder::<Gf256>::new(k, 3);
        let mut scalar_sink = ScalarDecoder::<Gf256>::new(k, 3);
        let mut guard = 0;
        while !sink.is_complete() {
            let p = Recoder::new(&source).emit(&mut rng).expect("source emits");
            prop_assert_eq!(
                scalar_source.would_help(&p),
                false,
                "a source combination can never help the source"
            );
            let a = sink.receive(p.clone());
            let b = scalar_sink.receive(p);
            prop_assert_eq!(a, b);
            guard += 1;
            prop_assert!(guard < 60 * (k + 2), "did not converge");
        }
        prop_assert_eq!(sink.decode().unwrap(), scalar_sink.decode().unwrap());
    }
}

/// Shape-mismatched packets take the typed-error path and leave the packed
/// decoder in lockstep with the scalar one (which never saw the packet).
#[test]
fn mismatched_packets_do_not_desynchronize() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let k = 5;
    let r = 2;
    let generation = Generation::<Gf256>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);
    let mut packed = Decoder::<Gf256>::new(k, r);
    let mut scalar = ScalarDecoder::<Gf256>::new(k, r);

    while !packed.is_complete() {
        // Interleave a malformed packet before every good one.
        let bad = Packet::new(
            (0..k).map(|_| Gf256::random(&mut rng)).collect(),
            (0..r + 1).map(|_| Gf256::random(&mut rng)).collect(),
        );
        assert_eq!(
            packed.try_receive(&bad),
            Err(CodingError::PayloadLengthMismatch {
                expected: r,
                got: r + 1
            })
        );
        let good = Recoder::new(&source).emit(&mut rng).expect("source emits");
        let a = packed.try_receive(&good).expect("good packet");
        let b = scalar.receive(good);
        assert_eq!(a, b);
        assert_eq!(packed.rank(), scalar.rank());
    }
    assert_eq!(packed.decode(), scalar.decode());
    assert_eq!(
        packed.decode().expect("complete"),
        generation.messages().to_vec()
    );
}
