//! Property-based tests: RLNC end-to-end invariants.

use ag_gf::{Gf2, Gf256};
use ag_rlnc::{BlockDecoder, BlockEncoder, Decoder, Generation, Recoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any blob, any chunk count, any field: dissemination-free round trip.
    #[test]
    fn block_framing_round_trip(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        k in 1usize..12,
    ) {
        let enc = BlockEncoder::<Gf256>::new(&data, k);
        let back = BlockDecoder::new(data.len(), k).reassemble(enc.generation().messages());
        prop_assert_eq!(back, data);
    }

    /// Source-to-sink transfer over a lossless link decodes exactly, for any
    /// seed, over GF(2) (the worst field).
    #[test]
    fn gf2_source_sink_decode(seed in any::<u64>(), k in 1usize..10, r in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generation::<Gf2>::random(k, r, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let mut sink = Decoder::new(k, r);
        let mut steps = 0;
        while !sink.is_complete() {
            if let Some(p) = Recoder::new(&source).emit(&mut rng) {
                sink.receive(p);
            }
            steps += 1;
            prop_assert!(steps < 50 * (k + 2), "decode did not converge");
        }
        prop_assert_eq!(sink.decode().unwrap(), g.messages());
    }

    /// Rank is monotone and bounded under arbitrary traffic.
    #[test]
    fn rank_monotone_and_bounded(seed in any::<u64>(), k in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generation::<Gf256>::random(k, 1, &mut rng);
        let mut partial = Decoder::new(k, 1);
        partial.seed_message(&g, 0);
        let source = Decoder::with_all_messages(&g);
        let mut prev = partial.rank();
        for _ in 0..3 * k {
            if let Some(p) = Recoder::new(&source).emit(&mut rng) {
                let innovative = partial.receive(p).is_innovative();
                let now = partial.rank();
                prop_assert!(now >= prev);
                prop_assert_eq!(innovative, now == prev + 1);
                prop_assert!(now <= k);
                prev = now;
            }
        }
    }

    /// A node is never helpful to itself, and a complete node is helpful to
    /// every incomplete one.
    #[test]
    fn helpfulness_relation(seed in any::<u64>(), k in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generation::<Gf256>::random(k, 0, &mut rng);
        let full = Decoder::with_all_messages(&g);
        let mut partial = Decoder::new(k, 0);
        partial.seed_message(&g, k - 1);
        prop_assert!(!full.is_helpful_node(&full));
        prop_assert!(!partial.is_helpful_node(&partial));
        prop_assert!(partial.is_helpful_node(&full));
        prop_assert!(!full.is_helpful_node(&partial));
    }

    /// Relay chains preserve decodability: source -> relay -> sink.
    #[test]
    fn two_hop_relay_decodes(seed in any::<u64>(), k in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generation::<Gf256>::random(k, 2, &mut rng);
        let source = Decoder::with_all_messages(&g);
        let mut relay = Decoder::new(k, 2);
        let mut sink = Decoder::new(k, 2);
        let mut steps = 0;
        while !sink.is_complete() {
            if let Some(p) = Recoder::new(&source).emit(&mut rng) {
                relay.receive(p);
            }
            if let Some(p) = Recoder::new(&relay).emit(&mut rng) {
                sink.receive(p);
            }
            steps += 1;
            prop_assert!(steps < 100 * (k + 2), "relay chain did not converge");
        }
        prop_assert_eq!(sink.decode().unwrap(), g.messages());
    }
}
