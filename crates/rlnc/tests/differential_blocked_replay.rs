//! Forced blocked-replay differential lane.
//!
//! The default `cargo test` run resolves the payload-replay schedule to
//! [`ReplayMode::Auto`], which only picks the blocked (BLAS-3) schedule
//! once a basis accumulates a deep pending suffix — small differential
//! streams would never leave the row-wise path. This binary forces
//! [`ReplayMode::Blocked`] process-wide (it is its own test process, so
//! the global knob cannot leak into other suites) and replays interleaved
//! receive/emit/decode streams against the eager scalar oracle: every
//! flush — recode emits from partially-eliminated bases, mid-stream and
//! final decodes, arena solutions — runs through the transform-panel GEMM
//! path, and every verdict, rank, emitted byte and decoded message must
//! match [`ag_linalg::reference::ScalarBasis`] exactly.
//!
//! Run with `PROPTEST_CASES=256` in CI for the elevated-coverage pass; CI
//! additionally re-runs the main `differential_decoder` suite under
//! `AG_LINALG_REPLAY=blocked` and `=rowwise`.

use ag_gf::{Field, Gf16, Gf2, Gf256, SlabField};
use ag_linalg::reference::ScalarBasis;
use ag_linalg::{set_replay_mode, Insertion, ReplayMode};
use ag_rlnc::{Decoder, DecoderArena, Generation, Packet, Reception, Recoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimal scalar decoder mirror (see `differential_decoder.rs` for the
/// full-featured twin): eager element-at-a-time elimination.
struct ScalarDecoder<F> {
    k: usize,
    basis: ScalarBasis<F>,
}

impl<F: Field> ScalarDecoder<F> {
    fn new(k: usize) -> Self {
        ScalarDecoder {
            k,
            basis: ScalarBasis::new(k),
        }
    }

    fn receive(&mut self, packet: Packet<F>) -> Reception {
        match self.basis.insert(packet.into_row()) {
            Insertion::Innovative => Reception::Innovative,
            Insertion::Redundant => Reception::Redundant,
        }
    }

    fn rank(&self) -> usize {
        self.basis.rank()
    }

    fn rows(&self) -> &[Vec<F>] {
        self.basis.rows()
    }

    fn decode(&self) -> Option<Vec<Vec<F>>> {
        self.basis.solution()
    }
}

/// Scalar mirror of `Recoder::emit_packed_row`: one uniform draw per
/// stored row in insertion order (zeros included). Under a shared RNG
/// state this must reproduce the packed emit byte for byte — here the
/// packed emit settles its pending elimination through the forced blocked
/// schedule first.
fn scalar_emit<F: SlabField>(
    rows: &[Vec<F>],
    k: usize,
    r: usize,
    rng: &mut StdRng,
) -> Option<Packet<F>> {
    if rows.is_empty() {
        return None;
    }
    let mut acc = vec![F::ZERO; k + r];
    for row in rows {
        let c = F::random(rng);
        if c.is_zero() {
            continue;
        }
        for (a, &x) in acc.iter_mut().zip(row.iter()) {
            *a += c * x;
        }
    }
    let payload = acc.split_off(k);
    Some(Packet::new(acc, payload))
}

/// One interleaved stream under forced blocked replay: source recodings
/// into node 0, relay emits (each forcing a blocked flush of a partially
/// filled basis) into node 1, mid-stream decodes, final ground truth.
fn blocked_stream<F: SlabField>(
    seed: u64,
    k: usize,
    r: usize,
    steps: usize,
) -> Result<(), TestCaseError> {
    set_replay_mode(ReplayMode::Blocked);
    let mut rng = StdRng::seed_from_u64(seed);
    let generation = Generation::<F>::random(k, r, &mut rng);
    let source = Decoder::with_all_messages(&generation);

    let mut packed = [Decoder::<F>::new(k, r), Decoder::<F>::new(k, r)];
    let mut scalar = [ScalarDecoder::<F>::new(k), ScalarDecoder::<F>::new(k)];
    let mut arena = DecoderArena::<F>::new(2, k, r);

    let mut emit_a = StdRng::seed_from_u64(seed ^ 0xB10C);
    let mut emit_b = emit_a.clone();
    let mut emit_c = emit_a.clone();
    let mut buf = Vec::new();

    for step in 0..steps {
        match step % 5 {
            // Source recoding into node 0.
            0 | 1 => {
                let p = Recoder::new(&source).emit(&mut rng).expect("source emits");
                let va = packed[0].try_receive(&p).expect("shape-valid packet");
                let vb = arena.receive_packed_slice(0, &p.to_packed_row());
                let vc = scalar[0].receive(p);
                prop_assert_eq!(va, vc, "verdict diverged at step {}", step);
                prop_assert_eq!(vb, vc, "arena verdict diverged at step {}", step);
            }
            // Relay emit from node 0's partially filled basis: the packed
            // and arena emits settle pending events through the blocked
            // schedule; the bytes must match the scalar recombination.
            2 | 3 => {
                let row_a = Recoder::new(&packed[0]).emit_packed_row(&mut emit_a);
                let emitted_b = arena.emit_packed_row_into(0, &mut emit_b, &mut buf);
                let pkt_c = scalar_emit::<F>(scalar[0].rows(), k, r, &mut emit_c);
                prop_assert_eq!(row_a.is_some(), emitted_b);
                prop_assert_eq!(row_a.is_some(), pkt_c.is_some());
                let (Some(row_a), Some(pkt_c)) = (row_a, pkt_c) else {
                    continue;
                };
                prop_assert_eq!(&row_a, &buf, "arena emit bytes diverged at step {}", step);
                prop_assert_eq!(
                    &row_a,
                    &pkt_c.to_packed_row(),
                    "blocked-flush emit bytes diverged at step {}",
                    step
                );
                let va = packed[1].receive_packed_slice(&row_a);
                let vb = arena.receive_packed_slice(1, &row_a);
                let vc = scalar[1].receive(pkt_c);
                prop_assert_eq!(va, vc, "relay verdict diverged at step {}", step);
                prop_assert_eq!(vb, vc, "relay arena verdict diverged at step {}", step);
            }
            // Mid-stream decode attempts: a completed basis settles its
            // whole remaining log in one blocked panel multiply here.
            _ => {
                for node in 0..2 {
                    prop_assert_eq!(
                        packed[node].decode(),
                        scalar[node].decode(),
                        "mid-stream decode diverged at step {}",
                        step
                    );
                    prop_assert_eq!(arena.decode(node), scalar[node].decode());
                }
            }
        }
        for node in 0..2 {
            prop_assert_eq!(packed[node].rank(), scalar[node].rank());
            prop_assert_eq!(arena.rank(node), scalar[node].rank());
        }
    }

    for node in 0..2 {
        prop_assert_eq!(packed[node].decode(), scalar[node].decode());
        prop_assert_eq!(arena.decode(node), scalar[node].decode());
        if packed[node].is_complete() {
            prop_assert_eq!(
                packed[node].decode().expect("complete"),
                generation.messages().to_vec()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gf256_blocked_replay_matches_scalar(
        seed in any::<u64>(),
        // Deep enough that full-rank flushes exceed the Auto thresholds
        // too: the forced lane covers panel shapes Auto would also pick.
        k in 1usize..24,
        r in 1usize..12,
    ) {
        blocked_stream::<Gf256>(seed, k, r, 5 * k + 10)?;
    }

    #[test]
    fn gf16_blocked_replay_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..16,
        r in 1usize..8,
    ) {
        blocked_stream::<Gf16>(seed, k, r, 5 * k + 10)?;
    }

    #[test]
    fn gf2_blocked_replay_matches_scalar(
        seed in any::<u64>(),
        k in 1usize..16,
        r in 1usize..8,
    ) {
        blocked_stream::<Gf2>(seed, k, r, 5 * k + 10)?;
    }
}
