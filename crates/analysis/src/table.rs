//! Plain-text table rendering for the experiment harness output.

use std::fmt::Write as _;

/// Builds aligned plain-text tables (the harness prints the paper's tables
/// to stdout and into `EXPERIMENTS.md`).
///
/// # Examples
///
/// ```
/// use ag_analysis::TableBuilder;
///
/// let mut t = TableBuilder::new(vec!["graph".into(), "rounds".into()]);
/// t.row(vec!["line".into(), "42".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("graph"));
/// assert!(rendered.contains("42"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TableBuilder {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableBuilder {
        let mut t = TableBuilder::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        t
    }

    #[test]
    fn aligned_rendering() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows share column offsets.
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().render_markdown();
        assert!(md.starts_with("| a | bbbb |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| y | 22 |"));
    }

    #[test]
    fn length_tracking() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = TableBuilder::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
