//! Summary statistics for repeated-trial measurements.

use std::fmt;

/// Summary of a sample: mean, spread, quantiles, confidence interval.
///
/// # Examples
///
/// ```
/// use ag_analysis::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    sd: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = if sorted.len() > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            sorted,
            mean,
            sd: var.sqrt(),
        }
    }

    /// Summarizes integer measurements (e.g. round counts).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn of_u64(samples: &[u64]) -> Self {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&floats)
    }

    /// Sample size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample has exactly one point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // construction rejects empty samples
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected); 0 for singletons.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn sem(&self) -> f64 {
        self.sd / (self.sorted.len() as f64).sqrt()
    }

    /// Minimum.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Linear-interpolated quantile, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Normal-approximation 95% confidence interval for the mean.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.sem();
        (self.mean - half, self.mean + half)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (median {:.2}, n={})",
            self.mean,
            1.96 * self.sem(),
            self.median(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Bessel-corrected sd of this classic sample is sqrt(32/7).
        assert!((s.sd() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.ci95(), (42.0, 42.0));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let wide = Summary::of(&[0.0, 10.0]);
        let narrow = Summary::of(&[0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0]);
        let w = wide.ci95().1 - wide.ci95().0;
        let n = narrow.ci95().1 - narrow.ci95().0;
        assert!(n < w);
    }

    #[test]
    fn of_u64_converts() {
        let s = Summary::of_u64(&[1, 2, 3]);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
