//! Tiny text visualizations for terminal "figures".

/// Unicode block characters from empty to full.
const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a unicode sparkline, scaled to `[min, max]` of the
/// data.
///
/// # Examples
///
/// ```
/// use ag_analysis::sparkline;
///
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// Downsamples a series to at most `width` points by bucket-averaging, so
/// long traces fit a terminal line.
///
/// # Examples
///
/// ```
/// use ag_analysis::downsample;
///
/// let long: Vec<f64> = (0..100).map(f64::from).collect();
/// let short = downsample(&long, 10);
/// assert_eq!(short.len(), 10);
/// assert!(short[0] < short[9]);
/// ```
#[must_use]
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if width == 0 || values.is_empty() {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    let per = values.len() as f64 / width as f64;
    (0..width)
        .map(|i| {
            let lo = (i as f64 * per) as usize;
            let hi = (((i + 1) as f64 * per) as usize)
                .min(values.len())
                .max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[1.0, 1.0, 1.0]);
        // Flat data maps to the low block everywhere.
        assert_eq!(s.chars().count(), 3);
        let ramp = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = ramp.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_monotone_data_monotone_blocks() {
        let vals: Vec<f64> = (0..9).map(f64::from).collect();
        let s: Vec<char> = sparkline(&vals).chars().collect();
        for w in s.windows(2) {
            let a = BLOCKS.iter().position(|&b| b == w[0]).unwrap();
            let b = BLOCKS.iter().position(|&b| b == w[1]).unwrap();
            assert!(a <= b);
        }
    }

    #[test]
    fn downsample_preserves_ends_roughly() {
        let vals: Vec<f64> = (0..1000).map(f64::from).collect();
        let d = downsample(&vals, 20);
        assert_eq!(d.len(), 20);
        assert!(d[0] < 50.0);
        assert!(d[19] > 900.0);
    }

    #[test]
    fn downsample_short_input_passthrough() {
        let vals = vec![3.0, 4.0];
        assert_eq!(downsample(&vals, 10), vals);
        assert!(downsample(&vals, 0).is_empty());
    }
}
