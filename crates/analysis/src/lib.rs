//! Analysis toolkit: the paper's closed-form bounds, summary statistics,
//! and scaling-exponent fits.
//!
//! The experiments compare *measured* stopping times against the paper's
//! bound `O((k + log n + D)·Δ)` (Theorem 1), TAG's bound
//! `O(k + log n + d(S) + t(S))` (Theorem 4), the trivial lower bounds
//! `Ω(k)` / `Ω(k + D)`, and — for Table 2 — Haeupler's
//! `O(k/γ + log²n / λ)` with the per-family values of `γ` and `λ` the
//! paper's Table 2 assumes. "Order optimal" is a statement about growth
//! rates, so [`regression`] provides least-squares and log-log slope fits
//! to turn sweep measurements into exponents.

pub mod bounds;
pub mod regression;
pub mod stats;
pub mod table;
pub mod viz;

pub use bounds::{haeupler_bound, lower_bound_rounds, tag_bound, uniform_ag_bound, Table2Family};
pub use regression::{linear_fit, loglog_slope, LinearFit};
pub use stats::Summary;
pub use table::TableBuilder;
pub use viz::{downsample, sparkline};
