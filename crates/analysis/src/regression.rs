//! Least-squares fits: the tool that turns sweeps into scaling exponents.

/// An ordinary least-squares line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
///
/// Panics if fewer than 2 points are given or all `x` are identical.
///
/// # Examples
///
/// ```
/// use ag_analysis::linear_fit;
///
/// let fit = linear_fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r_squared > 0.999);
/// ```
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least 2 points to fit a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "x values must not all be identical");
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// The log-log slope: fits `ln y = a + b·ln x` and returns the full fit;
/// `slope` is the empirical scaling exponent (`y ~ x^slope`).
///
/// This is how the experiments decide "is uniform AG on the barbell
/// quadratic while TAG is linear": fit the exponent over a geometric sweep
/// of `n` and compare to 2 and 1.
///
/// # Panics
///
/// Panics if any coordinate is non-positive (logs undefined) or fewer than
/// 2 points are given.
#[must_use]
pub fn loglog_slope(points: &[(f64, f64)]) -> LinearFit {
    assert!(
        points.iter().all(|p| p.0 > 0.0 && p.1 > 0.0),
        "log-log fit needs strictly positive coordinates"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|p| (p.0.ln(), p.1.ln())).collect();
    linear_fit(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let fit = linear_fit(&[(1.0, 5.0), (2.0, 7.0), (3.0, 9.0), (4.0, 11.0)]);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                // Deterministic "noise".
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 3.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn quadratic_has_loglog_slope_two() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 5.0 * x * x)
            })
            .collect();
        let fit = loglog_slope(&pts);
        assert!((fit.slope - 2.0).abs() < 1e-9, "slope {}", fit.slope);
    }

    #[test]
    fn linear_has_loglog_slope_one() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = (10 * i) as f64;
                (x, 0.5 * x)
            })
            .collect();
        let fit = loglog_slope(&pts);
        assert!((fit.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_data_r2_is_one_by_convention() {
        let fit = linear_fit(&[(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn one_point_rejected() {
        let _ = linear_fit(&[(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_data_rejected() {
        let _ = linear_fit(&[(1.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn loglog_rejects_nonpositive() {
        let _ = loglog_slope(&[(0.0, 1.0), (1.0, 2.0)]);
    }
}
