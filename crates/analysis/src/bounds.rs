//! Closed-form bounds from the paper and from Haeupler [13].

/// Theorem 1: uniform algebraic gossip stops in `O((k + log n + D)·Δ)`
/// rounds w.h.p. (both time models). This evaluates the bound expression
/// with constant 1 — experiments report the *ratio* measured/bound, which
/// must stay bounded as parameters grow for the theorem's shape to hold.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn uniform_ag_bound(k: usize, n: usize, diameter: u32, max_degree: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    (k as f64 + (n as f64).ln().max(1.0) + f64::from(diameter)) * max_degree as f64
}

/// Theorem 4: TAG stops in `O(k + log n + d(S) + t(S))` rounds w.h.p.,
/// where `t(S)` is the stopping time of the spanning-tree protocol and
/// `d(S)` the diameter of the produced tree.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn tag_bound(k: usize, n: usize, tree_diameter: u32, tree_time: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    k as f64 + (n as f64).ln().max(1.0) + f64::from(tree_diameter) + tree_time
}

/// The trivial lower bounds from the proof of Theorem 3: `k/2` rounds in
/// both models (each round moves ≤ 2n messages), plus `D/2` in the
/// synchronous model (one hop per round). Returns `max(k/2, D/2)` for the
/// synchronous model and `k/2` for the asynchronous one.
#[must_use]
pub fn lower_bound_rounds(k: usize, diameter: u32, synchronous: bool) -> f64 {
    let by_messages = k as f64 / 2.0;
    if synchronous {
        by_messages.max(f64::from(diameter) / 2.0)
    } else {
        by_messages
    }
}

/// Haeupler's bound `O(k/γ + log²n / λ)` [13], where `γ` is a min-cut
/// measure and `λ` a conductance measure of the graph.
///
/// # Panics
///
/// Panics if `gamma` or `lambda` is not positive.
#[must_use]
pub fn haeupler_bound(k: usize, n: usize, gamma: f64, lambda: f64) -> f64 {
    assert!(
        gamma > 0.0 && lambda > 0.0,
        "gamma and lambda must be positive"
    );
    let ln_n = (n as f64).ln().max(1.0);
    k as f64 / gamma + ln_n * ln_n / lambda
}

/// The three graph families of the paper's Table 2, with the `γ` and `λ`
/// values its rows assume and both bound formulas evaluated per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table2Family {
    /// The path graph: `γ = Θ(1/n)`, `λ = Θ(1/n²)` ⇒ Haeupler
    /// `O(k·n/n + n·log²n)` per the paper's normalized column `O(k + n log²n)`.
    Line,
    /// The √n×√n grid: Haeupler column `O(k + √n·log²n)`.
    Grid,
    /// The complete binary tree: Haeupler column `O(k + n·log²n)`.
    BinaryTree,
}

impl Table2Family {
    /// All three families in table order.
    #[must_use]
    pub fn all() -> [Table2Family; 3] {
        [
            Table2Family::Line,
            Table2Family::Grid,
            Table2Family::BinaryTree,
        ]
    }

    /// The family's display name as printed in Table 2.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Table2Family::Line => "Line",
            Table2Family::Grid => "Grid",
            Table2Family::BinaryTree => "Binary Tree",
        }
    }

    /// Haeupler's column of Table 2 (divided-by-n form as printed):
    /// the paper lists `O(k/γ + log²n/λ)/n`.
    #[must_use]
    pub fn haeupler_column(self, k: usize, n: usize) -> f64 {
        let nf = n as f64;
        let ln2 = {
            let l = nf.ln().max(1.0);
            l * l
        };
        match self {
            // O(k + n log^2 n)
            Table2Family::Line => k as f64 + nf * ln2,
            // O(k + sqrt(n) log^2 n)
            Table2Family::Grid => k as f64 + nf.sqrt() * ln2,
            // O(k + n log^2 n)
            Table2Family::BinaryTree => k as f64 + nf * ln2,
        }
    }

    /// This paper's column of Table 2: `O((k + log n + D)·Δ)` with the
    /// family's D and Δ plugged in, simplified as printed.
    #[must_use]
    pub fn our_column(self, k: usize, n: usize) -> f64 {
        let nf = n as f64;
        match self {
            // O(k + n): D = n-1, Delta = 2.
            Table2Family::Line => k as f64 + nf,
            // O(k + sqrt(n)): D = 2(sqrt(n)-1), Delta = 4.
            Table2Family::Grid => k as f64 + nf.sqrt(),
            // O(k + log n): D = O(log n), Delta = 3.
            Table2Family::BinaryTree => k as f64 + nf.ln().max(1.0),
        }
    }

    /// The improvement factor of our bound over Haeupler's for this
    /// family, as the paper's third column reports it.
    #[must_use]
    pub fn improvement_factor(self, k: usize, n: usize) -> f64 {
        self.haeupler_column(k, n) / self.our_column(k, n)
    }

    /// The exact graph parameters `(D, Δ)` of an `n`-node instance.
    #[must_use]
    pub fn params(self, n: usize) -> (u32, usize) {
        match self {
            Table2Family::Line => ((n.saturating_sub(1)) as u32, 2.min(n.saturating_sub(1))),
            Table2Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                ((2 * side.saturating_sub(1)) as u32, 4)
            }
            Table2Family::BinaryTree => {
                // Diameter of a complete binary tree on n nodes ~ 2 log2 n.
                let depth = (usize::BITS - n.leading_zeros()).saturating_sub(1);
                ((2 * depth), 3)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bound_monotone_in_every_parameter() {
        let base = uniform_ag_bound(10, 100, 5, 4);
        assert!(uniform_ag_bound(20, 100, 5, 4) > base);
        assert!(uniform_ag_bound(10, 100, 9, 4) > base);
        assert!(uniform_ag_bound(10, 100, 5, 8) > base);
        assert!(uniform_ag_bound(10, 1000, 5, 4) > base);
    }

    #[test]
    fn tag_bound_adds_tree_terms() {
        let b = tag_bound(10, 100, 6, 25.0);
        assert!((b - (10.0 + (100f64).ln() + 6.0 + 25.0)).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_uses_diameter_only_in_sync() {
        assert_eq!(lower_bound_rounds(4, 100, true), 50.0);
        assert_eq!(lower_bound_rounds(4, 100, false), 2.0);
        assert_eq!(lower_bound_rounds(400, 100, true), 200.0);
    }

    #[test]
    fn table2_improvement_factors_match_paper_shapes() {
        let n = 1 << 14; // 16384
                         // Line: improvement ~ log^2 n for k = O(n).
        let line = Table2Family::Line.improvement_factor(100, n);
        let ln2 = (n as f64).ln().powi(2);
        assert!(
            line > 0.5 * ln2 && line < 2.0 * ln2,
            "line improvement {line}, log^2 n = {ln2}"
        );
        // Grid with k = O(sqrt n): also ~ log^2 n.
        let grid = Table2Family::Grid.improvement_factor(64, n);
        assert!(
            grid > 0.3 * ln2 && grid < 3.0 * ln2,
            "grid improvement {grid}"
        );
        // Binary tree with small k: improvement Omega(n log n / k).
        let k = 16;
        let tree = Table2Family::BinaryTree.improvement_factor(k, n);
        let target = (n as f64) * (n as f64).ln() / k as f64;
        assert!(tree > 0.1 * target, "tree improvement {tree} vs {target}");
    }

    #[test]
    fn family_params_match_known_instances() {
        assert_eq!(Table2Family::Line.params(10), (9, 2));
        let (d, delta) = Table2Family::Grid.params(16);
        assert_eq!((d, delta), (6, 4));
        let (d, delta) = Table2Family::BinaryTree.params(15);
        assert_eq!((d, delta), (6, 3));
    }

    #[test]
    fn haeupler_generic_formula() {
        let b = haeupler_bound(10, 100, 0.5, 0.01);
        let ln_n = (100f64).ln();
        assert!((b - (20.0 + ln_n * ln_n / 0.01)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn haeupler_rejects_zero_gamma() {
        let _ = haeupler_bound(1, 10, 0.0, 1.0);
    }
}
