//! Property-based tests over random graph families.

use ag_graph::{builders, metrics, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 2 of the paper: for any connected graph, the degree sum along
    /// any shortest path is at most 3n.
    #[test]
    fn lemma2_degree_sum_at_most_3n(seed in any::<u64>(), n in 5usize..30, p in 0.15f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(g) = builders::erdos_renyi_connected(n, p, &mut rng) {
            prop_assert!(metrics::max_shortest_path_degree_sum(&g) <= 3 * g.n());
        }
    }

    /// BFS depth from any root is at most the diameter; distances satisfy
    /// the triangle property along tree edges.
    #[test]
    fn bfs_depth_le_diameter(seed in any::<u64>(), n in 4usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(g) = builders::erdos_renyi_connected(n, 0.3, &mut rng) {
            let d = g.diameter();
            for v in 0..g.n() {
                let bfs = g.bfs_tree(v);
                prop_assert!(bfs.depth() <= d);
                for u in 0..g.n() {
                    if let Some(p) = bfs.parent(u) {
                        prop_assert_eq!(bfs.dist(u).unwrap(), bfs.dist(p).unwrap() + 1);
                        prop_assert!(g.has_edge(u, p));
                    }
                }
            }
        }
    }

    /// Any BFS tree of a connected graph is a valid spanning tree of it,
    /// with depth <= tree diameter <= 2 * depth.
    #[test]
    fn bfs_spanning_tree_valid(seed in any::<u64>(), n in 2usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(g) = builders::erdos_renyi_connected(n, 0.35, &mut rng) {
            let tree = g.bfs_tree(0).into_spanning_tree();
            prop_assert!(tree.is_spanning_tree_of(&g));
            let depth = tree.depth();
            let diam = tree.tree_diameter();
            prop_assert!(depth <= diam || depth == 0);
            prop_assert!(diam <= 2 * depth.max(1));
        }
    }

    /// Random regular graphs are d-regular, simple and connected.
    #[test]
    fn random_regular_invariants(seed in any::<u64>(), half_n in 4usize..12, d in 2usize..5) {
        let n = 2 * half_n; // even so n*d is always even
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(g) = builders::random_regular(n, d, &mut rng) {
            prop_assert_eq!(g.min_degree(), d);
            prop_assert_eq!(g.max_degree(), d);
            prop_assert!(g.is_connected());
            prop_assert_eq!(g.num_edges(), n * d / 2);
        }
    }

    /// Handshake lemma: sum of degrees = 2|E|, for arbitrary edge sets.
    #[test]
    fn handshake_lemma(n in 2usize..20, edge_bits in any::<u64>()) {
        let mut edges = Vec::new();
        let mut bit = 0;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if edge_bits & (1 << (bit % 64)) != 0 {
                    edges.push((u, v));
                }
                bit += 1;
                if bit > 200 { break 'outer; }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// Grid diameter is exactly (rows-1)+(cols-1).
    #[test]
    fn grid_diameter_formula(rows in 1usize..7, cols in 1usize..7) {
        let g = builders::grid(rows, cols).unwrap();
        prop_assert_eq!(g.diameter() as usize, rows + cols - 2);
    }

    /// Claim 1 of the paper: constant-max-degree graphs have diameter
    /// Omega(log n); check the explicit form D + 2 >= log_Delta(n).
    #[test]
    fn claim1_diameter_lower_bound(n in 4usize..64) {
        for g in [builders::path(n).unwrap(), builders::binary_tree(n).unwrap()] {
            let delta = g.max_degree() as f64;
            let d = g.diameter() as f64;
            if delta > 1.0 {
                prop_assert!(d + 2.0 >= (n as f64).ln() / delta.ln() - 1e-9,
                    "Claim 1 violated: D={d}, Delta={delta}, n={n}");
            }
        }
    }
}
