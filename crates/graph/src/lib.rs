//! Graph topologies and metrics for gossip analysis.
//!
//! The paper's bounds are parameterized by the number of nodes `n`, the
//! diameter `D` and the maximum degree `Δ`; its evaluation families are the
//! line, grid, binary tree, barbell and complete graphs (Tables 1 and 2).
//! This crate provides:
//!
//! * [`Graph`] — a compact undirected graph with sorted adjacency lists,
//! * [`builders`] — every topology used in the paper plus random families,
//! * BFS / distance machinery ([`Graph::bfs_tree`], [`Graph::diameter`]),
//! * [`SpanningTree`] — rooted parent-pointer trees as produced by the
//!   paper's spanning-tree gossip protocols,
//! * [`metrics`] — degree sums along shortest paths (Lemma 2), cut
//!   boundaries and cut conductance,
//! * [`Topology`] — the (possibly time-varying) neighbor view gossip
//!   protocols read: [`StaticTopology`] is the plain [`Graph`],
//!   [`ScheduledTopology`] applies a deterministic [`ChurnSchedule`]
//!   (random rewires/flips, adversarial bridge cuts and partitions) one
//!   epoch per simulation round.
//!
//! # Examples
//!
//! ```
//! use ag_graph::builders;
//!
//! let g = builders::barbell(10).unwrap(); // two 5-cliques + bridge
//! assert_eq!(g.n(), 10);
//! assert_eq!(g.diameter(), 3);
//! assert_eq!(g.max_degree(), 5);
//! assert!(g.is_connected());
//! ```

pub mod builders;
mod graph;
pub mod metrics;
pub mod seedmix;
mod topology;
mod traversal;
mod tree;

pub use graph::{Graph, GraphError, Neighbors, NodeId};
pub use topology::{ChurnSchedule, ScheduledTopology, StaticTopology, Topology};
pub use traversal::BfsResult;
pub use tree::{SpanningTree, TreeError};
