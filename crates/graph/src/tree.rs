//! Rooted spanning trees with parent pointers.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Error constructing a [`SpanningTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The root had a parent, or a non-root had none.
    BadRoot(String),
    /// Parent pointers contain a cycle or an out-of-range node.
    NotATree(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::BadRoot(m) => write!(f, "bad root: {m}"),
            TreeError::NotATree(m) => write!(f, "not a tree: {m}"),
        }
    }
}

impl Error for TreeError {}

/// A rooted spanning tree over nodes `0..n`, stored as parent pointers.
///
/// This is the artifact a spanning-tree gossip protocol `S` produces: "every
/// node, except a node which is the root, will have a single neighbor called
/// the parent" (Section 2). TAG's Phase 2 then runs algebraic gossip where
/// each node's fixed communication partner is its parent.
///
/// # Examples
///
/// ```
/// use ag_graph::SpanningTree;
///
/// // A path 0 - 1 - 2 rooted at 0.
/// let t = SpanningTree::from_parents(0, vec![None, Some(0), Some(1)]).unwrap();
/// assert_eq!(t.depth(), 2);
/// assert_eq!(t.children(0), &[1]);
/// assert_eq!(t.tree_diameter(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    depth: Vec<u32>,
    children: Vec<Vec<NodeId>>,
}

impl SpanningTree {
    /// Validates parent pointers and builds the tree.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the root has a parent, any other node lacks
    /// one, a parent index is out of range, or the pointers contain a cycle.
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        let n = parent.len();
        if root >= n {
            return Err(TreeError::BadRoot(format!(
                "root {root} out of range for {n} nodes"
            )));
        }
        if parent[root].is_some() {
            return Err(TreeError::BadRoot(format!("root {root} has a parent")));
        }
        for (v, p) in parent.iter().enumerate() {
            if v != root && p.is_none() {
                return Err(TreeError::NotATree(format!(
                    "non-root node {v} has no parent"
                )));
            }
            if let Some(p) = p {
                if *p >= n {
                    return Err(TreeError::NotATree(format!(
                        "parent {p} of node {v} out of range"
                    )));
                }
            }
        }
        // Compute depths iteratively, detecting cycles by depth > n.
        let mut depth = vec![u32::MAX; n];
        depth[root] = 0;
        for v in 0..n {
            // Walk up until a known depth; path length bounded by n.
            let mut chain = Vec::new();
            let mut cur = v;
            let mut steps = 0;
            while depth[cur] == u32::MAX {
                chain.push(cur);
                cur = parent[cur].expect("non-root nodes have parents");
                steps += 1;
                if steps > n {
                    return Err(TreeError::NotATree(format!(
                        "cycle reachable from node {v}"
                    )));
                }
            }
            let mut d = depth[cur];
            for &u in chain.iter().rev() {
                d += 1;
                depth[u] = d;
            }
        }
        let mut children = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(v);
            }
        }
        Ok(SpanningTree {
            root,
            parent,
            depth,
            children,
        })
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` (`None` only for the root).
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Children of `v`, ascending.
    #[must_use]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Depth of node `v` (root = 0).
    #[must_use]
    pub fn node_depth(&self, v: NodeId) -> u32 {
        self.depth[v]
    }

    /// Tree depth `l_max`: the maximum node depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The diameter `d(S)` of the tree *as a graph* (longest path, in
    /// edges). This is the quantity in TAG's bound
    /// `O(k + log n + d(S) + t(S))`.
    ///
    /// Computed by the classic two-pass method via the tree edges.
    #[must_use]
    pub fn tree_diameter(&self) -> u32 {
        // Build adjacency over tree edges and do double BFS.
        let n = self.n();
        if n == 1 {
            return 0;
        }
        let far = |start: NodeId| -> (NodeId, u32) {
            let mut dist = vec![u32::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            let mut best = (start, 0);
            while let Some(u) = queue.pop_front() {
                let push =
                    |v: NodeId,
                     du: u32,
                     dist: &mut Vec<u32>,
                     queue: &mut std::collections::VecDeque<NodeId>| {
                        if dist[v] == u32::MAX {
                            dist[v] = du + 1;
                            queue.push_back(v);
                        }
                    };
                let du = dist[u];
                if du > best.1 {
                    best = (u, du);
                }
                if let Some(p) = self.parent[u] {
                    push(p, du, &mut dist, &mut queue);
                }
                for &c in &self.children[u] {
                    push(c, du, &mut dist, &mut queue);
                }
            }
            best
        };
        let (far_node, _) = far(self.root);
        far(far_node).1
    }

    /// The parent-pointer array (index = node).
    #[must_use]
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// All tree edges `(child, parent)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (v, p)))
    }

    /// Checks that every tree edge is an edge of `g` — i.e. the tree is a
    /// spanning tree *of that graph* (protocol output validation).
    #[must_use]
    pub fn is_spanning_tree_of(&self, g: &crate::graph::Graph) -> bool {
        self.n() == g.n() && self.edges().all(|(u, v)| g.has_edge(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn valid_tree_construction() {
        // Star rooted at 0.
        let t = SpanningTree::from_parents(0, vec![None, Some(0), Some(0), Some(0)]).unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.tree_diameter(), 2);
        assert_eq!(t.edges().count(), 3);
    }

    #[test]
    fn rejects_root_with_parent() {
        let err = SpanningTree::from_parents(0, vec![Some(1), None]).unwrap_err();
        assert!(matches!(err, TreeError::BadRoot(_)));
    }

    #[test]
    fn rejects_orphan() {
        let err = SpanningTree::from_parents(0, vec![None, None]).unwrap_err();
        assert!(matches!(err, TreeError::NotATree(_)));
    }

    #[test]
    fn rejects_cycle() {
        // 1 -> 2 -> 1 cycle detached from root 0... but then 1,2 have
        // parents and 0 is root; the walk from 1 never reaches known depth.
        let err = SpanningTree::from_parents(0, vec![None, Some(2), Some(1)]).unwrap_err();
        assert!(matches!(err, TreeError::NotATree(_)));
    }

    #[test]
    fn rejects_out_of_range_parent() {
        let err = SpanningTree::from_parents(0, vec![None, Some(9)]).unwrap_err();
        assert!(matches!(err, TreeError::NotATree(_)));
    }

    #[test]
    fn path_tree_depth_and_diameter() {
        // 0 <- 1 <- 2 <- 3 rooted at 0.
        let t = SpanningTree::from_parents(0, vec![None, Some(0), Some(1), Some(2)]).unwrap();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.tree_diameter(), 3);
        assert_eq!(t.node_depth(3), 3);
    }

    #[test]
    fn mid_rooted_path_diameter_exceeds_depth() {
        // Path 0-1-2-3-4 rooted at the middle (2): depth 2, diameter 4.
        let t =
            SpanningTree::from_parents(2, vec![Some(1), Some(2), None, Some(2), Some(3)]).unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.tree_diameter(), 4);
    }

    #[test]
    fn bfs_tree_is_spanning_tree_of_its_graph() {
        let g = builders::grid(4, 4).unwrap();
        let t = g.bfs_tree(5).into_spanning_tree();
        assert!(t.is_spanning_tree_of(&g));
        // But not of a disjoint topology.
        let other = builders::path(16).unwrap();
        assert!(!t.is_spanning_tree_of(&other) || t.edges().all(|(u, v)| other.has_edge(u, v)));
    }

    #[test]
    fn single_node_tree() {
        let t = SpanningTree::from_parents(0, vec![None]).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.tree_diameter(), 0);
        assert_eq!(t.children(0), &[] as &[NodeId]);
    }
}
