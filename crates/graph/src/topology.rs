//! Time-varying topologies: the [`Topology`] abstraction and scheduled
//! churn.
//!
//! The paper analyzes algebraic gossip on *static* graphs, but its core
//! robustness argument — any `k` linearly independent equations decode, no
//! matter where they came from — carries over to adversarially *dynamic*
//! networks (Haeupler, "Analyzing network coding gossip made easy"). This
//! module makes that scenario class first-class: protocols read neighbors
//! through a [`Topology`] view instead of a pinned [`Graph`] snapshot, and
//! the simulation engines advance the view once per round.
//!
//! Two implementations:
//!
//! * [`StaticTopology`] (an alias for [`Graph`]) — today's CSR graph. Every
//!   trait method delegates to the corresponding inherent method and epoch
//!   advancement is a no-op, so static runs compile to exactly the code
//!   they ran before the abstraction existed (the golden trajectory hashes
//!   pin this bit-for-bit).
//! * [`ScheduledTopology`] — an epoch-based time-varying graph driven by a
//!   deterministic, seeded [`ChurnSchedule`]: random per-epoch edge
//!   rewires or flips at a configurable rate, plus adversarial schedules
//!   (periodic bridge cuts, alternating partition/heal). Epoch `e`'s view
//!   is a pure function of `(initial graph, schedule, e)`, so seeded runs
//!   reproduce regardless of which engine drives them.
//!
//! # Epoch convention
//!
//! Epoch 0 is the initial graph, untouched. The engines call
//! `Protocol::on_round_start(round)` before round `round` (1-based) and
//! dynamic protocols advance their topology to epoch `round − 1`, so round
//! 1 always runs on the initial graph and churn first bites in round 2.
//!
//! # Examples
//!
//! ```
//! use ag_graph::{builders, ChurnSchedule, ScheduledTopology, Topology};
//!
//! let g = builders::cycle(8).unwrap();
//! let mut topo = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.25, 42));
//! assert_eq!(topo.epoch(), 0);
//! assert_eq!(topo.edge_count(), 8); // epoch 0 is the seed graph
//! topo.advance_to_epoch(5);
//! assert_eq!(topo.epoch(), 5);
//! assert_eq!(topo.edge_count(), 8); // rewires preserve the edge count
//! ```

// Keyed lookup only, never iterated — see lint.toml [rules.hash-iteration].
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, NodeId};

/// A (possibly time-varying) gossip topology: the neighbor view protocols
/// and partner selectors read, plus an epoch clock the engines advance.
///
/// [`Graph`] implements this trait with no-op epoch methods, so every
/// static call site keeps its exact pre-abstraction behavior and cost.
pub trait Topology {
    /// Number of nodes (fixed for the lifetime of the topology — churn
    /// rewires edges, it does not add or remove nodes).
    fn n(&self) -> usize;

    /// Current degree of `v`.
    fn degree(&self, v: NodeId) -> usize;

    /// The `i`-th (0-based) neighbor of `v` in sorted order, under the
    /// current epoch's view.
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId;

    /// True when `(u, v)` is an edge of the current epoch's view.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// The epoch the view currently reflects (0 = initial graph).
    fn epoch(&self) -> u64;

    /// Advances the view to `epoch`, applying every scheduled change in
    /// `(self.epoch(), epoch]`. Calls with `epoch <= self.epoch()` are
    /// no-ops (epochs never rewind); static topologies ignore this
    /// entirely.
    fn advance_to_epoch(&mut self, epoch: u64);

    /// Is the *current* view connected? Default: BFS over the trait's own
    /// neighbor accessors. Construction-time validation only — not a hot
    /// path.
    fn is_connected_now(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = queue.pop() {
            for i in 0..self.degree(v) {
                let u = self.neighbor_at(v, i);
                if !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    queue.push(u);
                }
            }
        }
        reached == n
    }
}

impl Topology for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        Graph::neighbor_at(self, v, i)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }

    #[inline]
    fn epoch(&self) -> u64 {
        0
    }

    #[inline]
    fn advance_to_epoch(&mut self, _epoch: u64) {}

    fn is_connected_now(&self) -> bool {
        self.is_connected()
    }
}

/// The static topology: the plain CSR [`Graph`], unchanged. The alias
/// exists so scenario code can say what it means (`StaticTopology` vs
/// `ScheduledTopology`) without a wrapper type costing anything.
pub type StaticTopology = Graph;

use crate::seedmix::{splitmix64, GOLDEN_GAMMA};

/// What happens to the edge set at each epoch. All variants are
/// deterministic: random ones derive a fresh RNG per epoch from
/// `(seed, epoch)`, adversarial ones are pure functions of the epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnSchedule {
    /// No churn: the dynamic machinery over a fixed edge set (the
    /// differential tests' control lane).
    None,
    /// Each epoch, `round(rate · m)` uniformly random edges are rewired:
    /// one endpoint is kept (fair coin) and the other replaced by a
    /// uniformly random non-adjacent node. Preserves the edge count; may
    /// transiently disconnect the graph or isolate nodes — both are legal
    /// states a dynamic protocol must survive.
    Rewire {
        /// Fraction of the current edge count rewired per epoch.
        rate: f64,
        /// Seed of the per-epoch RNG streams.
        seed: u64,
    },
    /// Each epoch, `count` uniformly random node pairs are flipped: the
    /// edge is removed if present, added if absent. Edge count drifts.
    Flip {
        /// Pairs flipped per epoch.
        count: usize,
        /// Seed of the per-epoch RNG streams.
        seed: u64,
    },
    /// Adversarial bridge cut: `edge` cycles through `up_len` epochs
    /// present then `cut_len` epochs absent (epoch 0 starts an up
    /// window). Aimed at the barbell bridge.
    BridgeCut {
        /// The targeted edge.
        edge: (NodeId, NodeId),
        /// Epochs per window with the edge present.
        up_len: u64,
        /// Epochs per window with the edge cut.
        cut_len: u64,
    },
    /// Adversarial partition/heal: every edge crossing the node cut
    /// `[0, boundary) | [boundary, n)` cycles through `heal_len` epochs
    /// present then `cut_len` epochs removed (epoch 0 starts healed).
    /// Removed edges are stashed and restored verbatim on heal.
    PartitionHeal {
        /// First node of the right-hand side.
        boundary: NodeId,
        /// Epochs per window with the graph healed.
        heal_len: u64,
        /// Epochs per window with the cut edges removed.
        cut_len: u64,
    },
}

impl ChurnSchedule {
    /// [`ChurnSchedule::Rewire`] with validation.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    #[must_use]
    pub fn rewire(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "rewire rate must be in [0, 1], got {rate}"
        );
        ChurnSchedule::Rewire { rate, seed }
    }

    /// [`ChurnSchedule::BridgeCut`] with validation.
    ///
    /// # Panics
    ///
    /// Panics if either window length is zero.
    #[must_use]
    pub fn bridge_cut(edge: (NodeId, NodeId), up_len: u64, cut_len: u64) -> Self {
        assert!(up_len > 0 && cut_len > 0, "window lengths must be positive");
        ChurnSchedule::BridgeCut {
            edge,
            up_len,
            cut_len,
        }
    }

    /// [`ChurnSchedule::PartitionHeal`] with validation.
    ///
    /// # Panics
    ///
    /// Panics if either window length is zero.
    #[must_use]
    pub fn partition_heal(boundary: NodeId, heal_len: u64, cut_len: u64) -> Self {
        assert!(
            heal_len > 0 && cut_len > 0,
            "window lengths must be positive"
        );
        ChurnSchedule::PartitionHeal {
            boundary,
            heal_len,
            cut_len,
        }
    }
}

/// An epoch-based time-varying graph: a seed [`Graph`] plus a
/// [`ChurnSchedule`] applied one epoch at a time.
///
/// Storage is mutable sorted adjacency lists (so [`Topology::neighbor_at`]
/// stays an O(1) indexed load and round-robin partner order stays
/// deterministic) plus an edge list with a position index (so random
/// schedules sample and remove edges in O(1) expected). Per-epoch cost is
/// O(changes · Δ); reads between epochs cost the same as a `Vec`-of-`Vec`
/// graph.
///
/// # Examples
///
/// ```
/// use ag_graph::{builders, ChurnSchedule, ScheduledTopology, Topology};
///
/// // The barbell bridge, cut for 3 epochs out of every 4.
/// let g = builders::barbell(8).unwrap();
/// let mut topo = ScheduledTopology::new(&g, ChurnSchedule::bridge_cut((3, 4), 1, 3));
/// assert!(topo.has_edge(3, 4)); // epoch 0: up
/// topo.advance_to_epoch(2);
/// assert!(!topo.has_edge(3, 4)); // cut window
/// topo.advance_to_epoch(4);
/// assert!(topo.has_edge(3, 4)); // healed again
/// ```
#[derive(Debug, Clone)]
// `edge_pos` is keyed lookup only, never iterated.
#[allow(clippy::disallowed_types)]
pub struct ScheduledTopology {
    /// Sorted neighbor lists of the current epoch's view.
    adj: Vec<Vec<NodeId>>,
    /// Current edges as `(u, v)` with `u < v`, in arbitrary order.
    edges: Vec<(NodeId, NodeId)>,
    /// Position of each edge in `edges` (for O(1) removal).
    edge_pos: HashMap<(NodeId, NodeId), usize>,
    /// Crossing edges removed by an active partition window.
    stash: Vec<(NodeId, NodeId)>,
    partitioned: bool,
    epoch: u64,
    schedule: ChurnSchedule,
}

impl ScheduledTopology {
    /// Wraps `graph` (the epoch-0 view) with `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if a [`ChurnSchedule::BridgeCut`] edge is not an edge of
    /// `graph`, or a [`ChurnSchedule::PartitionHeal`] boundary is not in
    /// `1..n` (both sides must be nonempty).
    #[must_use]
    pub fn new(graph: &Graph, schedule: ChurnSchedule) -> Self {
        match &schedule {
            ChurnSchedule::BridgeCut { edge: (u, v), .. } => {
                assert!(
                    graph.has_edge(*u, *v),
                    "bridge-cut edge ({u}, {v}) is not an edge of the seed graph"
                );
            }
            ChurnSchedule::PartitionHeal { boundary, .. } => {
                assert!(
                    (1..graph.n()).contains(boundary),
                    "partition boundary {boundary} must split {} nodes in two",
                    graph.n()
                );
            }
            _ => {}
        }
        let adj: Vec<Vec<NodeId>> = (0..graph.n())
            .map(|v| graph.neighbors(v).collect())
            .collect();
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let edge_pos = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        ScheduledTopology {
            adj,
            edges,
            edge_pos,
            stash: Vec::new(),
            partitioned: false,
            epoch: 0,
            schedule,
        }
    }

    /// The schedule driving this topology.
    #[must_use]
    pub fn schedule(&self) -> &ChurnSchedule {
        &self.schedule
    }

    /// Number of edges in the current view.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Materializes the current view as a [`Graph`] (diagnostics; O(m)).
    ///
    /// # Panics
    ///
    /// Never — the maintained adjacency always satisfies the `Graph`
    /// invariants.
    #[must_use]
    pub fn snapshot(&self) -> Graph {
        Graph::from_adjacency(self.adj.clone()).expect("maintained adjacency is always valid")
    }

    /// Adds `(u, v)` if absent; true on change.
    fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        if self.edge_pos.contains_key(&key) {
            return false;
        }
        let iu = self.adj[u].binary_search(&v).unwrap_err();
        self.adj[u].insert(iu, v);
        let iv = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(iv, u);
        self.edge_pos.insert(key, self.edges.len());
        self.edges.push(key);
        true
    }

    /// Removes `(u, v)` if present; true on change.
    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = (u.min(v), u.max(v));
        let Some(pos) = self.edge_pos.remove(&key) else {
            return false;
        };
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            self.edge_pos.insert(self.edges[pos], pos);
        }
        let iu = self.adj[u].binary_search(&v).expect("edge present");
        self.adj[u].remove(iu);
        let iv = self.adj[v].binary_search(&u).expect("edge present");
        self.adj[v].remove(iv);
        true
    }

    /// Applies the schedule's changes for `epoch` (called in sequence by
    /// [`Topology::advance_to_epoch`]).
    fn apply_epoch(&mut self, epoch: u64) {
        match self.schedule.clone() {
            ChurnSchedule::None => {}
            ChurnSchedule::Rewire { rate, seed } => {
                let mut rng = epoch_rng(seed, epoch);
                let count = (rate * self.edges.len() as f64).round() as usize;
                let n = self.adj.len();
                for _ in 0..count {
                    if self.edges.is_empty() {
                        break;
                    }
                    let i = rng.gen_range(0..self.edges.len());
                    let (a, b) = self.edges[i];
                    let keep = if rng.gen_bool(0.5) { a } else { b };
                    // A few tries to find a fresh endpoint; dense spots may
                    // reject every sample, in which case the edge stays.
                    for _ in 0..8 {
                        let w = rng.gen_range(0..n);
                        if w != keep && !Topology::has_edge(self, keep, w) {
                            self.remove_edge(a, b);
                            self.add_edge(keep, w);
                            break;
                        }
                    }
                }
            }
            ChurnSchedule::Flip { count, seed } => {
                let mut rng = epoch_rng(seed, epoch);
                let n = self.adj.len();
                for _ in 0..count {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u == v {
                        continue;
                    }
                    if !self.remove_edge(u, v) {
                        self.add_edge(u, v);
                    }
                }
            }
            ChurnSchedule::BridgeCut {
                edge: (u, v),
                up_len,
                cut_len,
            } => {
                if (epoch % (up_len + cut_len)) < up_len {
                    self.add_edge(u, v);
                } else {
                    self.remove_edge(u, v);
                }
            }
            ChurnSchedule::PartitionHeal {
                boundary,
                heal_len,
                cut_len,
            } => {
                let cut = (epoch % (heal_len + cut_len)) >= heal_len;
                if cut && !self.partitioned {
                    let crossing: Vec<(NodeId, NodeId)> = self
                        .edges
                        .iter()
                        .copied()
                        .filter(|&(u, v)| (u < boundary) != (v < boundary))
                        .collect();
                    for &(u, v) in &crossing {
                        self.remove_edge(u, v);
                    }
                    self.stash = crossing;
                    self.partitioned = true;
                } else if !cut && self.partitioned {
                    let stashed = std::mem::take(&mut self.stash);
                    for (u, v) in stashed {
                        self.add_edge(u, v);
                    }
                    self.partitioned = false;
                }
            }
        }
    }
}

/// One independent RNG per `(seed, epoch)` pair: epoch `e`'s changes
/// depend only on `(seed, e)` — never on how many draws earlier epochs
/// consumed.
fn epoch_rng(seed: u64, epoch: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        seed.wrapping_add(epoch.wrapping_mul(GOLDEN_GAMMA)),
    ))
}

impl Topology for ScheduledTopology {
    fn n(&self) -> usize {
        self.adj.len()
    }

    fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        self.adj[v][i]
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.adj.len() && self.adj[u].binary_search(&v).is_ok()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn advance_to_epoch(&mut self, epoch: u64) {
        while self.epoch < epoch {
            self.epoch += 1;
            self.apply_epoch(self.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn graph_implements_topology_statically() {
        let mut g = builders::grid(3, 3).unwrap();
        assert_eq!(Topology::n(&g), 9);
        assert_eq!(Topology::degree(&g, 4), 4);
        assert_eq!(Topology::neighbor_at(&g, 0, 1), 3);
        assert!(Topology::has_edge(&g, 0, 1));
        assert_eq!(g.epoch(), 0);
        g.advance_to_epoch(100); // no-op
        assert_eq!(g.epoch(), 0);
        assert!(g.is_connected_now());
    }

    #[test]
    fn scheduled_none_is_the_seed_graph_forever() {
        let g = builders::barbell(10).unwrap();
        let mut t = ScheduledTopology::new(&g, ChurnSchedule::None);
        t.advance_to_epoch(50);
        assert_eq!(t.epoch(), 50);
        assert_eq!(t.snapshot(), g);
    }

    #[test]
    fn scheduled_matches_graph_view_at_epoch_zero() {
        let g = builders::grid(4, 3).unwrap();
        let t = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.3, 9));
        for v in 0..g.n() {
            assert_eq!(t.degree(v), Graph::degree(&g, v));
            for i in 0..t.degree(v) {
                assert_eq!(t.neighbor_at(v, i), Graph::neighbor_at(&g, v, i));
            }
        }
        assert_eq!(t.edge_count(), g.num_edges());
    }

    /// The invariants every epoch's view must uphold: sorted adjacency,
    /// symmetry, edge list in sync with the lists — `snapshot` re-checks
    /// them all through `Graph::from_adjacency`.
    #[test]
    fn views_stay_valid_under_every_schedule() {
        let g = builders::barbell(12).unwrap();
        let schedules = [
            ChurnSchedule::rewire(0.4, 1),
            ChurnSchedule::Flip { count: 5, seed: 2 },
            ChurnSchedule::bridge_cut((5, 6), 2, 3),
            ChurnSchedule::partition_heal(6, 2, 2),
        ];
        for schedule in schedules {
            let mut t = ScheduledTopology::new(&g, schedule.clone());
            for e in 1..=20 {
                t.advance_to_epoch(e);
                let snap = t.snapshot(); // panics if invariants broke
                assert_eq!(snap.num_edges(), t.edge_count(), "{schedule:?}");
            }
        }
    }

    #[test]
    fn rewire_preserves_edge_count_and_is_deterministic() {
        let g = builders::cycle(20).unwrap();
        let mut a = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.5, 7));
        let mut b = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.5, 7));
        a.advance_to_epoch(10);
        b.advance_to_epoch(10);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.edge_count(), 20);
        // A different seed diverges.
        let mut c = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.5, 8));
        c.advance_to_epoch(10);
        assert_ne!(a.snapshot(), c.snapshot());
        // Rewiring actually changed something.
        assert_ne!(a.snapshot(), g);
    }

    #[test]
    fn advancing_in_steps_equals_advancing_at_once() {
        // Epoch e's view is a function of (graph, schedule, e), not of the
        // advancement pattern — required for Engine/ReferenceEngine
        // differential identity.
        let g = builders::grid(4, 4).unwrap();
        let schedule = ChurnSchedule::Flip { count: 3, seed: 3 };
        let mut stepped = ScheduledTopology::new(&g, schedule.clone());
        for e in 1..=12 {
            stepped.advance_to_epoch(e);
        }
        let mut jumped = ScheduledTopology::new(&g, schedule);
        jumped.advance_to_epoch(12);
        assert_eq!(stepped.snapshot(), jumped.snapshot());
        // Rewinding is a no-op.
        jumped.advance_to_epoch(3);
        assert_eq!(jumped.epoch(), 12);
    }

    #[test]
    fn bridge_cut_windows_follow_the_cycle() {
        let g = builders::barbell(8).unwrap();
        let mut t = ScheduledTopology::new(&g, ChurnSchedule::bridge_cut((3, 4), 2, 3));
        // Cycle of 5: epochs 0,1 up; 2,3,4 cut; 5,6 up; …
        let expect_up = [true, true, false, false, false, true, true, false];
        for (e, &up) in expect_up.iter().enumerate() {
            t.advance_to_epoch(e as u64);
            assert_eq!(t.has_edge(3, 4), up, "epoch {e}");
            assert_eq!(t.has_edge(4, 3), up, "epoch {e} (reversed query)");
        }
    }

    #[test]
    fn partition_heal_restores_crossing_edges_verbatim() {
        let g = builders::grid(4, 4).unwrap();
        let mut t = ScheduledTopology::new(&g, ChurnSchedule::partition_heal(8, 2, 2));
        let before = t.snapshot();
        t.advance_to_epoch(2); // cut window
        assert!(!t.is_connected_now());
        let crossing_gone = t.snapshot().edges().all(|(u, v)| (u < 8) == (v < 8));
        assert!(crossing_gone);
        t.advance_to_epoch(4); // healed window
        assert_eq!(t.snapshot(), before);
        assert!(t.is_connected_now());
    }

    #[test]
    fn flip_toggles_edges() {
        let g = builders::path(6).unwrap();
        let mut t = ScheduledTopology::new(&g, ChurnSchedule::Flip { count: 4, seed: 11 });
        t.advance_to_epoch(6);
        assert_ne!(t.snapshot(), g, "24 flips must change a 5-edge path");
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn bridge_cut_validates_edge() {
        let g = builders::path(4).unwrap();
        let _ = ScheduledTopology::new(&g, ChurnSchedule::bridge_cut((0, 3), 1, 1));
    }

    #[test]
    #[should_panic(expected = "boundary")]
    fn partition_validates_boundary() {
        let g = builders::path(4).unwrap();
        let _ = ScheduledTopology::new(&g, ChurnSchedule::partition_heal(0, 1, 1));
    }

    #[test]
    fn default_bfs_matches_graph_is_connected() {
        let con = builders::lollipop(4, 3).unwrap();
        let t = ScheduledTopology::new(&con, ChurnSchedule::None);
        assert!(t.is_connected_now());
        let dis = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let t2 = ScheduledTopology::new(&dis, ChurnSchedule::None);
        assert!(!t2.is_connected_now());
    }
}
