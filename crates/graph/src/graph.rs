//! The core undirected graph type.

use std::error::Error;
use std::fmt;

/// Index of a node in a [`Graph`] (`0..n`).
pub type NodeId = usize;

/// Error constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The graph size.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(NodeId),
    /// The same undirected edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// A builder was asked for an impossible size (e.g. `n = 0`).
    InvalidSize(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::InvalidSize(msg) => write!(f, "invalid size: {msg}"),
        }
    }
}

impl Error for GraphError {}

/// A simple undirected graph `G_n = (V, E)` with sorted adjacency lists.
///
/// Invariants (enforced at construction): no self-loops, no parallel edges,
/// neighbor lists sorted ascending. Gossip protocols rely on the sorted
/// order for deterministic round-robin neighbor cycling (Definition 2 of
/// the paper: "a fixed, cyclic list of the node's neighbors").
///
/// # Examples
///
/// ```
/// use ag_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops,
    /// duplicate edges, or `n == 0`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidSize(
                "graph needs at least 1 node".into(),
            ));
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        for (u, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                let dup = list
                    .windows(2)
                    .find(|w| w[0] == w[1])
                    .map(|w| w[0])
                    .expect("just checked");
                return Err(GraphError::DuplicateEdge(u, dup));
            }
        }
        Ok(Graph {
            adj,
            num_edges: edges.len(),
        })
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The sorted neighbor list `N(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// The degree `d_v = |N(v)|`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// The maximum degree `Δ`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The minimum degree.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// True when `(u, v)` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// All node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_zero_nodes() {
        assert!(matches!(
            Graph::from_edges(0, &[]),
            Err(GraphError::InvalidSize(_))
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (0, 1)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn isolated_node_has_degree_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn error_display_messages() {
        assert!(GraphError::SelfLoop(3).to_string().contains("self-loop"));
        assert!(GraphError::NodeOutOfRange { node: 5, n: 2 }
            .to_string()
            .contains("out of range"));
    }
}
