//! The core undirected graph type.

use std::error::Error;
use std::fmt;

/// Index of a node in a [`Graph`] (`0..n`).
pub type NodeId = usize;

/// Error constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The graph size.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(NodeId),
    /// The same undirected edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// A builder was asked for an impossible size (e.g. `n = 0`).
    InvalidSize(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::InvalidSize(msg) => write!(f, "invalid size: {msg}"),
        }
    }
}

impl Error for GraphError {}

/// Iterator over a node's sorted neighbor list (see [`Graph::neighbors`]).
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: NeighborsInner<'a>,
}

#[derive(Debug, Clone)]
enum NeighborsInner<'a> {
    Csr(std::slice::Iter<'a, NodeId>),
    Complete {
        next: NodeId,
        skip: NodeId,
        n: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.inner {
            NeighborsInner::Csr(it) => it.next().copied(),
            NeighborsInner::Complete { next, skip, n } => {
                if next == skip {
                    *next += 1;
                }
                if *next >= *n {
                    return None;
                }
                let v = *next;
                *next += 1;
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            NeighborsInner::Csr(it) => it.size_hint(),
            NeighborsInner::Complete { next, skip, n } => {
                let remaining = (n - next.min(n)).saturating_sub(usize::from(next <= skip));
                (remaining, Some(remaining))
            }
        }
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// A simple undirected graph `G_n = (V, E)` with sorted adjacency lists.
///
/// Invariants (enforced at construction): no self-loops, no parallel edges,
/// neighbor lists sorted ascending. Gossip protocols rely on the sorted
/// order for deterministic round-robin neighbor cycling (Definition 2 of
/// the paper: "a fixed, cyclic list of the node's neighbors").
///
/// Storage is CSR (compressed sparse row): one flat target array plus
/// per-node offsets. [`Graph::neighbor_at`] — the innermost call of every
/// partner selection, at `n` calls per synchronous round — is a single
/// bounds-checked load from contiguous memory instead of a pointer chase
/// through per-node heap `Vec`s. The complete graph additionally has an
/// *implicit* representation ([`Graph::complete`]): `N(v)` is computed
/// arithmetically, so `K_n` costs O(1) memory at any `n` and a uniform
/// partner pick touches no adjacency memory at all — without it, `K_n` at
/// n = 10⁵ would need an ~80 GB target array.
///
/// # Examples
///
/// ```
/// use ag_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
/// assert_eq!(g.neighbor_at(1, 1), 2);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    repr: Repr,
    num_edges: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// CSR: `targets[offsets[v]..offsets[v + 1]]` is the sorted `N(v)`.
    Csr {
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
    },
    /// The complete graph `K_n`, with arithmetic adjacency.
    Complete { n: usize },
}

/// Equality is *semantic* — same node count and same edge set — not
/// representational: a CSR-built `K_n` equals the implicit
/// [`Graph::complete`] `K_n`. (A simple graph on `n` nodes with
/// `n·(n−1)/2` edges is necessarily complete, so the cross-representation
/// case is O(1).)
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Csr { .. }, Repr::Csr { .. })
            | (Repr::Complete { .. }, Repr::Complete { .. }) => self.repr == other.repr,
            _ => {
                self.n() == other.n() && {
                    let n = self.n();
                    self.num_edges == n * (n - 1) / 2 && other.num_edges == self.num_edges
                }
            }
        }
    }
}

impl Eq for Graph {}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops,
    /// duplicate edges, or `n == 0`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidSize(
                "graph needs at least 1 node".into(),
            ));
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        for (u, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                let dup = list
                    .windows(2)
                    .find(|w| w[0] == w[1])
                    .map(|w| w[0])
                    .expect("just checked");
                return Err(GraphError::DuplicateEdge(u, dup));
            }
        }
        Ok(Self::from_validated_lists(adj, edges.len()))
    }

    /// Flattens validated sorted adjacency lists into the CSR layout.
    fn from_validated_lists(adj: Vec<Vec<NodeId>>, num_edges: usize) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        for list in adj {
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        Graph {
            repr: Repr::Csr { offsets, targets },
            num_edges,
        }
    }

    /// The complete graph `K_n` in the implicit O(1)-memory representation:
    /// adjacency is computed arithmetically (`N(v) = {0..n} \ {v}`, sorted),
    /// so `K_n` is cheap at any `n` and partner picks touch no memory.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] for `n == 0`.
    pub fn complete(n: usize) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidSize(
                "graph needs at least 1 node".into(),
            ));
        }
        Ok(Graph {
            repr: Repr::Complete { n },
            num_edges: n * (n - 1) / 2,
        })
    }

    /// Builds a graph directly from per-node adjacency lists, skipping the
    /// intermediate edge list — the constructor for dense families at
    /// scale (a complete graph on 10⁴ nodes has ~5·10⁷ edges; materializing
    /// them as an edge list doubles peak memory and construction time).
    ///
    /// The same invariants as [`Graph::from_edges`] are enforced, in
    /// O(n + m + m·log Δ): every list must be strictly ascending (sorted,
    /// no duplicates), contain no self-reference, stay in range, and be
    /// symmetric (`v ∈ adj[u] ⇔ u ∈ adj[v]`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on a violated invariant, mapped onto the
    /// same variants `from_edges` uses (`DuplicateEdge` doubles as the
    /// unsorted/asymmetric report, naming the offending pair).
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, GraphError> {
        let n = adj.len();
        if n == 0 {
            return Err(GraphError::InvalidSize(
                "graph needs at least 1 node".into(),
            ));
        }
        let mut degree_sum = 0usize;
        for (u, list) in adj.iter().enumerate() {
            degree_sum += list.len();
            for (i, &v) in list.iter().enumerate() {
                if v >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if v == u {
                    return Err(GraphError::SelfLoop(u));
                }
                if i > 0 && list[i - 1] >= v {
                    return Err(GraphError::DuplicateEdge(u, v));
                }
                // Symmetry: the mirror entry must exist.
                if adj[v].binary_search(&u).is_err() {
                    return Err(GraphError::DuplicateEdge(u.min(v), u.max(v)));
                }
            }
        }
        let num_edges = degree_sum / 2;
        Ok(Self::from_validated_lists(adj, num_edges))
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        match &self.repr {
            Repr::Csr { offsets, .. } => offsets.len() - 1,
            Repr::Complete { n } => *n,
        }
    }

    /// Number of undirected edges `|E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterates the sorted neighbor list `N(v)`.
    ///
    /// The representation is dispatched once: CSR yields a plain slice
    /// walk, the implicit complete graph counts `0..n` skipping `v` — so
    /// whole-adjacency traversals (BFS, [`Graph::edges`]) pay no
    /// per-element dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let inner = match &self.repr {
            Repr::Csr { offsets, targets } => {
                NeighborsInner::Csr(targets[offsets[v]..offsets[v + 1]].iter())
            }
            Repr::Complete { n } => {
                assert!(v < *n, "node out of range");
                NeighborsInner::Complete {
                    next: 0,
                    skip: v,
                    n: *n,
                }
            }
        };
        Neighbors { inner }
    }

    /// The `i`-th (0-based) neighbor of `v` in sorted order — the O(1)
    /// primitive partner selection is built on. Implicit `K_n` resolves it
    /// arithmetically; CSR with one contiguous load.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `i >= degree(v)`.
    #[must_use]
    pub fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        match &self.repr {
            Repr::Csr { offsets, targets } => {
                let (start, end) = (offsets[v], offsets[v + 1]);
                assert!(i < end - start, "neighbor index out of range");
                targets[start + i]
            }
            Repr::Complete { n } => {
                assert!(v < *n && i < *n - 1, "neighbor index out of range");
                // N(v) sorted is 0..v then v+1..n.
                if i < v {
                    i
                } else {
                    i + 1
                }
            }
        }
    }

    /// The degree `d_v = |N(v)|`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        match &self.repr {
            Repr::Csr { offsets, .. } => offsets[v + 1] - offsets[v],
            Repr::Complete { n } => {
                assert!(v < *n, "node out of range");
                *n - 1
            }
        }
    }

    /// The maximum degree `Δ`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        match &self.repr {
            Repr::Csr { .. } => (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0),
            Repr::Complete { n } => *n - 1,
        }
    }

    /// The minimum degree.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        match &self.repr {
            Repr::Csr { .. } => (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0),
            Repr::Complete { n } => *n - 1,
        }
    }

    /// True when `(u, v)` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match &self.repr {
            Repr::Csr { offsets, targets } => {
                u < self.n()
                    && targets[offsets[u]..offsets[u + 1]]
                        .binary_search(&v)
                        .is_ok()
            }
            Repr::Complete { n } => u < *n && v < *n && u != v,
        }
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// All node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_zero_nodes() {
        assert!(matches!(
            Graph::from_edges(0, &[]),
            Err(GraphError::InvalidSize(_))
        ));
    }

    #[test]
    fn equality_is_semantic_across_representations() {
        // An edge-built K_4 (CSR) equals the implicit K_4.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let csr = Graph::from_edges(4, &edges).unwrap();
        let implicit = Graph::complete(4).unwrap();
        assert_eq!(csr, implicit);
        assert_eq!(implicit, csr);
        // …but a K_4 is not a K_5, and not a path.
        assert_ne!(implicit, Graph::complete(5).unwrap());
        assert_ne!(
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap(),
            implicit
        );
    }

    #[test]
    fn implicit_complete_matches_csr_adjacency() {
        let implicit = Graph::complete(6).unwrap();
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let csr = Graph::from_edges(6, &edges).unwrap();
        assert_eq!(implicit.num_edges(), 15);
        for v in 0..6 {
            assert_eq!(implicit.degree(v), 5);
            let imp: Vec<_> = implicit.neighbors(v).collect();
            let exp: Vec<_> = csr.neighbors(v).collect();
            assert_eq!(imp, exp, "N({v}) diverged");
            assert_eq!(implicit.neighbors(v).len(), 5);
            for (i, &u) in exp.iter().enumerate() {
                assert_eq!(implicit.neighbor_at(v, i), u);
            }
        }
        assert_eq!(
            implicit.edges().collect::<Vec<_>>(),
            csr.edges().collect::<Vec<_>>()
        );
        assert!(implicit.has_edge(0, 5) && !implicit.has_edge(3, 3));
        assert!(implicit.is_connected());
        assert_eq!(implicit.diameter(), 1);
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let edges = [(0, 1), (2, 1), (3, 0), (2, 3)];
        let via_edges = Graph::from_edges(4, &edges).unwrap();
        let via_adj =
            Graph::from_adjacency(vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![0, 2]]).unwrap();
        assert_eq!(via_edges, via_adj);
        assert_eq!(via_adj.num_edges(), 4);
    }

    #[test]
    fn from_adjacency_rejects_invariant_violations() {
        // Empty.
        assert!(matches!(
            Graph::from_adjacency(vec![]),
            Err(GraphError::InvalidSize(_))
        ));
        // Out of range.
        assert_eq!(
            Graph::from_adjacency(vec![vec![2], vec![0]]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
        // Self-loop.
        assert_eq!(
            Graph::from_adjacency(vec![vec![0, 1], vec![0]]),
            Err(GraphError::SelfLoop(0))
        );
        // Unsorted list.
        assert!(Graph::from_adjacency(vec![vec![2, 1], vec![0], vec![0]]).is_err());
        // Duplicate entry.
        assert!(Graph::from_adjacency(vec![vec![1, 1], vec![0]]).is_err());
        // Asymmetric: 0 lists 1, but 1 does not list 0.
        assert_eq!(
            Graph::from_adjacency(vec![vec![1], vec![]]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (0, 1)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn isolated_node_has_degree_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn error_display_messages() {
        assert!(GraphError::SelfLoop(3).to_string().contains("self-loop"));
        assert!(GraphError::NodeOutOfRange { node: 5, n: 2 }
            .to_string()
            .contains("out of range"));
    }
}
