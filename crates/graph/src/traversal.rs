//! Breadth-first search, distances, diameter, connectivity.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};
use crate::tree::SpanningTree;

/// The result of a BFS from a root: parents, distances, visit order.
///
/// The proofs of Theorems 1 and 2 start by running BFS from an arbitrary
/// node `v` to obtain "a directed shortest path spanning tree `T_n` rooted
/// at `v`" whose depth `l_max` is at most the diameter `D`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    dist: Vec<Option<u32>>,
    order: Vec<NodeId>,
}

impl BfsResult {
    /// The BFS root.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` in the BFS tree (`None` for the root and for
    /// unreachable nodes).
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Hop distance from the root (`None` if unreachable).
    #[must_use]
    pub fn dist(&self, v: NodeId) -> Option<u32> {
        self.dist[v]
    }

    /// Nodes in visit order (root first). Unreachable nodes are absent.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes (including the root).
    #[must_use]
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Depth of the BFS tree (`l_max` in the paper): the largest distance.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }

    /// The shortest path from the root to `v` (inclusive), or `None` if
    /// unreachable.
    #[must_use]
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Converts into a [`SpanningTree`] (requires the graph was connected).
    ///
    /// # Panics
    ///
    /// Panics if some node was unreachable.
    #[must_use]
    pub fn into_spanning_tree(self) -> SpanningTree {
        assert_eq!(
            self.reached(),
            self.parent.len(),
            "BFS did not reach every node; graph is disconnected"
        );
        SpanningTree::from_parents(self.root, self.parent)
            .expect("BFS parents always form a valid tree")
    }
}

impl Graph {
    /// BFS from `root`, producing the shortest-path tree.
    ///
    /// # Panics
    ///
    /// Panics if `root >= n`.
    #[must_use]
    pub fn bfs_tree(&self, root: NodeId) -> BfsResult {
        assert!(root < self.n(), "root out of range");
        let n = self.n();
        let mut parent = vec![None; n];
        let mut dist = vec![None; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        dist[root] = Some(0);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let du = dist[u].expect("queued nodes have distances");
            for v in self.neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        BfsResult {
            root,
            parent,
            dist,
            order,
        }
    }

    /// True when every node is reachable from node 0.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.bfs_tree(0).reached() == self.n()
    }

    /// The eccentricity of `v`: the largest hop distance from `v`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (eccentricity undefined).
    #[must_use]
    pub fn eccentricity(&self, v: NodeId) -> u32 {
        let bfs = self.bfs_tree(v);
        assert_eq!(
            bfs.reached(),
            self.n(),
            "eccentricity undefined on a disconnected graph"
        );
        bfs.depth()
    }

    /// The exact diameter `D` via all-pairs BFS (`O(n·m)`).
    ///
    /// Fine for simulation-scale graphs (n up to a few thousand).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        (0..self.n())
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// Hop distance between two nodes, or `None` if disconnected.
    #[must_use]
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.bfs_tree(u).dist(v)
    }

    /// The shortest path between two nodes (inclusive), or `None`.
    #[must_use]
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.bfs_tree(u).path_to(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = builders::path(5).unwrap();
        let bfs = g.bfs_tree(0);
        for v in 0..5 {
            assert_eq!(bfs.dist(v), Some(v as u32));
        }
        assert_eq!(bfs.depth(), 4);
        assert_eq!(bfs.parent(3), Some(2));
        assert_eq!(bfs.parent(0), None);
        assert_eq!(bfs.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_depth_at_most_diameter() {
        for g in [
            builders::grid(4, 5).unwrap(),
            builders::barbell(12).unwrap(),
            builders::binary_tree(31).unwrap(),
            builders::hypercube(4).unwrap(),
        ] {
            let d = g.diameter();
            for v in 0..g.n() {
                assert!(g.bfs_tree(v).depth() <= d);
            }
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.distance(0, 2), None);
        assert_eq!(g.shortest_path(0, 3), None);
        let bfs = g.bfs_tree(0);
        assert_eq!(bfs.reached(), 2);
        assert_eq!(bfs.dist(2), None);
    }

    #[test]
    fn shortest_path_length_matches_distance() {
        let g = builders::grid(5, 5).unwrap();
        for (u, v) in [(0, 24), (3, 20), (7, 13)] {
            let d = g.distance(u, v).unwrap();
            let p = g.shortest_path(u, v).unwrap();
            assert_eq!(p.len() as u32, d + 1);
            assert_eq!(p[0], u);
            assert_eq!(*p.last().unwrap(), v);
            // Consecutive path nodes must be adjacent.
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn into_spanning_tree_valid() {
        let g = builders::barbell(10).unwrap();
        let tree = g.bfs_tree(3).into_spanning_tree();
        assert_eq!(tree.root(), 3);
        assert_eq!(tree.n(), 10);
        assert!(tree.depth() <= g.diameter());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn into_spanning_tree_panics_when_disconnected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let _ = g.bfs_tree(0).into_spanning_tree();
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 0);
        assert_eq!(g.eccentricity(0), 0);
    }
}
