//! Graph metrics used by the paper's analysis.
//!
//! * [`degree_sum_along_path`] / [`max_shortest_path_degree_sum`] — the
//!   quantity of Lemma 2: "the sum of the degrees of the nodes along any
//!   shortest path between any two nodes is at most 3n". This drives the
//!   `O(n)` bound for BRR broadcast (Theorem 5).
//! * [`cut_boundary`] / [`cut_conductance`] — cut-based connectivity
//!   measures; the barbell's single bridge edge is the canonical low-
//!   conductance cut that makes uniform gossip slow.

// `HashSet` node sets are fine here: every consumer is either keyed
// (`contains`) or order-independent (waived sum in `volume`).
#![allow(clippy::disallowed_types)]

use std::collections::HashSet;

use crate::graph::{Graph, NodeId};

/// Sum of degrees of the nodes on a given path (inclusive of endpoints).
///
/// # Panics
///
/// Panics if the path is empty or contains an out-of-range node.
#[must_use]
pub fn degree_sum_along_path(g: &Graph, path: &[NodeId]) -> usize {
    assert!(!path.is_empty(), "path must be non-empty");
    path.iter().map(|&v| g.degree(v)).sum()
}

/// The maximum, over all ordered pairs `(u, v)`, of the degree sum along
/// *the BFS shortest path* from `u` to `v`.
///
/// Lemma 2 proves this is at most `3n` for any connected graph. `O(n²·m)`
/// in the worst case — use on simulation-scale graphs.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn max_shortest_path_degree_sum(g: &Graph) -> usize {
    let mut best = 0;
    for u in 0..g.n() {
        let bfs = g.bfs_tree(u);
        assert_eq!(bfs.reached(), g.n(), "graph must be connected");
        for v in 0..g.n() {
            let path = bfs.path_to(v).expect("connected");
            best = best.max(degree_sum_along_path(g, &path));
        }
    }
    best
}

/// Number of edges crossing the cut `(set, V \ set)`.
#[must_use]
pub fn cut_boundary(g: &Graph, set: &HashSet<NodeId>) -> usize {
    g.edges()
        .filter(|&(u, v)| set.contains(&u) != set.contains(&v))
        .count()
}

/// Volume of a node set: the sum of its degrees.
#[must_use]
pub fn volume(g: &Graph, set: &HashSet<NodeId>) -> usize {
    // ag-lint: allow(hash-iteration) — a commutative sum over degrees;
    // the result is independent of iteration order.
    set.iter().map(|&v| g.degree(v)).sum()
}

/// Conductance of the cut `(set, V \ set)`:
/// `|∂set| / min(vol(set), vol(V\set))`.
///
/// Returns `None` when either side has zero volume (degenerate cut).
#[must_use]
pub fn cut_conductance(g: &Graph, set: &HashSet<NodeId>) -> Option<f64> {
    let total: usize = (0..g.n()).map(|v| g.degree(v)).sum();
    let vol_s = volume(g, set);
    let vol_rest = total - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        return None;
    }
    Some(cut_boundary(g, set) as f64 / denom as f64)
}

/// A cheap upper bound on the graph conductance `Φ(G)`: the minimum cut
/// conductance over BFS-ball sweeps from every node.
///
/// For the barbell this finds the bridge cut exactly; for expanders it
/// stays `Ω(1)`. (Exact conductance is NP-hard; a sweep heuristic is the
/// standard substitute and is only used for reporting, never inside a
/// protocol.)
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn conductance_upper_bound(g: &Graph) -> f64 {
    assert!(g.n() >= 2, "conductance needs at least 2 nodes");
    let mut best = f64::INFINITY;
    for start in 0..g.n() {
        let bfs = g.bfs_tree(start);
        let mut set = HashSet::new();
        for &v in bfs.order() {
            set.insert(v);
            if set.len() == g.n() {
                break;
            }
            if let Some(phi) = cut_conductance(g, &set) {
                best = best.min(phi);
            }
        }
    }
    best
}

/// The global minimum edge cut of a connected graph, by the Stoer–Wagner
/// algorithm (`O(n³)` with the simple selection step — fine at simulation
/// scale).
///
/// This is the `γ` (min-cut) quantity in Haeupler's bound
/// `O(k/γ + log²n/λ)` that the paper's Table 2 compares against: the line
/// and the barbell have `γ = 1`, the complete graph `γ = n − 1`.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes or is disconnected.
#[must_use]
pub fn global_min_cut(g: &Graph) -> usize {
    assert!(g.n() >= 2, "min cut needs at least 2 nodes");
    assert!(g.is_connected(), "min cut of a disconnected graph is 0");
    // Weighted adjacency matrix that Stoer-Wagner contracts in place.
    let n = g.n();
    let mut w = vec![vec![0u64; n]; n];
    for (u, v) in g.edges() {
        w[u][v] = 1;
        w[v][u] = 1;
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum-adjacency search over the active super-nodes.
        let m = active.len();
        let mut weight_to_a = vec![0u64; m]; // connectivity into the A set
        let mut in_a = vec![false; m];
        let mut prev = 0usize;
        let mut last = 0usize;
        for _ in 0..m {
            let mut pick = None;
            for (i, &added) in in_a.iter().enumerate() {
                if !added && pick.is_none_or(|p: usize| weight_to_a[i] > weight_to_a[p]) {
                    pick = Some(i);
                }
            }
            let s = pick.expect("some node remains");
            in_a[s] = true;
            prev = last;
            last = s;
            for i in 0..m {
                if !in_a[i] {
                    weight_to_a[i] += w[active[s]][active[i]];
                }
            }
        }
        // Cut-of-the-phase: `last` alone vs the rest.
        best = best.min(weight_to_a[last]);
        // Contract `last` into `prev`.
        let (lp, ll) = (active[prev], active[last]);
        // Indexing is deliberate: the body writes both w[lp][i] and
        // w[i][lp], which no iterator borrow allows.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            w[lp][i] += w[ll][i];
            w[i][lp] = w[lp][i];
        }
        w[lp][lp] = 0;
        active.remove(last);
    }
    usize::try_from(best).expect("cut fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_sum_on_path_graph() {
        let g = builders::path(5).unwrap();
        // Path 0..4: degrees 1,2,2,2,1 -> sum over the whole path = 8 <= 15.
        let p = g.shortest_path(0, 4).unwrap();
        assert_eq!(degree_sum_along_path(&g, &p), 8);
        assert!(degree_sum_along_path(&g, &p) <= 3 * g.n());
    }

    #[test]
    fn lemma2_holds_on_fixed_families() {
        for g in [
            builders::path(20).unwrap(),
            builders::cycle(15).unwrap(),
            builders::complete(12).unwrap(),
            builders::grid(4, 5).unwrap(),
            builders::barbell(14).unwrap(),
            builders::binary_tree(31).unwrap(),
            builders::star(16).unwrap(),
            builders::hypercube(4).unwrap(),
            builders::lollipop(8, 6).unwrap(),
        ] {
            let m = max_shortest_path_degree_sum(&g);
            assert!(
                m <= 3 * g.n(),
                "Lemma 2 violated: max degree sum {m} > 3n = {}",
                3 * g.n()
            );
        }
    }

    #[test]
    fn lemma2_holds_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let g = builders::erdos_renyi_connected(25, 0.2, &mut rng).unwrap();
            assert!(max_shortest_path_degree_sum(&g) <= 3 * g.n());
            let r = builders::random_regular(20, 4, &mut rng).unwrap();
            assert!(max_shortest_path_degree_sum(&r) <= 3 * r.n());
        }
    }

    #[test]
    fn barbell_bridge_cut() {
        let g = builders::barbell(10).unwrap();
        let left: HashSet<NodeId> = (0..5).collect();
        assert_eq!(cut_boundary(&g, &left), 1);
        // vol(left) = 4*4 + 5 = 21; conductance = 1/21.
        let phi = cut_conductance(&g, &left).unwrap();
        assert!((phi - 1.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_bound_small_on_barbell_large_on_complete() {
        let barbell = builders::barbell(16).unwrap();
        let complete = builders::complete(16).unwrap();
        let phi_b = conductance_upper_bound(&barbell);
        let phi_c = conductance_upper_bound(&complete);
        assert!(phi_b < 0.05, "barbell conductance bound {phi_b} too large");
        assert!(phi_c > 0.3, "complete conductance bound {phi_c} too small");
    }

    #[test]
    fn degenerate_cut_returns_none() {
        let g = builders::path(3).unwrap();
        assert_eq!(cut_conductance(&g, &HashSet::new()), None);
        let all: HashSet<NodeId> = (0..3).collect();
        assert_eq!(cut_conductance(&g, &all), None);
    }

    #[test]
    fn min_cut_known_families() {
        assert_eq!(global_min_cut(&builders::path(8).unwrap()), 1);
        assert_eq!(global_min_cut(&builders::cycle(8).unwrap()), 2);
        assert_eq!(global_min_cut(&builders::complete(7).unwrap()), 6);
        assert_eq!(global_min_cut(&builders::barbell(12).unwrap()), 1);
        assert_eq!(global_min_cut(&builders::binary_tree(15).unwrap()), 1);
        assert_eq!(global_min_cut(&builders::hypercube(4).unwrap()), 4);
        assert_eq!(global_min_cut(&builders::grid(3, 5).unwrap()), 2);
        assert_eq!(global_min_cut(&builders::star(6).unwrap()), 1);
    }

    #[test]
    fn min_cut_bounded_by_min_degree() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = builders::erdos_renyi_connected(18, 0.3, &mut rng).unwrap();
            assert!(global_min_cut(&g) <= g.min_degree());
            assert!(global_min_cut(&g) >= 1);
        }
    }

    #[test]
    fn min_cut_two_nodes() {
        let g = builders::path(2).unwrap();
        assert_eq!(global_min_cut(&g), 1);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn min_cut_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let _ = global_min_cut(&g);
    }

    #[test]
    fn volume_counts_degrees() {
        let g = builders::star(5).unwrap();
        let hub: HashSet<NodeId> = [0].into_iter().collect();
        assert_eq!(volume(&g, &hub), 4);
        let leaves: HashSet<NodeId> = (1..5).collect();
        assert_eq!(volume(&g, &leaves), 4);
        assert_eq!(cut_boundary(&g, &hub), 4);
    }
}
