//! Topology builders: every graph family the paper evaluates, plus random
//! families for property tests and ablations.
//!
//! All builders return [`Result<Graph, GraphError>`] and reject impossible
//! sizes instead of clamping silently.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, GraphError, NodeId};

/// The path ("line") graph `P_n`: constant `Δ = 2`, diameter `n − 1`.
///
/// The line is the first row of the paper's Table 2.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n == 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges)
}

/// The cycle `C_n`: 2-regular, diameter `⌊n/2⌋`. Requires `n ≥ 3`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidSize(format!(
            "cycle needs n >= 3, got {n}"
        )));
    }
    let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// The complete graph `K_n`: `Δ = n − 1`, diameter 1.
///
/// Uniform algebraic gossip on `K_n` is the setting of Deb et al.
///
/// Uses [`Graph::complete`], the implicit O(1)-memory representation —
/// the stopping-time sweeps instantiate `K_n` up to `n = 10⁵`, where a
/// materialized adjacency (~10¹⁰ entries) could not exist.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    Graph::complete(n)
}

/// The `rows × cols` grid: constant `Δ = 4`, diameter `rows + cols − 2`.
///
/// The grid is the second row of the paper's Table 2 (with `n = rows·cols`,
/// diameter `Θ(√n)` when square).
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidSize(format!(
            "grid needs positive dimensions, got {rows}x{cols}"
        )));
    }
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The `rows × cols` torus (wrap-around grid): 4-regular. Requires both
/// dimensions `≥ 3` so no parallel edges arise from the wrap.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidSize(format!(
            "torus needs dimensions >= 3, got {rows}x{cols}"
        )));
    }
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// The complete binary tree on `n` nodes (heap-indexed): `Δ ≤ 3`, diameter
/// `Θ(log n)`. Third row of the paper's Table 2.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n == 0`.
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    d_ary_tree(n, 2)
}

/// The complete `d`-ary tree on `n` nodes (heap-indexed).
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n == 0` or `d == 0`.
pub fn d_ary_tree(n: usize, d: usize) -> Result<Graph, GraphError> {
    if d == 0 {
        return Err(GraphError::InvalidSize("d-ary tree needs d >= 1".into()));
    }
    let mut edges = Vec::new();
    for v in 1..n {
        let parent = (v - 1) / d;
        edges.push((parent, v));
    }
    Graph::from_edges(n, &edges)
}

/// The star `K_{1,n−1}`: hub 0, diameter 2, `Δ = n − 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n == 0`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// The barbell graph: two cliques of `⌊n/2⌋` and `⌈n/2⌉` nodes joined by a
/// single bridge edge.
///
/// This is the paper's running worst case: uniform algebraic gossip needs
/// `Ω(n²)` rounds on it, while TAG finishes in `Θ(n)` — "a speedup ratio of
/// n". Requires `n ≥ 4` so both sides are genuine cliques.
///
/// Nodes `0..⌊n/2⌋` form the left clique, the rest the right clique; the
/// bridge is `(⌊n/2⌋ − 1, ⌊n/2⌋)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `n < 4`.
pub fn barbell(n: usize) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(GraphError::InvalidSize(format!(
            "barbell needs n >= 4, got {n}"
        )));
    }
    let half = n / 2;
    let mut edges = Vec::new();
    for u in 0..half {
        for v in (u + 1)..half {
            edges.push((u, v));
        }
    }
    for u in half..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    edges.push((half - 1, half));
    Graph::from_edges(n, &edges)
}

/// The lollipop graph: a clique of `clique` nodes with a path of `tail`
/// nodes attached. Another classic bottleneck family.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `clique < 2` or `tail == 0`.
pub fn lollipop(clique: usize, tail: usize) -> Result<Graph, GraphError> {
    if clique < 2 || tail == 0 {
        return Err(GraphError::InvalidSize(format!(
            "lollipop needs clique >= 2 and tail >= 1, got {clique}, {tail}"
        )));
    }
    let n = clique + tail;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    // Path hanging off node clique-1.
    for i in 0..tail {
        let a = if i == 0 { clique - 1 } else { clique + i - 1 };
        edges.push((a, clique + i));
    }
    Graph::from_edges(n, &edges)
}

/// The hypercube on `2^dim` nodes: `Δ = dim = log₂ n`, diameter `dim`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for `dim == 0` or `dim > 20`.
pub fn hypercube(dim: u32) -> Result<Graph, GraphError> {
    if dim == 0 || dim > 20 {
        return Err(GraphError::InvalidSize(format!(
            "hypercube needs 1 <= dim <= 20, got {dim}"
        )));
    }
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1 << b);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A connected Erdős–Rényi graph `G(n, p)`: edges sampled independently,
/// retried (up to 100 attempts) until connected.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n == 0`, `p` is not in `[0, 1]`,
/// or no connected sample was found (p too small for this n).
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidSize("G(n,p) needs n >= 1".into()));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidSize(format!(
            "edge probability must be in [0,1], got {p}"
        )));
    }
    for _ in 0..100 {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidSize(format!(
        "no connected G({n}, {p}) sample in 100 attempts"
    )))
}

/// A random `d`-regular graph via the pairing (configuration) model,
/// resampled until simple and connected. Random regular graphs are
/// expanders w.h.p. — the "good" end of the spectrum for uniform gossip.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if `n·d` is odd, `d >= n`, or no
/// simple connected sample was found in 200 attempts.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 || d == 0 || d >= n || !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidSize(format!(
            "random_regular needs n*d even and 0 < d < n, got n={n}, d={d}"
        )));
    }
    'attempt: for _ in 0..200 {
        // Pairing model: n*d half-edges ("stubs"), shuffled and paired.
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut edges = Vec::with_capacity(n * d / 2);
        // Insert-only duplicate-edge probe: order is never observed.
        #[allow(clippy::disallowed_types)]
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt; // self-loop: resample
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                continue 'attempt; // parallel edge: resample
            }
            edges.push(key);
        }
        let g = Graph::from_edges(n, &edges)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidSize(format!(
        "no simple connected {d}-regular graph on {n} nodes in 200 attempts"
    )))
}

/// The "dumbbell" variant: two cliques joined by a path of `bridge_len`
/// edges (barbell generalization; `bridge_len = 1` is the barbell).
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for cliques `< 2` or `bridge_len == 0`.
pub fn dumbbell(clique: usize, bridge_len: usize) -> Result<Graph, GraphError> {
    if clique < 2 || bridge_len == 0 {
        return Err(GraphError::InvalidSize(format!(
            "dumbbell needs clique >= 2 and bridge_len >= 1, got {clique}, {bridge_len}"
        )));
    }
    let n = 2 * clique + bridge_len - 1;
    let mut edges = Vec::new();
    // Left clique on 0..clique, right clique on the last `clique` nodes.
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    let right_start = clique + bridge_len - 1;
    for u in right_start..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    // Path from clique-1 through the middle nodes to right_start.
    let mut prev = clique - 1;
    for i in 0..bridge_len {
        let next = if i == bridge_len - 1 {
            right_start
        } else {
            clique + i
        };
        edges.push((prev, next));
        prev = next;
    }
    Graph::from_edges(n, &edges)
}

// Test-only duplicate probes: insert/contains, order never observed.
#[allow(clippy::disallowed_types)]
#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
        assert!(path(1).unwrap().is_connected());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.diameter(), 3);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(7).unwrap();
        assert_eq!(g.num_edges(), 21);
        assert_eq!(g.diameter(), 1);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.diameter(), 5); // (3-1)+(4-1)
        assert_eq!(g.max_degree(), 4);
        assert!(grid(0, 3).is_err());
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5).unwrap();
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_connected());
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15).unwrap(); // perfect tree of depth 3
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.diameter(), 6);
        assert!(g.is_connected());
    }

    #[test]
    fn star_shape() {
        let g = star(10).unwrap();
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(10).unwrap();
        assert_eq!(g.n(), 10);
        // Two 5-cliques (10 edges each) + bridge.
        assert_eq!(g.num_edges(), 21);
        assert_eq!(g.diameter(), 3);
        assert!(g.has_edge(4, 5));
        assert!(g.is_connected());
        assert!(barbell(3).is_err());
        // Odd n: cliques of 3 and 4.
        let g7 = barbell(7).unwrap();
        assert_eq!(g7.num_edges(), 3 + 6 + 1);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 3).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.num_edges(), 10 + 3);
        assert_eq!(g.degree(7), 1); // tail end
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.diameter(), 4);
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn dumbbell_generalizes_barbell() {
        let g = dumbbell(4, 1).unwrap();
        let b = barbell(8).unwrap();
        assert_eq!(g.n(), b.n());
        assert_eq!(g.num_edges(), b.num_edges());
        let long = dumbbell(3, 5).unwrap();
        assert_eq!(long.n(), 3 + 3 + 4);
        assert!(long.is_connected());
        assert_eq!(long.diameter(), 2 + 5);
    }

    #[test]
    fn erdos_renyi_connected_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(30, 0.3, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.n(), 30);
        // p = 0 on n > 1 can never connect.
        assert!(erdos_renyi_connected(5, 0.0, &mut rng).is_err());
    }

    #[test]
    fn random_regular_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_regular(20, 4, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        // Odd n*d impossible.
        assert!(random_regular(5, 3, &mut rng).is_err());
        assert!(random_regular(4, 4, &mut rng).is_err());
    }
}
