//! SplitMix64 seed-mixing primitives — the one definition every seeded
//! stream derivation in the workspace shares.
//!
//! History repeats: `algebraic_gossip::seeding` exists because early
//! experiments each invented their own splitmix-style constants, and the
//! dynamic-topology work was about to mint a third copy (per-epoch churn
//! streams). The primitives live here, in the lowest crate of the
//! dependency tree, so `seeding` (per-trial streams), `ScheduledTopology`
//! (per-epoch streams) and the bench sweeps (per-cell streams) all mix
//! with literally the same function — the domains stay independent by
//! construction (different seeds/salts), not by hoping parallel
//! implementations never drift.

/// Golden-ratio increment of the SplitMix64 sequence. Odd, so
/// `seed + index · GOLDEN_GAMMA` is a bijection of the index — distinct
/// indices of one stream family can never collide.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_values() {
        // Pinned outputs of the canonical SplitMix64 finalizer.
        assert_eq!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
        assert_eq!(splitmix64(7), splitmix64(7));
        // Bijectivity smoke: nearby inputs avalanche apart.
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn gamma_is_odd() {
        assert_eq!(GOLDEN_GAMMA % 2, 1);
    }
}
