//! Known-bad: `unsafe` without `// SAFETY:` justification.

pub fn read_first(v: &[u8]) -> u8 {
    // BAD (line 5): undocumented unsafe block.
    unsafe { *v.as_ptr() }
}

/// # Safety
///
/// A doc-level caller contract is not a site justification: this fn must
/// still fire (line 12).
pub unsafe fn deref(p: *const u8) -> u8 {
    *p
}
