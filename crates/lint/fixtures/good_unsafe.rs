//! Known-good: every `unsafe` site carries a `// SAFETY:` comment.

pub fn read_first(v: &[u8]) -> Option<u8> {
    if v.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees at least one byte.
    Some(unsafe { *v.as_ptr() })
}

// SAFETY: the pointer must come from a live allocation; callers uphold
// this via the slice they derive it from.
pub unsafe fn deref(p: *const u8) -> u8 {
    *p
}
