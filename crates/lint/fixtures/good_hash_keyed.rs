//! Known-good: keyed `HashMap`/`HashSet` access in the style of
//! `Topology::edge_pos` — O(1) lookups whose results never depend on
//! iteration order. Must produce zero findings.

use std::collections::{HashMap, HashSet};

pub struct Topology {
    edge_pos: HashMap<(u32, u32), usize>,
    alive: HashSet<u32>,
}

impl Topology {
    pub fn position(&self, e: (u32, u32)) -> Option<usize> {
        self.edge_pos.get(&e).copied()
    }

    pub fn insert(&mut self, e: (u32, u32), pos: usize) {
        self.edge_pos.insert(e, pos);
        self.alive.insert(e.0);
    }

    pub fn is_alive(&self, v: u32) -> bool {
        self.alive.contains(&v)
    }

    pub fn forget(&mut self, e: (u32, u32)) {
        self.edge_pos.remove(&e);
    }
}
