//! Known-bad: waivers that are themselves invalid — no reason, or an
//! unknown rule name. Both must fire `invalid-waiver`.

pub fn f(v: &[i32]) -> i32 {
    // ag-lint: allow(panic-policy)
    let a = v.first().unwrap();
    // ag-lint: allow(made-up-rule) — the rule name does not exist.
    let b = v.last().unwrap();
    a + b
}
