//! Known-bad hot-path allocations: macros, path constructors and
//! allocating method calls inside `// ag-lint: hot-path` zones, plus a
//! region boundary check (allocations after `(end)` are legal).

// ag-lint: hot-path
fn receive(buf: &mut Vec<u8>, row: &[u8]) {
    let copy = row.to_vec();
    buf.push(copy[0]);
    let extra = vec![0u8; 4];
    let boxed = Box::new(extra);
    drop(boxed);
}

fn cold() -> Vec<u8> {
    vec![1, 2, 3]
}

fn mixed(n: usize) {
    let mut acc = 0;
    // ag-lint: hot-path(begin) — the inner loop only
    for i in 0..n {
        let v = Vec::with_capacity(i);
        acc += v.len();
    }
    // ag-lint: hot-path(end)
    let tail: Vec<usize> = (0..n).collect();
    let _ = (acc, tail);
}
