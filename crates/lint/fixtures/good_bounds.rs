//! Known-good bounds provenance: every pointer-arithmetic `// SAFETY:`
//! comment cites the bound that keeps the access in range, and spans
//! without pointer arithmetic need no citation at all.

fn first(xs: &[u8]) -> u8 {
    let len = xs.len();
    assert!(len > 0);
    // SAFETY: index 0 < len, asserted above.
    unsafe { *xs.get_unchecked(0) }
}

fn shift(p: *const u8, count: usize) -> *const u8 {
    // SAFETY: `count` stays within the caller's allocation.
    unsafe { p.add(count) }
}

fn no_ptr_math(x: &u8) -> u8 {
    // SAFETY: reading through a shared reference is always sound.
    unsafe { core::ptr::read_volatile(x) }
}
