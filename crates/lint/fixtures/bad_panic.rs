//! Known-bad: panic-policy violations, with waiver / cfg(test) /
//! expect-with-invariant escape hatches exercised alongside.

pub fn first(v: &[i32]) -> i32 {
    // BAD (line 6): unwrap in library code.
    let head = v.first().unwrap();
    // OK (line 8): expect-with-invariant is allowed by default…
    let tail = v.last().expect("nonempty checked by caller");
    // …but fires when allow_expect = false.
    // BAD (line 12): panic! in library code.
    if v.len() > 1024 {
        panic!("too long");
    }
    // ag-lint: allow(panic-policy) — waived on purpose for the self-test.
    let waived = v.get(1).unwrap();
    // BAD-if-forbid_indexing (line 17): direct indexing.
    let indexed = v[0];
    head + tail + waived + indexed
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Vec<i32> = vec![1];
        // OK: inside #[cfg(test)] with include_tests = false.
        let _ = v.first().unwrap();
    }
}
