//! Known-good RNG constructions: every seed flows through the seedmix
//! derivation chain (directly, via the derivation fixpoint, or via a
//! seed-named binding), and sharded phases draw only region-bound RNGs.

fn splitmix64(x: u64) -> u64 {
    x ^ (x >> 30)
}

fn derive_lane(seed: u64, lane: u64) -> u64 {
    splitmix64(seed ^ lane)
}

fn keyed_direct(seed: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed))
}

fn keyed_transitive(seed: u64) -> StdRng {
    let mix = derive_lane(seed, 7);
    StdRng::seed_from_u64(mix)
}

fn keyed_binding(node_seed: u64) -> StdRng {
    StdRng::seed_from_u64(node_seed)
}

fn compose(seed: u64) {
    // ag-lint: sharded-phase(begin) — per-slot keys only
    let slot_key = splitmix64(seed ^ 3);
    let mut slot_rng = StdRng::seed_from_u64(slot_key);
    let draw = slot_rng.gen::<u64>();
    // ag-lint: sharded-phase(end)
    let _ = draw;
}
