//! Known-bad bounds provenance: pointer arithmetic whose `// SAFETY:`
//! comment names no len/bound identifier from the enclosing scope.

fn first(xs: &[u8]) -> u8 {
    let len = xs.len();
    assert!(len > 0);
    // SAFETY: trust me, the access is fine.
    unsafe { *xs.get_unchecked(0) }
}

fn shift(p: *const u8, count: usize) -> *const u8 {
    // SAFETY: the caller promised this is sound.
    unsafe { p.add(count) }
}
