//! Known-bad waiver hygiene: the first waiver's unwrap is long gone, so
//! the waiver itself must fire; the second still suppresses a live
//! unwrap and must stay silent.

fn tidy(x: Option<u32>) -> u32 {
    // ag-lint: allow(panic-policy) — historical unwrap, since removed
    x.unwrap_or(0)
}

fn live(x: Option<u32>) -> u32 {
    // ag-lint: allow(panic-policy) — invariant: caller checks is_some first
    x.unwrap()
}
