//! Known-bad: truncating casts in seed-mixing code, with widening casts
//! as a must-not-fire control.

pub fn mix(seed: u64, node: u32) -> u64 {
    // BAD (line 6): drops the high 32 bits of the seed domain.
    let low = seed as u32;
    // BAD (line 8): byte-truncation of a mixed value.
    let tag = (seed ^ u64::from(node)) as u8;
    // OK (line 10): widening never loses seed bits.
    let wide = node as u64;
    // OK (line 12): usize is not in the narrowing set (word-sized here).
    let idx = seed as usize;
    low as u64 ^ u64::from(tag) ^ wide ^ idx as u64
}
