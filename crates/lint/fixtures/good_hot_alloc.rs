//! Known-good hot path: cleared-and-reused scratch only; the two growth
//! calls are allowlisted in the self-test config, standing in for
//! buffers whose capacity the cold constructor reserves up front.

// ag-lint: hot-path
fn receive(scratch: &mut Vec<u8>, out: &mut Vec<u8>, row: &[u8]) {
    scratch.clear();
    scratch.extend_from_slice(row);
    out.resize(row.len(), 0);
    out.copy_from_slice(scratch);
}

fn cold_setup(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}
