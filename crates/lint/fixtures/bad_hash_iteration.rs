//! Known-bad: the pre-PR-1 `RandomMessageGossip` bug class — picking a
//! message by iterating a `HashSet`, so hash order leaks into protocol
//! behavior. Never compiled; linted by the self-tests only.

use std::collections::{HashMap, HashSet};

pub struct Node {
    received: HashSet<u64>,
    neighbors: HashMap<u32, u32>,
}

impl Node {
    pub fn pick_message(&self) -> Option<u64> {
        // BAD (line 15): first element in hash iteration order.
        self.received.iter().next().copied()
    }

    pub fn fanout(&self) -> Vec<u32> {
        let mut out = Vec::new();
        // BAD (line 21): for-loop over a hash-ordered map.
        for (_, &peer) in &self.neighbors {
            out.push(peer);
        }
        out
    }

    pub fn drop_delivered(&mut self) {
        // BAD (line 29): retain observes hash order.
        self.received.retain(|&m| m % 2 == 0);
    }
}
