//! Known-bad RNG constructions: ambient entropy, raw literal seeds,
//! unkeyed seed expressions, and an engine RNG captured inside a
//! sharded phase. Self-test input; never compiled.

fn ambient() -> StdRng {
    StdRng::from_entropy()
}

fn ambient_thread() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

fn literal() -> StdRng {
    StdRng::seed_from_u64(42)
}

fn unkeyed(config_id: u64) -> StdRng {
    StdRng::seed_from_u64(config_id)
}

fn compose(seed: u64) {
    let mut engine_rng = StdRng::seed_from_u64(splitmix64(seed));
    // ag-lint: sharded-phase(begin) — per-slot keys only below
    let slot_key = splitmix64(seed ^ 1);
    let mut slot_rng = StdRng::seed_from_u64(slot_key);
    let draw = engine_rng.gen::<u64>() ^ slot_rng.gen::<u64>();
    // ag-lint: sharded-phase(end)
    let _ = draw;
}
