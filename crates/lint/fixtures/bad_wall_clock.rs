//! Known-bad: wall-clock and environment reads in deterministic code.

pub fn jitter_seed() -> u64 {
    // BAD (line 5): wall-clock read.
    let t = std::time::Instant::now();
    let _ = t;
    // BAD (line 8): system time feeds a seed.
    let s = std::time::SystemTime::now();
    let _ = s;
    // BAD (line 11): ambient environment configuration.
    let threads = std::env::var("THREADS").ok();
    threads.map_or(0, |v| v.len() as u64)
}
