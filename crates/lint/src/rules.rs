//! The three rule families, plus waiver handling.
//!
//! Every rule is a scanner over [`crate::scan::ScannedFile`] — substring
//! and token matching over comment-free, literal-free code text. That is
//! deliberately weaker than type-aware analysis and deliberately stronger
//! than reviewer vigilance: each family targets a bug class that is
//! *lexically* recognizable in this codebase, and the fixture self-tests
//! pin exactly what fires and what passes.
//!
//! * **`hash-iteration`** — iteration over `HashMap`/`HashSet` in the
//!   simulation crates. Hash iteration order is randomized per process
//!   and per instance, so any iteration that feeds a decision breaks the
//!   runs-are-a-pure-function-of-the-seed guarantee (the exact latent bug
//!   PR 1 fixed in `RandomMessageGossip`). Keyed lookup stays legal: the
//!   rule tracks which identifiers are hash-typed and fires only on
//!   iteration forms (`iter`/`keys`/`values`/`drain`/`retain`/`for … in`).
//! * **`wall-clock`** — `SystemTime`/`Instant::now`/`std::env` reads in
//!   library crates. Time and environment are the two ambient inputs a
//!   deterministic simulation must not consume outside the bench harness.
//! * **`truncating-cast`** — `as u8/u16/u32/i8/i16/i32` in seed-mixing
//!   and RNG-keying code, where silently dropping high bits collapses
//!   distinct seed domains onto each other.
//! * **`unsafe-audit`** — every `unsafe` fn/impl/block/trait must carry a
//!   `// SAFETY:` comment stating its actual precondition.
//! * **`panic-policy`** — no `unwrap`/`panic!`-family macros in library
//!   code; `.expect("invariant message")` is the configurable escape
//!   hatch, and indexing can additionally be forbidden per scope.
//!
//! Three *cross-file* families (v2) run over the phase-1
//! [`crate::index::FileIndex`] plus a workspace-wide derivation-function
//! set resolved by fixpoint in [`crate::run`]:
//!
//! * **`rng-discipline`** — every RNG construction must be keyed through
//!   the `seedmix` derivation chain: `from_entropy`/`thread_rng` are
//!   banned outright, raw literal seeds are banned outside tests, a
//!   `seed_from_u64(expr)` whose expression neither calls a derivation
//!   function nor flows from a seed-named binding is flagged, and inside
//!   `// ag-lint: sharded-phase(begin/end)` regions any mention of an RNG
//!   not bound within the region (i.e. not built from the per-slot key)
//!   is a finding — the double-draw bug class.
//! * **`alloc-discipline`** — functions/regions annotated
//!   `// ag-lint: hot-path` may not contain allocating constructs
//!   (`Vec::new`, `push`, `with_capacity`, `to_vec`, `clone`, `format!`,
//!   `Box::new`, `collect`, …) except calls allowlisted in `lint.toml`
//!   (`allow_calls`) — turning the counting-allocator audits into a
//!   lint-time gate.
//! * **`bounds-provenance`** — an unsafe span that does pointer
//!   arithmetic (`get_unchecked`, `from_raw_parts`, `.add(…)`, …) must
//!   cite, in its `// SAFETY:` comment, at least one len/bound identifier
//!   that actually exists in the enclosing scope — tightening the
//!   presence-only `unsafe-audit` check.
//!
//! Findings are suppressed by inline waivers with a mandatory reason —
//! for example `// ag-lint: allow(hash-iteration) — order-independent sum`
//! — either on the offending line or on comment lines directly above it.
//! A waiver without a reason, or naming an unknown rule, is itself a
//! finding (`invalid-waiver`) that cannot be waived; a well-formed waiver
//! that suppresses nothing is an `unused-waiver` finding (waivers must
//! not outlive the code they excused). Waivers and annotations live in
//! plain `//` comments only — doc text never parses as either.

use std::collections::BTreeSet;
use std::fmt;

use crate::config::{Config, RuleCfg};
use crate::dataflow;
use crate::index::{index_file, FileIndex, Span};
use crate::scan::{is_ident_char, ScannedFile};

/// Identifier of a rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    HashIteration,
    WallClock,
    TruncatingCast,
    UnsafeAudit,
    PanicPolicy,
    RngDiscipline,
    AllocDiscipline,
    BoundsProvenance,
    /// Malformed waivers; internal, never configured, never waivable.
    InvalidWaiver,
    /// Well-formed waivers that suppress nothing; internal, unwaivable.
    UnusedWaiver,
}

impl RuleId {
    /// All configurable rules, in reporting order.
    pub const CONFIGURABLE: [RuleId; 8] = [
        RuleId::HashIteration,
        RuleId::WallClock,
        RuleId::TruncatingCast,
        RuleId::UnsafeAudit,
        RuleId::PanicPolicy,
        RuleId::RngDiscipline,
        RuleId::AllocDiscipline,
        RuleId::BoundsProvenance,
    ];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIteration => "hash-iteration",
            RuleId::WallClock => "wall-clock",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::UnsafeAudit => "unsafe-audit",
            RuleId::PanicPolicy => "panic-policy",
            RuleId::RngDiscipline => "rng-discipline",
            RuleId::AllocDiscipline => "alloc-discipline",
            RuleId::BoundsProvenance => "bounds-provenance",
            RuleId::InvalidWaiver => "invalid-waiver",
            RuleId::UnusedWaiver => "unused-waiver",
        }
    }

    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::CONFIGURABLE.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: RuleId,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed inline waiver.
#[derive(Debug, Clone)]
struct Waiver {
    /// 0-based line the waiver text sits on.
    line: usize,
    rules: Vec<RuleId>,
    has_reason: bool,
    /// Did this waiver suppress at least one finding?
    used: bool,
}

/// Lint one scanned file in isolation: builds the phase-1 index and a
/// file-local derivation fixpoint, then runs the indexed pass. The
/// workspace driver ([`crate::run`]) computes the fixpoint across all
/// files instead and calls [`lint_file_indexed`] directly.
#[must_use]
pub fn lint_file(path: &str, file: &ScannedFile, cfg: &Config) -> (Vec<Finding>, usize) {
    let index = index_file(file);
    let roots = cfg.rule(RuleId::RngDiscipline).derivation_roots;
    let derivation = crate::index::derivation_fixpoint(&[&index], &roots);
    lint_file_indexed(path, file, &index, &derivation, cfg)
}

/// Lint one scanned file against its phase-1 index and the cross-file
/// derivation set. Returns surviving findings and the number of findings
/// that waivers suppressed.
#[must_use]
pub fn lint_file_indexed(
    path: &str,
    file: &ScannedFile,
    index: &FileIndex,
    derivation_fns: &BTreeSet<String>,
    cfg: &Config,
) -> (Vec<Finding>, usize) {
    let mut raw: Vec<Finding> = Vec::new();

    for rule in RuleId::CONFIGURABLE {
        if !cfg.applies(rule, path) {
            continue;
        }
        let rc = cfg.rule(rule);
        match rule {
            RuleId::HashIteration => check_hash_iteration(path, file, &rc, &mut raw),
            RuleId::WallClock => check_wall_clock(path, file, &rc, &mut raw),
            RuleId::TruncatingCast => check_truncating_cast(path, file, &rc, &mut raw),
            RuleId::UnsafeAudit => check_unsafe(path, file, &rc, &mut raw),
            RuleId::PanicPolicy => check_panic_policy(path, file, &rc, &mut raw),
            RuleId::RngDiscipline => {
                check_rng_discipline(path, file, index, derivation_fns, &rc, &mut raw);
            }
            RuleId::AllocDiscipline => check_alloc_discipline(path, file, index, &rc, &mut raw),
            RuleId::BoundsProvenance => check_bounds_provenance(path, file, index, &rc, &mut raw),
            RuleId::InvalidWaiver | RuleId::UnusedWaiver => unreachable!("not in CONFIGURABLE"),
        }
    }

    // Waiver application: a finding on line L is suppressed when a
    // well-formed waiver naming its rule covers L. Every waiver that
    // suppresses something is marked used; the rest become findings.
    let mut waivers = collect_waivers(file);
    let mut findings = Vec::new();
    let mut honored = 0usize;
    for finding in raw {
        let covering = covering_lines(file, finding.line - 1);
        let mut suppressed = false;
        for w in &mut waivers {
            if w.has_reason && covering.contains(&w.line) && w.rules.contains(&finding.rule) {
                w.used = true;
                suppressed = true;
            }
        }
        if suppressed {
            honored += 1;
        } else {
            findings.push(finding);
        }
    }

    // Unused waivers are findings: a suppression that excuses nothing has
    // outlived the code it excused (or never matched it) and silently
    // widens the exemption surface. Unwaivable, like invalid-waiver.
    for w in &waivers {
        if w.has_reason && !w.used {
            findings.push(Finding {
                path: path.to_owned(),
                line: w.line + 1,
                rule: RuleId::UnusedWaiver,
                message: format!(
                    "waiver for `{}` suppresses no finding here — delete it \
                     (waivers must not outlive the code they excused)",
                    w.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }

    // Malformed waivers are findings in *every* scanned file, regardless
    // of rule scopes: a waiver that silently fails to parse is exactly
    // the silent exemption the tool exists to forbid.
    for (i, line) in file.lines.iter().enumerate() {
        if let Some(err) = waiver_syntax_error(&line.plain_comment) {
            findings.push(Finding {
                path: path.to_owned(),
                line: i + 1,
                rule: RuleId::InvalidWaiver,
                message: err,
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    (findings, honored)
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

const WAIVER_MARK: &str = "ag-lint:";

/// All waivers in the file, from plain (non-doc) comment text only —
/// waiver examples in doc comments never register as live suppressions.
fn collect_waivers(file: &ScannedFile) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        for mut w in parse_waivers(&line.plain_comment) {
            w.line = i;
            out.push(w);
        }
    }
    out
}

/// The 0-based lines whose waivers cover line `idx`: the line itself plus
/// directly preceding comment-only / attribute-only lines.
fn covering_lines(file: &ScannedFile, idx: usize) -> Vec<usize> {
    let mut out = vec![idx];
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if line.has_code() && !line.is_attr_only() {
            break;
        }
        out.push(i);
    }
    out
}

/// Parse every well-formed waiver in one comment string (`line` is left
/// 0 for the caller to fill in).
fn parse_waivers(comment: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(WAIVER_MARK) {
        rest = &rest[pos + WAIVER_MARK.len()..];
        if let Some((waiver, tail)) = parse_one_waiver(rest) {
            out.push(waiver);
            rest = tail;
        }
    }
    out
}

/// Parse the `allow(rule, …) — reason` tail that follows the waiver
/// marker. Returns `None` on malformed syntax (reported via
/// [`waiver_syntax_error`]).
fn parse_one_waiver(text: &str) -> Option<(Waiver, &str)> {
    let text = text.trim_start();
    let args = text.strip_prefix("allow(")?;
    let close = args.find(')')?;
    let mut rules = Vec::new();
    for name in args[..close].split(',') {
        rules.push(RuleId::parse(name.trim())?);
    }
    if rules.is_empty() {
        return None;
    }
    let tail = &args[close + 1..];
    // Mandatory reason: an em/en/hyphen dash separator followed by text.
    let reason = tail.trim_start().trim_start_matches(['—', '–', '-']).trim();
    Some((
        Waiver {
            line: 0,
            rules,
            has_reason: !reason.is_empty(),
            used: false,
        },
        tail,
    ))
}

/// A human-readable description of what is wrong with the waivers in
/// this comment, if anything. `hot-path`/`sharded-phase` annotations are
/// valid non-waivers; anything else after `ag-lint:` must parse as an
/// `allow(…)` with a reason.
fn waiver_syntax_error(comment: &str) -> Option<String> {
    let mut rest = comment;
    while let Some(pos) = rest.find(WAIVER_MARK) {
        rest = &rest[pos + WAIVER_MARK.len()..];
        if crate::index::parse_annotation(rest).is_some() {
            continue;
        }
        match parse_one_waiver(rest) {
            Some((waiver, tail)) => {
                if !waiver.has_reason {
                    return Some(
                        "waiver is missing its mandatory reason: \
                         `// ag-lint: allow(<rule>) — <reason>`"
                            .to_owned(),
                    );
                }
                rest = tail;
            }
            None => {
                return Some(
                    "malformed waiver (expected `allow(<known-rule>, …)` \
                     after `ag-lint:`)"
                        .to_owned(),
                );
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// Byte offsets where `needle` occurs in `code` as a standalone token
/// (not embedded in a longer identifier).
fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            out.push(at);
        }
        start = at + needle.len();
    }
    out
}

/// Does `code` contain `needle` as a standalone token?
fn has_token(code: &str, needle: &str) -> bool {
    !token_positions(code, needle).is_empty()
}

/// The identifier ending at byte offset `end` of `code` (exclusive).
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let mut start = end;
    for (i, c) in code[..end].char_indices().rev() {
        if !is_ident_char(c) {
            break;
        }
        start = i;
    }
    let ident = &code[start..end];
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(ident)
}

/// Iterate non-test (unless `include_tests`) lines with their 1-based
/// numbers.
fn code_lines<'a>(
    file: &'a ScannedFile,
    rc: &'a RuleCfg,
) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    file.lines
        .iter()
        .enumerate()
        .filter(move |(_, l)| rc.include_tests || !l.in_test)
        .map(|(i, l)| (i + 1, l.code.as_str()))
}

fn push(out: &mut Vec<Finding>, path: &str, line: usize, rule: RuleId, message: String) {
    out.push(Finding {
        path: path.to_owned(),
        line,
        rule,
        message,
    });
}

// ---------------------------------------------------------------------------
// hash-iteration
// ---------------------------------------------------------------------------

const ITERATION_METHODS: [&str; 10] = [
    "iter()",
    "iter_mut()",
    "into_iter()",
    "keys()",
    "values()",
    "values_mut()",
    "drain(",
    "retain(",
    "into_keys()",
    "into_values()",
];

fn check_hash_iteration(path: &str, file: &ScannedFile, rc: &RuleCfg, out: &mut Vec<Finding>) {
    // Pass 1: which identifiers are hash-typed? Collected from the whole
    // file (including tests — a field declared once is used everywhere).
    let mut names: Vec<String> = Vec::new();
    for line in &file.lines {
        collect_hash_names(&line.code, &mut names);
    }
    names.sort();
    names.dedup();

    // Pass 2: flag iteration forms over those identifiers.
    for (lineno, code) in code_lines(file, rc) {
        for name in &names {
            for at in token_positions(code, name) {
                let after = &code[at + name.len()..];
                if let Some(rest) = after.strip_prefix('.') {
                    if let Some(m) = ITERATION_METHODS.iter().find(|m| rest.starts_with(**m)) {
                        push(
                            out,
                            path,
                            lineno,
                            RuleId::HashIteration,
                            format!(
                                "iteration over hash-ordered collection `{name}` \
                                 (`.{m}`): hash order is nondeterministic per \
                                 process — use a BTree collection or a sorted Vec, \
                                 or waive with an order-independence argument"
                            ),
                        );
                    }
                }
                // `for x in map {` / `for x in &self.map {`: the loop
                // target ends at `at + name`, so everything between the
                // `in` keyword and the name must be only borrow sigils
                // and a dotted owner path.
                if has_token(code, "for") && for_target_ends_here(code, at) {
                    let next = after.trim_start().chars().next();
                    if matches!(next, None | Some('{')) {
                        push(
                            out,
                            path,
                            lineno,
                            RuleId::HashIteration,
                            format!(
                                "`for` loop over hash-ordered collection `{name}`: \
                                 hash order is nondeterministic per process"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Is the expression ending at byte `at` (exclusive of the identifier
/// that starts there) the target of a `for … in` loop? True when the
/// text between the nearest preceding ` in ` keyword and `at` consists
/// only of borrow sigils (`&`, `&mut`) and a dotted owner path.
fn for_target_ends_here(code: &str, at: usize) -> bool {
    let Some(in_pos) = token_positions(&code[..at], "in").into_iter().next_back() else {
        return false;
    };
    let between = code[in_pos + 2..at].trim();
    let between = between.strip_prefix('&').unwrap_or(between).trim_start();
    let between = between.strip_prefix("mut ").unwrap_or(between).trim_start();
    between.chars().all(|c| is_ident_char(c) || c == '.')
}

/// Collect identifiers bound to `HashMap`/`HashSet` on this line: typed
/// bindings and fields (`name: HashMap<…>`, `name: &HashSet<…>`) and
/// constructor bindings (`let name = HashMap::new()`).
fn collect_hash_names(code: &str, names: &mut Vec<String>) {
    for ty in ["HashMap", "HashSet"] {
        for at in token_positions(code, ty) {
            let before = &code[..at];
            // Strip a leading module path (`std::collections::HashSet`).
            let mut prefix_end = at;
            loop {
                let upto = &code[..prefix_end];
                let Some(stripped) = upto.strip_suffix("::") else {
                    break;
                };
                let mut seg_start = stripped.len();
                for (i, c) in stripped.char_indices().rev() {
                    if !is_ident_char(c) {
                        break;
                    }
                    seg_start = i;
                }
                prefix_end = seg_start;
            }
            let decl = code[..prefix_end].trim_end();
            // `name: [&[mut ]]HashMap<…>` — field, param or let type.
            let decl_stripped = decl
                .strip_suffix("&mut")
                .or_else(|| decl.strip_suffix('&'))
                .map_or(decl, str::trim_end);
            if let Some(colon) = decl_stripped.strip_suffix(':') {
                let colon = colon.trim_end();
                if let Some(name) = ident_ending_at(colon, colon.len()) {
                    names.push(name.to_owned());
                }
            }
            // `let [mut] name = HashMap::…`.
            if before.contains("let ") && code[at..].starts_with(&format!("{ty}::")) {
                if let Some(eq) = decl.strip_suffix('=') {
                    let eq = eq.trim_end();
                    if let Some(name) = ident_ending_at(eq, eq.len()) {
                        names.push(name.to_owned());
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

fn check_wall_clock(path: &str, file: &ScannedFile, rc: &RuleCfg, out: &mut Vec<Finding>) {
    for (lineno, code) in code_lines(file, rc) {
        if has_token(code, "SystemTime") {
            push(
                out,
                path,
                lineno,
                RuleId::WallClock,
                "`SystemTime` in deterministic code: wall-clock reads make runs \
                 irreproducible — time must come from the engine's round counter"
                    .to_owned(),
            );
        }
        if code.contains("Instant::now") {
            push(
                out,
                path,
                lineno,
                RuleId::WallClock,
                "`Instant::now()` in deterministic code: timing belongs in the \
                 bench harness, not the simulation"
                    .to_owned(),
            );
        }
        for call in ["env::var(", "env::var_os(", "env::args(", "env::vars("] {
            if let Some(at) = code.find(call) {
                let before_ok =
                    at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
                if before_ok || code[..at].ends_with("std::") {
                    push(
                        out,
                        path,
                        lineno,
                        RuleId::WallClock,
                        format!(
                            "environment read (`{}…`) in deterministic code: ambient \
                             configuration must flow through explicit parameters",
                            call.trim_end_matches('(')
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// truncating-cast
// ---------------------------------------------------------------------------

const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn check_truncating_cast(path: &str, file: &ScannedFile, rc: &RuleCfg, out: &mut Vec<Finding>) {
    for (lineno, code) in code_lines(file, rc) {
        for at in token_positions(code, "as") {
            let after = code[at + 2..].trim_start();
            if let Some(ty) = NARROW_TYPES
                .iter()
                .find(|t| after.starts_with(**t) && !is_ident_char(nth_char(after, t.len())))
            {
                push(
                    out,
                    path,
                    lineno,
                    RuleId::TruncatingCast,
                    format!(
                        "truncating `as {ty}` cast in seed/RNG-keying code: \
                         dropping high bits collapses seed domains — use \
                         `try_from` or keep the full width"
                    ),
                );
            }
        }
    }
}

fn nth_char(s: &str, n: usize) -> char {
    s.chars().nth(n).unwrap_or(' ')
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

/// Kind of an unsafe site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Fn,
    Impl,
    Trait,
    Block,
}

impl fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Block => "block",
        })
    }
}

/// One `unsafe` occurrence, as shared between the audit rule and the
/// inventory generator.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line number.
    pub line: usize,
    pub kind: UnsafeKind,
    /// The `// SAFETY:` justification, joined across continuation
    /// comment lines; `None` when undocumented.
    pub justification: Option<String>,
}

/// Extract every unsafe site in a file, with its justification.
#[must_use]
pub fn unsafe_sites(file: &ScannedFile) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        for at in token_positions(&line.code, "unsafe") {
            let after = line.code[at + "unsafe".len()..].trim_start();
            let kind = if after.starts_with("fn") {
                UnsafeKind::Fn
            } else if after.starts_with("impl") {
                UnsafeKind::Impl
            } else if after.starts_with("trait") {
                UnsafeKind::Trait
            } else {
                UnsafeKind::Block
            };
            out.push(UnsafeSite {
                line: i + 1,
                kind,
                justification: safety_comment(file, i),
            });
        }
    }
    out
}

/// The `// SAFETY:` text covering line `idx`: searched on the line
/// itself, then on directly preceding comment-only / attribute-only
/// lines. Continuation comment lines after the `SAFETY:` marker are
/// joined into the excerpt.
fn safety_comment(file: &ScannedFile, idx: usize) -> Option<String> {
    let mark_line = find_safety_mark(file, idx)?;
    let first = &file.lines[mark_line].comment;
    let pos = first.find("SAFETY:")?;
    let mut text = first[pos + "SAFETY:".len()..].trim().to_owned();
    // Join continuation comment lines between the marker and the site.
    for line in &file.lines[mark_line + 1..=idx] {
        if line.has_code() || line.comment.trim().is_empty() {
            break;
        }
        text.push(' ');
        text.push_str(line.comment.trim());
    }
    Some(text)
}

fn find_safety_mark(file: &ScannedFile, idx: usize) -> Option<usize> {
    if file.lines[idx].comment.contains("SAFETY:") {
        return Some(idx);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if line.has_code() && !line.is_attr_only() {
            return None;
        }
        if line.comment.contains("SAFETY:") {
            return Some(i);
        }
    }
    None
}

fn check_unsafe(path: &str, file: &ScannedFile, rc: &RuleCfg, out: &mut Vec<Finding>) {
    for site in unsafe_sites(file) {
        if !rc.include_tests && file.lines[site.line - 1].in_test {
            continue;
        }
        if site.justification.is_none() {
            push(
                out,
                path,
                site.line,
                RuleId::UnsafeAudit,
                format!(
                    "undocumented `unsafe` {}: add a `// SAFETY:` comment stating \
                     the precondition that makes this sound (feature guard, \
                     pointer/length provenance, alignment, …)",
                    site.kind
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// panic-policy
// ---------------------------------------------------------------------------

fn check_panic_policy(path: &str, file: &ScannedFile, rc: &RuleCfg, out: &mut Vec<Finding>) {
    for (lineno, code) in code_lines(file, rc) {
        if code.contains(".unwrap()") {
            push(
                out,
                path,
                lineno,
                RuleId::PanicPolicy,
                "`.unwrap()` in library code: return a typed error, or use \
                 `.expect(\"<invariant>\")` to document why this cannot fail"
                    .to_owned(),
            );
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if has_token(code, mac.trim_end_matches('!')) && code.contains(mac) {
                push(
                    out,
                    path,
                    lineno,
                    RuleId::PanicPolicy,
                    format!(
                        "`{mac}` in library code: return a typed error, or waive \
                         with the documented panic contract as the reason"
                    ),
                );
            }
        }
        if !rc.allow_expect && code.contains(".expect(") {
            push(
                out,
                path,
                lineno,
                RuleId::PanicPolicy,
                "`.expect(…)` is forbidden in this scope (allow_expect = false)".to_owned(),
            );
        }
        if rc.forbid_indexing {
            check_indexing(path, code, lineno, out);
        }
    }
}

/// Flag `expr[…]` indexing: a `[` directly preceded by an identifier
/// character, `)` or `]`. Skips attributes (`#[…]`), macro bangs
/// (`vec![…]`) and type syntax (`[u8; 32]`), none of which match the
/// preceded-by test.
fn check_indexing(path: &str, code: &str, lineno: usize, out: &mut Vec<Finding>) {
    for (i, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let Some(prev) = code[..i].chars().next_back() else {
            continue;
        };
        if is_ident_char(prev) || prev == ')' || prev == ']' {
            push(
                out,
                path,
                lineno,
                RuleId::PanicPolicy,
                "indexing expression in a no-panic zone: use `get`/`get_mut` \
                 or an iterator (indexing panics on out-of-bounds)"
                    .to_owned(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

/// RNG constructors that consume ambient entropy — banned outright.
const AMBIENT_RNG: [&str; 2] = ["from_entropy", "thread_rng"];

/// RNG constructors taking a seed whose provenance is checked.
const SEEDED_RNG: [&str; 2] = ["seed_from_u64", "from_seed"];

fn check_rng_discipline(
    path: &str,
    file: &ScannedFile,
    index: &FileIndex,
    derivation_fns: &BTreeSet<String>,
    rc: &RuleCfg,
    out: &mut Vec<Finding>,
) {
    for (lineno, code) in code_lines(file, rc) {
        for tok in AMBIENT_RNG {
            if has_token(code, tok) {
                push(
                    out,
                    path,
                    lineno,
                    RuleId::RngDiscipline,
                    format!(
                        "`{tok}` consumes ambient entropy: every RNG must be keyed \
                         through the seedmix derivation chain (`splitmix64`) so runs \
                         stay a pure function of the seed"
                    ),
                );
            }
        }
        for ctor in SEEDED_RNG {
            for at in token_positions(code, ctor) {
                let after = &code[at + ctor.len()..];
                let Some(rel) = after.find('(') else { continue };
                if !after[..rel].trim().is_empty() {
                    continue;
                }
                let open = at + ctor.len() + rel;
                let arg = dataflow::call_arg_text(file, lineno - 1, open);
                let span = index
                    .enclosing_fn(lineno - 1)
                    .map(|f| Span {
                        start: f.sig_line,
                        end: f.body.end,
                    })
                    .unwrap_or(Span {
                        start: 0,
                        end: file.lines.len().saturating_sub(1),
                    });
                let derived = dataflow::seed_derived_idents(file, span, derivation_fns);
                if dataflow::is_integer_literal(&arg) {
                    push(
                        out,
                        path,
                        lineno,
                        RuleId::RngDiscipline,
                        format!(
                            "`{ctor}({lit})` with a raw literal seed: derive the key \
                             via the seedmix chain (`splitmix64(seed ^ …)`) or move \
                             the construction under `#[cfg(test)]`",
                            lit = arg.trim()
                        ),
                    );
                } else if !dataflow::expr_is_seed_derived(&arg, derivation_fns, &derived) {
                    push(
                        out,
                        path,
                        lineno,
                        RuleId::RngDiscipline,
                        format!(
                            "`{ctor}(…)` seed expression `{}` neither calls a seedmix \
                             derivation function nor flows from a seed-named binding — \
                             the RNG stream is not keyed to the run seed",
                            arg.trim()
                        ),
                    );
                }
            }
        }
    }

    // Sharded phases: an RNG-looking identifier not bound inside the
    // region is a capture of the serial engine RNG — drawing from it in
    // shard work changes the stream with the shard count (the
    // double-draw bug class PR 7 eliminated).
    for span in &index.sharded_regions {
        let bound = dataflow::region_bindings(file, *span);
        for i in span.start..=span.end.min(file.lines.len().saturating_sub(1)) {
            let line = &file.lines[i];
            if !rc.include_tests && line.in_test {
                continue;
            }
            let mut flagged: BTreeSet<&str> = BTreeSet::new();
            for id in dataflow::idents(&line.code) {
                if id.starts_with(|c: char| c.is_ascii_lowercase())
                    && id.to_ascii_lowercase().contains("rng")
                    && !bound.contains(id)
                    && flagged.insert(id)
                {
                    push(
                        out,
                        path,
                        i + 1,
                        RuleId::RngDiscipline,
                        format!(
                            "`{id}` inside a sharded phase is not bound within the \
                             region: shard work must draw only from an RNG \
                             constructed from the per-slot key, never from the \
                             engine's serial RNG"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// alloc-discipline
// ---------------------------------------------------------------------------

const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

const ALLOC_PATHS: [&str; 7] = [
    "Vec::new",
    "Vec::with_capacity",
    "Vec::from",
    "Box::new",
    "String::new",
    "String::from",
    "String::with_capacity",
];

const ALLOC_METHODS: [&str; 17] = [
    "push",
    "insert",
    "extend",
    "extend_from_slice",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "append",
    "collect",
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "with_capacity",
    "into_boxed_slice",
    "split_off",
];

fn check_alloc_discipline(
    path: &str,
    file: &ScannedFile,
    index: &FileIndex,
    rc: &RuleCfg,
    out: &mut Vec<Finding>,
) {
    let spans = index.hot_spans();
    if spans.is_empty() {
        return;
    }
    // Overlapping spans (a hot fn containing a hot region) must not
    // double-report one site.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for span in spans {
        for i in span.start..=span.end.min(file.lines.len().saturating_sub(1)) {
            let line = &file.lines[i];
            if !rc.include_tests && line.in_test {
                continue;
            }
            let code = &line.code;
            for mac in ALLOC_MACROS {
                for at in token_positions(code, mac) {
                    if code[at + mac.len()..].starts_with('!') && seen.insert((i, at)) {
                        push(
                            out,
                            path,
                            i + 1,
                            RuleId::AllocDiscipline,
                            format!(
                                "`{mac}!` allocates inside a hot-path zone — hot \
                                 receive/emit/flush paths must reuse preallocated \
                                 scratch"
                            ),
                        );
                    }
                }
            }
            for p in ALLOC_PATHS {
                let mut start = 0usize;
                while let Some(pos) = code[start..].find(p) {
                    let at = start + pos;
                    start = at + p.len();
                    let prev = code[..at].chars().next_back().unwrap_or(' ');
                    let next = code[at + p.len()..].chars().next().unwrap_or(' ');
                    if !is_ident_char(prev)
                        && prev != ':'
                        && !is_ident_char(next)
                        && seen.insert((i, at))
                    {
                        push(
                            out,
                            path,
                            i + 1,
                            RuleId::AllocDiscipline,
                            format!(
                                "`{p}` allocates inside a hot-path zone — \
                                 preallocate in the constructor and reuse"
                            ),
                        );
                    }
                }
            }
            for m in ALLOC_METHODS {
                for at in token_positions(code, m) {
                    if !code[..at].ends_with('.') {
                        continue;
                    }
                    let after = code[at + m.len()..].trim_start();
                    if !after.starts_with('(') && !after.starts_with("::<") {
                        continue;
                    }
                    let recv = ident_ending_at(code, at - 1);
                    let allowed = rc.allow_calls.iter().any(|a| {
                        a == m
                            || recv.is_some_and(|r| {
                                a.strip_suffix(m)
                                    .and_then(|owner| owner.strip_suffix('.'))
                                    .is_some_and(|owner| owner == r)
                            })
                    });
                    if !allowed && seen.insert((i, at)) {
                        let on = recv.map(|r| format!(" on `{r}`")).unwrap_or_default();
                        push(
                            out,
                            path,
                            i + 1,
                            RuleId::AllocDiscipline,
                            format!(
                                "`.{m}(…)`{on} may allocate inside a hot-path zone — \
                                 use preallocated scratch, or allowlist the call in \
                                 lint.toml (`allow_calls`) with capacity reserved up \
                                 front"
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bounds-provenance
// ---------------------------------------------------------------------------

/// Unchecked-access constructs whose soundness depends on a length/bound
/// argument computed in the enclosing scope.
const PTR_FNS: [&str; 10] = [
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
    "copy_nonoverlapping",
    "copy_from_nonoverlapping",
    "copy_to_nonoverlapping",
    "read_unaligned",
    "write_unaligned",
    "offset_from",
];

/// Raw-pointer methods (matched only in `.m(` position).
const PTR_METHODS: [&str; 7] = [
    "add",
    "sub",
    "offset",
    "read",
    "write",
    "byte_add",
    "byte_offset",
];

fn check_bounds_provenance(
    path: &str,
    file: &ScannedFile,
    index: &FileIndex,
    rc: &RuleCfg,
    out: &mut Vec<Finding>,
) {
    for us in &index.unsafe_spans {
        if !rc.include_tests && file.lines[us.kw_line].in_test {
            continue;
        }
        let ops = ptr_ops_in(file, us.body);
        if ops.is_empty() {
            continue;
        }
        // A missing SAFETY comment is unsafe-audit's finding, not ours.
        let Some(just) = safety_comment(file, us.kw_line) else {
            continue;
        };
        let cited = cited_bounds(file, index, us.kw_line, us.body, &just, &rc.bound_hints);
        if cited.is_empty() {
            push(
                out,
                path,
                us.kw_line + 1,
                RuleId::BoundsProvenance,
                format!(
                    "unsafe span does pointer arithmetic ({}) but its SAFETY \
                     comment cites no len/bound identifier from the enclosing \
                     scope — name the bound that keeps the access in range",
                    ops.join(", ")
                ),
            );
        }
    }
}

/// Pointer ops inside a span, deduplicated, in table order.
fn ptr_ops_in(file: &ScannedFile, span: Span) -> Vec<&'static str> {
    let mut out = Vec::new();
    for i in span.start..=span.end.min(file.lines.len().saturating_sub(1)) {
        let code = &file.lines[i].code;
        for f in PTR_FNS {
            if has_token(code, f) && !out.contains(&f) {
                out.push(f);
            }
        }
        for m in PTR_METHODS {
            if out.contains(&m) {
                continue;
            }
            for at in token_positions(code, m) {
                if code[..at].ends_with('.') && code[at + m.len()..].starts_with('(') {
                    out.push(m);
                    break;
                }
            }
        }
    }
    out
}

/// Identifiers in the SAFETY text that both exist in the enclosing scope
/// and look like length/bound names per `bound_hints`.
fn cited_bounds(
    file: &ScannedFile,
    index: &FileIndex,
    kw_line: usize,
    body: Span,
    just: &str,
    hints: &[String],
) -> Vec<String> {
    let scope = index
        .enclosing_fn(kw_line)
        .map(|f| Span {
            start: f.sig_line,
            end: f.body.end,
        })
        .unwrap_or(body);
    let mut scope_idents: BTreeSet<&str> = BTreeSet::new();
    for i in scope.start..=scope.end.min(file.lines.len().saturating_sub(1)) {
        scope_idents.extend(dataflow::idents(&file.lines[i].code));
    }
    let mut out: Vec<String> = Vec::new();
    for id in dataflow::idents(just) {
        if !scope_idents.contains(id) {
            continue;
        }
        let lower = id.to_ascii_lowercase();
        let is_bound = hints.iter().any(|h| {
            if h.len() <= 2 {
                lower == *h
            } else {
                lower.contains(h.as_str())
            }
        });
        if is_bound && !out.iter().any(|o| o == id) {
            out.push(id.to_owned());
        }
    }
    out
}

/// For the inventory: pointer ops and cited bounds of the unsafe span
/// whose keyword sits on 1-based `line`. `None` when no span matches
/// (e.g. `unsafe impl`, which has no body to do arithmetic in).
#[must_use]
pub fn bounds_summary(
    file: &ScannedFile,
    index: &FileIndex,
    line: usize,
    hints: &[String],
) -> Option<(Vec<&'static str>, Vec<String>)> {
    let us = index.unsafe_spans.iter().find(|u| u.kw_line + 1 == line)?;
    let ops = ptr_ops_in(file, us.body);
    if ops.is_empty() {
        return Some((ops, Vec::new()));
    }
    let just = safety_comment(file, us.kw_line).unwrap_or_default();
    let cited = cited_bounds(file, index, us.kw_line, us.body, &just, hints);
    Some((ops, cited))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn cfg_with(rule: &str, extra: &str) -> Config {
        Config::from_toml_str(&format!(
            "source_roots = [\"crates\"]\n[rules.{rule}]\nscope = [\"**\"]\n{extra}"
        ))
        .expect("test config parses")
    }

    #[test]
    fn hash_names_collected_from_decl_forms() {
        let mut names = Vec::new();
        collect_hash_names(
            "    edge_pos: HashMap<(NodeId, NodeId), usize>,",
            &mut names,
        );
        collect_hash_names(
            "let mut seen = std::collections::HashSet::new();",
            &mut names,
        );
        collect_hash_names(
            "pub fn volume(g: &Graph, set: &HashSet<NodeId>) {",
            &mut names,
        );
        assert_eq!(names, ["edge_pos", "seen", "set"]);
    }

    #[test]
    fn keyed_lookup_passes_iteration_fires() {
        let src = concat!(
            "struct T { edge_pos: HashMap<(u32, u32), usize> }\n",
            "fn ok(t: &T) -> bool { t.edge_pos.contains_key(&(1, 2)) }\n",
            "fn bad(t: &T) -> usize { t.edge_pos.keys().count() }\n",
            "fn bad2(t: &T) { for _ in &t.edge_pos {} }\n",
        );
        let cfg = cfg_with("hash-iteration", "");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(src), &cfg);
        let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [3, 4], "findings: {f:?}");
    }

    #[test]
    fn waiver_suppresses_and_requires_reason() {
        let src = concat!(
            "fn f(set: &HashSet<u32>) -> usize {\n",
            "    // ag-lint: allow(hash-iteration) — order-independent sum\n",
            "    set.iter().count()\n",
            "}\n",
            "fn g(set: &HashSet<u32>) -> usize {\n",
            "    set.iter().count() // ag-lint: allow(hash-iteration)\n",
            "}\n",
        );
        let cfg = cfg_with("hash-iteration", "");
        let (f, honored) = lint_file("crates/x/src/a.rs", &scan(src), &cfg);
        assert_eq!(honored, 1);
        // The reasonless waiver does not suppress, and is itself flagged.
        let rules: Vec<RuleId> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RuleId::HashIteration));
        assert!(rules.contains(&RuleId::InvalidWaiver));
    }

    #[test]
    fn panic_policy_fires_and_respects_expect_knob() {
        let src = concat!(
            "fn f() { x().unwrap(); }\n",
            "fn g() { panic!(\"boom\"); }\n",
            "fn h() { y().expect(\"invariant\"); }\n",
            "#[cfg(test)]\n",
            "mod tests { fn t() { z().unwrap(); } }\n",
        );
        let lax = cfg_with("panic-policy", "allow_expect = true\n");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(src), &lax);
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), [1, 2]);

        let strict = cfg_with("panic-policy", "allow_expect = false\n");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(src), &strict);
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn indexing_knob_flags_subscripts_not_attrs_or_macros() {
        let src = concat!(
            "#[derive(Debug)]\n",
            "fn f(xs: &[u8]) -> u8 { let v = vec![1u8]; xs[0] ^ v[0] }\n",
        );
        let on = cfg_with("panic-policy", "forbid_indexing = true\n");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(src), &on);
        assert_eq!(f.len(), 2, "two subscripts: {f:?}");
        let off = cfg_with("panic-policy", "");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(src), &off);
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_sites_classified_and_safety_lookback_works() {
        let src = concat!(
            "// SAFETY: documented impl\n",
            "unsafe impl Send for T {}\n",
            "fn f() { unsafe { core(); } }\n",
            "/// # Safety\n",
            "/// caller contract only — not a site justification\n",
            "unsafe fn g() {}\n",
        );
        let sites = unsafe_sites(&scan(src));
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].kind, UnsafeKind::Impl);
        assert_eq!(sites[0].justification.as_deref(), Some("documented impl"));
        assert_eq!(sites[1].kind, UnsafeKind::Block);
        assert!(sites[1].justification.is_none());
        assert_eq!(sites[2].kind, UnsafeKind::Fn);
        assert!(
            sites[2].justification.is_none(),
            "a `# Safety` doc section states the caller contract, not why \
             this body is sound — the audit wants `// SAFETY:`"
        );
    }

    #[test]
    fn multiline_safety_comment_joins_into_excerpt() {
        let src = concat!(
            "// SAFETY: the matched level was runtime-detected\n",
            "// and never exceeds the CPU's features.\n",
            "unsafe { kernel(); }\n",
        );
        let sites = unsafe_sites(&scan(src));
        assert_eq!(
            sites[0].justification.as_deref(),
            Some("the matched level was runtime-detected and never exceeds the CPU's features.")
        );
    }

    #[test]
    fn wall_clock_and_truncating_cast_fire() {
        let clock_src = concat!(
            "fn f() { let t = std::time::Instant::now(); }\n",
            "fn g() { let v = std::env::var(\"X\"); }\n",
            "fn h() { let s = SystemTime::now(); }\n",
        );
        let cfg = cfg_with("wall-clock", "");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(clock_src), &cfg);
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), [1, 2, 3]);

        let cast_src = concat!(
            "fn k(seed: u64) -> u32 { seed as u32 }\n",
            "fn w(x: u32) -> u64 { x as u64 }\n",
        );
        let cfg = cfg_with("truncating-cast", "");
        let (f, _) = lint_file("crates/x/src/a.rs", &scan(cast_src), &cfg);
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), [1]);
    }
}
