//! The `ag-lint` CLI.
//!
//! ```text
//! ag-lint [--root <dir>] [--write-inventory]
//! ```
//!
//! Reads `<root>/lint.toml` (default root: the nearest ancestor of the
//! current directory containing one), lints every configured source
//! root, and checks `UNSAFE_INVENTORY.md` for drift. Exit codes: 0 clean,
//! 1 findings or inventory drift, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_inventory = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--write-inventory" => write_inventory = true,
            "--help" | "-h" => {
                println!("usage: ag-lint [--root <dir>] [--write-inventory]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ag-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let cfg = match ag_lint::load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ag-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match ag_lint::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ag-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }

    let inv_path = root.join(&cfg.inventory_path);
    let mut drift = false;
    if write_inventory {
        if let Err(e) = std::fs::write(&inv_path, &report.inventory) {
            eprintln!("ag-lint: cannot write {}: {e}", inv_path.display());
            return ExitCode::from(2);
        }
        println!("ag-lint: wrote {}", cfg.inventory_path);
    } else {
        let on_disk = std::fs::read_to_string(&inv_path).unwrap_or_default();
        if on_disk != report.inventory {
            drift = true;
            println!(
                "{}: inventory drift: the committed file does not match the \
                 unsafe sites in the tree — run `cargo run -p ag-lint -- \
                 --write-inventory` and commit the result",
                cfg.inventory_path
            );
        }
    }

    println!(
        "ag-lint: {} finding(s) across {} file(s), {} waiver(s) honored{}",
        report.findings.len(),
        report.files_scanned,
        report.waivers_honored,
        if drift { ", inventory DRIFTED" } else { "" }
    );
    if report.findings.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the nearest `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found here or in any ancestor directory".to_owned());
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ag-lint: {msg}\nusage: ag-lint [--root <dir>] [--write-inventory]");
    ExitCode::from(2)
}
